//! Comparable per-cell JSONL reports.
//!
//! Every executed cell emits exactly one JSON line with a *fixed* key set
//! in a *fixed* order, regardless of attack/defense/variant — so any two
//! cells of any grid can be diffed, joined or aggregated without schema
//! sniffing. Hash-valued fields (`config_hash`, `event_hash`) are hex
//! *strings*: a raw u64 above 2^53 would silently lose precision through
//! any float-based JSON reader.
//!
//! The writer is hand-rolled (same policy as the runtime's trace codec —
//! the workspace carries no serde) and deliberately canonical: a report
//! line is byte-reproducible for a deterministic run, which is what lets
//! the grid runner resume by verbatim-prefix comparison and lets CI pin
//! golden fixtures.

use crate::schema::GridCell;
use crate::toml::fmt_float;
use collapois_core::scenario::ScenarioReport;
use std::fmt::Write as _;

/// One cell's result row.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell id (`attack=…+defense=…+variant=…`).
    pub cell: String,
    /// Position in expansion order.
    pub index: usize,
    /// Schema revision that produced this row.
    pub schema_version: i64,
    /// [`CellSpec::config_hash`](crate::schema::CellSpec::config_hash).
    pub config_hash: u64,
    /// Dataset name.
    pub dataset: String,
    /// Attack name.
    pub attack: String,
    /// Defense name.
    pub defense: String,
    /// FL-algorithm name.
    pub algo: String,
    /// Dirichlet α.
    pub alpha: f64,
    /// Client count.
    pub clients: usize,
    /// Compromised-client count (after floor/cap).
    pub compromised: usize,
    /// Rounds executed (flush target in sim mode).
    pub rounds: usize,
    /// Whether the cell ran under the discrete-event simulator.
    pub sim: bool,
    /// Final mean Benign AC over benign clients.
    pub benign_ac: f64,
    /// Final mean Attack SR over benign clients.
    pub attack_sr: f64,
    /// Benign AC over the top-25% most affected clients (Eq. 8 ranking).
    pub top25_benign_ac: f64,
    /// Attack SR over the top-25% most affected clients.
    pub top25_attack_sr: f64,
    /// Per-client final metrics `(client_id, benign_ac, attack_sr)`.
    pub client_metrics: Vec<(usize, f64, f64)>,
    /// Fault-plan dropouts injected.
    pub dropped_clients: usize,
    /// Stragglers shed past the round deadline.
    pub shed_stragglers: usize,
    /// Updates rejected before aggregation.
    pub rejected_updates: usize,
    /// Checkpoint-write failures.
    pub checkpoint_failures: usize,
    /// Canonical trace-event digest (worker-count-invariant).
    pub event_hash: u64,
    /// Events folded into `event_hash`.
    pub event_count: u64,
}

impl CellReport {
    /// Assembles the row for one executed cell.
    pub fn from_run(cell: &GridCell, report: &ScenarioReport) -> Self {
        let last = report.final_round();
        let top = report.top_k(25.0);
        Self {
            cell: cell.id.clone(),
            index: cell.index,
            schema_version: crate::schema::SCHEMA_VERSION,
            config_hash: cell.config_hash,
            dataset: match report.config.dataset {
                collapois_core::scenario::DatasetKind::Image => "image".to_string(),
                collapois_core::scenario::DatasetKind::Text => "text".to_string(),
            },
            attack: report.config.attack.name().to_string(),
            defense: report.config.defense.name().to_string(),
            algo: report.config.algo.name().to_string(),
            alpha: report.config.alpha,
            clients: report.config.num_clients,
            compromised: report.compromised.len(),
            rounds: last.round,
            sim: cell.spec.sim_enabled,
            benign_ac: last.benign_accuracy,
            attack_sr: last.attack_success_rate,
            top25_benign_ac: top.benign_ac,
            top25_attack_sr: top.attack_sr,
            client_metrics: report
                .clients
                .iter()
                .map(|m| (m.client_id, m.benign_ac, m.attack_sr))
                .collect(),
            dropped_clients: report.profile.dropped_clients,
            shed_stragglers: report.profile.shed_stragglers,
            rejected_updates: report.profile.rejected_updates,
            checkpoint_failures: report.profile.checkpoint_write_failures,
            event_hash: report.event_hash,
            event_count: report.event_count,
        }
    }

    /// Serializes to the canonical single-line JSON form.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 48 * self.client_metrics.len());
        s.push('{');
        let _ = write!(s, "\"cell\":\"{}\",", escape(&self.cell));
        let _ = write!(s, "\"index\":{},", self.index);
        let _ = write!(s, "\"schema_version\":{},", self.schema_version);
        let _ = write!(s, "\"config_hash\":\"{:#018x}\",", self.config_hash);
        let _ = write!(s, "\"dataset\":\"{}\",", escape(&self.dataset));
        let _ = write!(s, "\"attack\":\"{}\",", escape(&self.attack));
        let _ = write!(s, "\"defense\":\"{}\",", escape(&self.defense));
        let _ = write!(s, "\"algo\":\"{}\",", escape(&self.algo));
        let _ = write!(s, "\"alpha\":{},", fmt_float(self.alpha));
        let _ = write!(s, "\"clients\":{},", self.clients);
        let _ = write!(s, "\"compromised\":{},", self.compromised);
        let _ = write!(s, "\"rounds\":{},", self.rounds);
        let _ = write!(s, "\"sim\":{},", self.sim);
        let _ = write!(s, "\"benign_ac\":{},", fmt_float(self.benign_ac));
        let _ = write!(s, "\"attack_sr\":{},", fmt_float(self.attack_sr));
        let _ = write!(
            s,
            "\"top25_benign_ac\":{},",
            fmt_float(self.top25_benign_ac)
        );
        let _ = write!(
            s,
            "\"top25_attack_sr\":{},",
            fmt_float(self.top25_attack_sr)
        );
        s.push_str("\"client_metrics\":[");
        for (i, (id, ac, sr)) in self.client_metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{id},\"benign_ac\":{},\"attack_sr\":{}}}",
                fmt_float(*ac),
                fmt_float(*sr)
            );
        }
        s.push_str("],");
        let _ = write!(s, "\"dropped_clients\":{},", self.dropped_clients);
        let _ = write!(s, "\"shed_stragglers\":{},", self.shed_stragglers);
        let _ = write!(s, "\"rejected_updates\":{},", self.rejected_updates);
        let _ = write!(s, "\"checkpoint_failures\":{},", self.checkpoint_failures);
        let _ = write!(s, "\"event_hash\":\"{:#018x}\",", self.event_hash);
        let _ = write!(s, "\"event_count\":{}", self.event_count);
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Extracts the string value of a top-level `"key":"…"` field from a
/// canonical report line (writer-format-specific; enough for resume
/// identity checks and tests — not a general JSON parser).
pub fn extract_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a top-level unquoted field (number/boolean) as raw text.
pub fn extract_raw_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if rest.starts_with('"') || rest.starts_with('[') || rest.starts_with('{') {
        return None;
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

/// Lists the top-level keys of a report line in order (for the
/// comparability contract: every cell row exposes the identical key set).
pub fn top_level_keys(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut current = String::new();
    let mut capturing = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if escaped {
                escaped = false;
                if capturing {
                    current.push(c);
                }
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            } else if capturing {
                current.push(c);
            }
            i += 1;
            continue;
        }
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            '"' => {
                in_str = true;
                // A string at depth 1 right after `{` or `,` is a key.
                capturing = depth == 1;
                if capturing {
                    current.clear();
                }
            }
            ':' if depth == 1 && !current.is_empty() => {
                keys.push(std::mem::take(&mut current));
            }
            ',' => current.clear(),
            _ => {}
        }
        i += 1;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellReport {
        CellReport {
            cell: "attack=collapois+defense=krum+variant=plain".to_string(),
            index: 3,
            schema_version: 1,
            config_hash: 0xfff0_1234_5678_9abc, // above 2^53: must survive
            dataset: "image".to_string(),
            attack: "collapois".to_string(),
            defense: "krum".to_string(),
            algo: "fedavg".to_string(),
            alpha: 1.0,
            clients: 12,
            compromised: 4,
            rounds: 4,
            sim: false,
            benign_ac: 0.75,
            attack_sr: 0.5,
            top25_benign_ac: 0.7,
            top25_attack_sr: 0.9,
            client_metrics: vec![(0, 0.8, 0.4), (5, 0.7, 0.6)],
            dropped_clients: 2,
            shed_stragglers: 1,
            rejected_updates: 0,
            checkpoint_failures: 0,
            event_hash: 0xcbf2_9ce4_8422_2325,
            event_count: 99,
        }
    }

    #[test]
    fn hashes_serialize_as_full_precision_hex() {
        let line = sample().to_json();
        assert!(line.contains("\"config_hash\":\"0xfff0123456789abc\""));
        assert!(line.contains("\"event_hash\":\"0xcbf29ce484222325\""));
        assert_eq!(
            extract_str_field(&line, "config_hash").unwrap(),
            "0xfff0123456789abc"
        );
    }

    #[test]
    fn field_extraction_reads_the_writer_format() {
        let line = sample().to_json();
        assert_eq!(
            extract_str_field(&line, "cell").unwrap(),
            "attack=collapois+defense=krum+variant=plain"
        );
        assert_eq!(extract_raw_field(&line, "index").unwrap(), "3");
        assert_eq!(extract_raw_field(&line, "sim").unwrap(), "false");
        assert_eq!(extract_raw_field(&line, "benign_ac").unwrap(), "0.75");
        assert_eq!(extract_raw_field(&line, "event_count").unwrap(), "99");
        assert_eq!(extract_str_field(&line, "no_such_key"), None);
    }

    #[test]
    fn key_set_is_fixed_and_ordered() {
        let a = sample().to_json();
        let mut other = sample();
        other.defense = "none".to_string();
        other.client_metrics.clear();
        other.sim = true;
        let b = other.to_json();
        let keys_a = top_level_keys(&a);
        let keys_b = top_level_keys(&b);
        assert_eq!(keys_a, keys_b, "rows must stay schema-identical");
        assert_eq!(keys_a.first().map(String::as_str), Some("cell"));
        assert_eq!(keys_a.last().map(String::as_str), Some("event_count"));
        assert!(keys_a.contains(&"client_metrics".to_string()));
        assert!(keys_a.contains(&"dropped_clients".to_string()));
        // Nested object keys must NOT leak into the top level.
        assert!(!keys_a.contains(&"id".to_string()));
    }

    #[test]
    fn escapes_strings() {
        let mut r = sample();
        r.cell = "we\"ird\\cell".to_string();
        let line = r.to_json();
        assert_eq!(extract_str_field(&line, "cell").unwrap(), "we\"ird\\cell");
    }
}
