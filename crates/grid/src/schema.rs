//! The versioned scenario-matrix schema.
//!
//! A scenario file is a TOML document (see [`crate::toml`] for the accepted
//! subset) describing a *grid* of experiment cells:
//!
//! ```toml
//! schema_version = 1
//! name = "smoke"
//!
//! [run]
//! workers = 2               # default --workers for this grid
//!
//! [base]                    # every cell starts from these settings
//! clients = 12
//! alpha = 1.0
//! rounds = 4
//!
//! [axes]                    # cross-product axes, in file order
//! attack = ["collapois", "label-flip"]
//! defense = ["norm-bound", "krum"]
//!
//! [variants.plain]          # named overlays, appended as the last axis
//! [variants.faulted]
//! fault.dropout = 0.2
//! [variants.sim]
//! sim.enabled = true
//! ```
//!
//! Every key is validated against a closed vocabulary — unknown keys,
//! wrong types and out-of-range values are typed [`SchemaError`]s, never
//! silent defaults. Unset keys fall back to the documented defaults of
//! [`ScenarioConfig::quick_image`], [`FaultPlan::none`] and
//! [`SimKnobs::default`], so a file states only what a cell changes.
//!
//! Expansion order is deterministic: the odometer runs the *last* axis
//! fastest, with the variant list (file order) as the final axis; cell ids
//! (`attack=collapois+defense=krum+variant=sim`) and config hashes are
//! therefore stable across machines and runs — the property the grid
//! conformance harness pins against golden fixtures.

use crate::toml::{self, fmt_float, TomlError, TomlTable, TomlValue};
use collapois_core::scenario::{
    AttackKind, CohortMode, DatasetKind, DefenseKind, FlAlgo, Quantization, ScenarioConfig,
    ScenarioModel, SimKnobs,
};
use collapois_runtime::fault::FaultPlan;

/// The schema revision this build reads and writes.
pub const SCHEMA_VERSION: i64 = 1;

/// A typed schema violation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The document is not parseable TOML (subset).
    Toml(TomlError),
    /// `schema_version` is missing or not one this build understands.
    UnsupportedVersion {
        /// The version the file declared (`None` = missing).
        found: Option<i64>,
    },
    /// A required top-level key is absent.
    MissingKey {
        /// Dotted path of the missing key.
        path: String,
    },
    /// A key outside the schema vocabulary.
    UnknownKey {
        /// Dotted path of the offending key.
        path: String,
    },
    /// A key holds a value of the wrong TOML type.
    WrongType {
        /// Dotted path of the offending key.
        path: String,
        /// What the schema expects there.
        expected: &'static str,
        /// What the file actually holds.
        found: &'static str,
    },
    /// A value parses but violates its domain (α ≤ 0, frac > 1, …).
    OutOfRange {
        /// Dotted path of the offending key.
        path: String,
        /// The domain violation.
        message: String,
    },
    /// An `[axes]` entry with no values to iterate.
    EmptyAxis {
        /// The axis key.
        path: String,
    },
    /// A resolved cell fails cross-field validation.
    InvalidCell {
        /// The cell's id.
        cell: String,
        /// What is inconsistent.
        message: String,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Toml(e) => write!(f, "TOML error: {e}"),
            Self::UnsupportedVersion { found: Some(v) } => write!(
                f,
                "unsupported schema_version {v} (this build reads version {SCHEMA_VERSION})"
            ),
            Self::UnsupportedVersion { found: None } => {
                write!(f, "missing schema_version (expected {SCHEMA_VERSION})")
            }
            Self::MissingKey { path } => write!(f, "missing required key '{path}'"),
            Self::UnknownKey { path } => write!(f, "unknown key '{path}'"),
            Self::WrongType {
                path,
                expected,
                found,
            } => write!(f, "key '{path}': expected {expected}, found {found}"),
            Self::OutOfRange { path, message } => write!(f, "key '{path}': {message}"),
            Self::EmptyAxis { path } => write!(f, "axis '{path}' has no values"),
            Self::InvalidCell { cell, message } => write!(f, "cell '{cell}': {message}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<TomlError> for SchemaError {
    fn from(e: TomlError) -> Self {
        Self::Toml(e)
    }
}

/// One fully resolved cell configuration: the scenario plus the execution-
/// engine knobs the schema exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The experiment configuration.
    pub config: ScenarioConfig,
    /// Fault-injection plan (all-zero = no faults).
    pub fault: FaultPlan,
    /// Run under the buffered-async discrete-event simulator.
    pub sim_enabled: bool,
    /// Simulator knobs (used only when `sim_enabled`).
    pub sim: SimKnobs,
}

impl Default for CellSpec {
    fn default() -> Self {
        Self {
            config: ScenarioConfig::quick_image(1.0, 0.1),
            fault: FaultPlan::none(),
            sim_enabled: false,
            sim: SimKnobs::default(),
        }
    }
}

/// Every settable key, in canonical order. Kept as one table so the setter,
/// the canonical dump and the vocabulary check can never drift apart.
pub const CELL_KEYS: &[&str] = &[
    "dataset",
    "clients",
    "samples_per_client",
    "alpha",
    "compromised_frac",
    "attack",
    "defense",
    "algo",
    "model",
    "rounds",
    "local_steps",
    "batch_size",
    "client_lr",
    "server_lr",
    "sample_rate",
    "eval_every",
    "seed",
    "poison_fraction",
    "trojan_epochs",
    "quantization",
    "cohort",
    "shard_budget_mb",
    "fault.dropout",
    "fault.straggler",
    "fault.straggler_mean_ms",
    "fault.deadline_ms",
    "fault.corrupt",
    "fault.checkpoint_fail",
    "sim.enabled",
    "sim.arrival_mean_ms",
    "sim.train_mean_ms",
    "sim.buffer_k",
    "sim.flush_deadline_ms",
    "sim.staleness_decay",
    "sim.churn_up_ms",
    "sim.churn_down_ms",
    "sim.max_concurrency",
];

fn wrong_type(path: &str, expected: &'static str, v: &TomlValue) -> SchemaError {
    SchemaError::WrongType {
        path: path.to_string(),
        expected,
        found: v.type_name(),
    }
}

fn out_of_range(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError::OutOfRange {
        path: path.to_string(),
        message: message.into(),
    }
}

fn as_str<'v>(path: &str, v: &'v TomlValue) -> Result<&'v str, SchemaError> {
    match v {
        TomlValue::Str(s) => Ok(s),
        other => Err(wrong_type(path, "string", other)),
    }
}

fn as_bool(path: &str, v: &TomlValue) -> Result<bool, SchemaError> {
    match v {
        TomlValue::Bool(b) => Ok(*b),
        other => Err(wrong_type(path, "boolean", other)),
    }
}

/// Integers stay integers; a float is rejected even when integral, so a
/// typo like `rounds = 4.5` cannot silently truncate.
fn as_count(path: &str, v: &TomlValue, min: usize) -> Result<usize, SchemaError> {
    match v {
        TomlValue::Int(i) if *i >= min as i64 => Ok(*i as usize),
        TomlValue::Int(i) => Err(out_of_range(
            path,
            format!("{i} is below the minimum {min}"),
        )),
        other => Err(wrong_type(path, "integer", other)),
    }
}

fn as_u64(path: &str, v: &TomlValue) -> Result<u64, SchemaError> {
    match v {
        TomlValue::Int(i) if *i >= 0 => Ok(*i as u64),
        TomlValue::Int(i) => Err(out_of_range(path, format!("{i} must be non-negative"))),
        other => Err(wrong_type(path, "integer", other)),
    }
}

/// Floats accept integer literals too (`alpha = 1` means `1.0`).
fn as_float(path: &str, v: &TomlValue) -> Result<f64, SchemaError> {
    match v {
        TomlValue::Float(f) => Ok(*f),
        TomlValue::Int(i) => Ok(*i as f64),
        other => Err(wrong_type(path, "float", other)),
    }
}

fn float_in(
    path: &str,
    v: &TomlValue,
    lo: f64,
    hi: f64,
    lo_open: bool,
) -> Result<f64, SchemaError> {
    let f = as_float(path, v)?;
    let lo_ok = if lo_open { f > lo } else { f >= lo };
    if lo_ok && f <= hi {
        Ok(f)
    } else {
        let bracket = if lo_open { '(' } else { '[' };
        Err(out_of_range(
            path,
            format!("{f} is outside {bracket}{lo}, {hi}]"),
        ))
    }
}

fn float_min(path: &str, v: &TomlValue, lo: f64, lo_open: bool) -> Result<f64, SchemaError> {
    let f = as_float(path, v)?;
    let ok = if lo_open { f > lo } else { f >= lo };
    if ok {
        Ok(f)
    } else {
        let rel = if lo_open { ">" } else { "≥" };
        Err(out_of_range(path, format!("{f} must be {rel} {lo}")))
    }
}

/// Parses an attack name (accepts the `lflip` shorthand).
pub fn parse_attack(path: &str, name: &str) -> Result<AttackKind, SchemaError> {
    Ok(match name {
        "clean" | "none" => AttackKind::None,
        "collapois" => AttackKind::CollaPois,
        "dpois" => AttackKind::DPois,
        "mrepl" => AttackKind::MRepl,
        "dba" => AttackKind::Dba,
        "label-flip" | "lflip" => AttackKind::LabelFlip,
        "semantic" => AttackKind::Semantic,
        other => {
            return Err(out_of_range(
                path,
                format!(
                    "unknown attack '{other}' \
                     (clean|collapois|dpois|mrepl|dba|label-flip|semantic)"
                ),
            ))
        }
    })
}

/// Parses a defense name (accepts the `fine_prune` underscore spelling for
/// `fine-prune`).
pub fn parse_defense(path: &str, name: &str) -> Result<DefenseKind, SchemaError> {
    let name = if name == "fine_prune" {
        "fine-prune"
    } else {
        name
    };
    DefenseKind::all()
        .iter()
        .copied()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = DefenseKind::all().iter().map(|d| d.name()).collect();
            out_of_range(
                path,
                format!("unknown defense '{name}' ({})", all.join("|")),
            )
        })
}

/// Parses an FL-algorithm name.
pub fn parse_algo(path: &str, name: &str) -> Result<FlAlgo, SchemaError> {
    Ok(match name {
        "fedavg" => FlAlgo::FedAvg,
        "feddc" => FlAlgo::FedDc,
        "metafed" => FlAlgo::MetaFed,
        "ditto" => FlAlgo::Ditto,
        "clustered" => FlAlgo::Clustered,
        "scaffold" => FlAlgo::Scaffold,
        other => {
            return Err(out_of_range(
                path,
                format!("unknown algo '{other}' (fedavg|feddc|metafed|ditto|clustered|scaffold)"),
            ))
        }
    })
}

/// Parses a cohort-materialization mode name.
pub fn parse_cohort(path: &str, name: &str) -> Result<CohortMode, SchemaError> {
    Ok(match name {
        "auto" => CohortMode::Auto,
        "eager" => CohortMode::Eager,
        "lazy" => CohortMode::Lazy,
        other => {
            return Err(out_of_range(
                path,
                format!("unknown cohort mode '{other}' (auto|eager|lazy)"),
            ))
        }
    })
}

/// Parses a client-update transport codec name.
pub fn parse_quantization(path: &str, name: &str) -> Result<Quantization, SchemaError> {
    Quantization::parse(name).ok_or_else(|| {
        out_of_range(
            path,
            format!("unknown quantization '{name}' (f32|f16|int8)"),
        )
    })
}

impl CellSpec {
    /// Applies one `key = value` assignment.
    ///
    /// # Errors
    ///
    /// [`SchemaError::UnknownKey`] for keys outside [`CELL_KEYS`],
    /// [`SchemaError::WrongType`]/[`SchemaError::OutOfRange`] for bad
    /// values.
    pub fn apply(&mut self, path: &str, value: &TomlValue) -> Result<(), SchemaError> {
        let c = &mut self.config;
        match path {
            "dataset" => {
                c.dataset = match as_str(path, value)? {
                    "image" => DatasetKind::Image,
                    "text" => DatasetKind::Text,
                    other => {
                        return Err(out_of_range(
                            path,
                            format!("unknown dataset '{other}' (image|text)"),
                        ))
                    }
                }
            }
            "clients" => c.num_clients = as_count(path, value, 2)?,
            "samples_per_client" => c.samples_per_client = as_count(path, value, 1)?,
            "alpha" => c.alpha = float_min(path, value, 0.0, true)?,
            "compromised_frac" => c.compromised_frac = float_in(path, value, 0.0, 1.0, false)?,
            "attack" => c.attack = parse_attack(path, as_str(path, value)?)?,
            "defense" => c.defense = parse_defense(path, as_str(path, value)?)?,
            "algo" => c.algo = parse_algo(path, as_str(path, value)?)?,
            "model" => {
                c.model_kind = match as_str(path, value)? {
                    "mlp" => ScenarioModel::Mlp,
                    "cnn" => ScenarioModel::Cnn,
                    other => {
                        return Err(out_of_range(
                            path,
                            format!("unknown model '{other}' (mlp|cnn)"),
                        ))
                    }
                }
            }
            "rounds" => c.rounds = as_count(path, value, 1)?,
            "local_steps" => c.local_steps = as_count(path, value, 1)?,
            "batch_size" => c.batch_size = as_count(path, value, 1)?,
            "client_lr" => c.client_lr = float_min(path, value, 0.0, true)?,
            "server_lr" => c.server_lr = float_min(path, value, 0.0, true)?,
            "sample_rate" => c.sample_rate = float_in(path, value, 0.0, 1.0, true)?,
            "eval_every" => c.eval_every = as_count(path, value, 1)?,
            "seed" => c.seed = as_u64(path, value)?,
            "poison_fraction" => c.poison_fraction = float_in(path, value, 0.0, 1.0, false)?,
            "trojan_epochs" => c.trojan.epochs = as_count(path, value, 1)?,
            "quantization" => c.quantization = parse_quantization(path, as_str(path, value)?)?,
            "cohort" => c.cohort = parse_cohort(path, as_str(path, value)?)?,
            "shard_budget_mb" => c.shard_budget_mb = as_count(path, value, 0)?,
            "fault.dropout" => self.fault.dropout = float_in(path, value, 0.0, 1.0, false)?,
            "fault.straggler" => self.fault.straggler = float_in(path, value, 0.0, 1.0, false)?,
            "fault.straggler_mean_ms" => {
                self.fault.straggler_mean_ms = float_min(path, value, 0.0, false)?
            }
            "fault.deadline_ms" => self.fault.deadline_ms = float_min(path, value, 0.0, false)?,
            "fault.corrupt" => self.fault.corrupt = float_in(path, value, 0.0, 1.0, false)?,
            "fault.checkpoint_fail" => {
                self.fault.checkpoint_fail = float_in(path, value, 0.0, 1.0, false)?
            }
            "sim.enabled" => self.sim_enabled = as_bool(path, value)?,
            "sim.arrival_mean_ms" => self.sim.arrival_mean_ms = float_min(path, value, 0.0, true)?,
            "sim.train_mean_ms" => self.sim.train_mean_ms = float_min(path, value, 0.0, true)?,
            "sim.buffer_k" => self.sim.buffer_k = as_count(path, value, 1)?,
            "sim.flush_deadline_ms" => {
                self.sim.flush_deadline_ms = float_min(path, value, 0.0, false)?
            }
            "sim.staleness_decay" => self.sim.staleness_decay = float_min(path, value, 0.0, false)?,
            "sim.churn_up_ms" => self.sim.churn_up_ms = float_min(path, value, 0.0, false)?,
            "sim.churn_down_ms" => self.sim.churn_down_ms = float_min(path, value, 0.0, false)?,
            "sim.max_concurrency" => self.sim.max_concurrency = as_count(path, value, 1)?,
            _ => {
                return Err(SchemaError::UnknownKey {
                    path: path.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Cross-field validation of the resolved cell.
    pub fn validate(&self, cell_id: &str) -> Result<(), SchemaError> {
        let invalid = |message: String| SchemaError::InvalidCell {
            cell: cell_id.to_string(),
            message,
        };
        self.fault.validate().map_err(&invalid)?;
        let c = &self.config;
        let cohort = (c.num_clients as f64 * c.sample_rate).round() as usize;
        if cohort == 0 {
            return Err(invalid(format!(
                "sample_rate {} selects an empty cohort from {} clients",
                c.sample_rate, c.num_clients
            )));
        }
        if c.eval_every > c.rounds {
            return Err(invalid(format!(
                "eval_every {} exceeds rounds {}",
                c.eval_every, c.rounds
            )));
        }
        if self.sim_enabled && self.fault.is_active() {
            return Err(invalid(
                "sim mode and an active fault plan are mutually exclusive \
                 (the simulator models its own availability churn)"
                    .to_string(),
            ));
        }
        if c.defense == DefenseKind::FinePrune && c.model_kind == ScenarioModel::Cnn {
            return Err(invalid(
                "fine-prune targets the hidden layer of the MLP model; \
                 the cnn model has no single prunable hidden layer"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Canonical full-resolution dump: every [`CELL_KEYS`] entry as a
    /// `key = value` line in canonical order, independent of which keys the
    /// file set explicitly. [`config_hash`](Self::config_hash) hashes this
    /// text, so two cells hash equal iff they resolve to the same settings.
    pub fn canonical_lines(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        for key in CELL_KEYS {
            let v = match *key {
                "dataset" => match c.dataset {
                    DatasetKind::Image => "\"image\"".to_string(),
                    DatasetKind::Text => "\"text\"".to_string(),
                },
                "clients" => c.num_clients.to_string(),
                "samples_per_client" => c.samples_per_client.to_string(),
                "alpha" => fmt_float(c.alpha),
                "compromised_frac" => fmt_float(c.compromised_frac),
                "attack" => format!("\"{}\"", c.attack.name()),
                "defense" => format!("\"{}\"", c.defense.name()),
                "algo" => format!("\"{}\"", c.algo.name()),
                "model" => format!("\"{}\"", c.model_kind.name()),
                "rounds" => c.rounds.to_string(),
                "local_steps" => c.local_steps.to_string(),
                "batch_size" => c.batch_size.to_string(),
                "client_lr" => fmt_float(c.client_lr),
                "server_lr" => fmt_float(c.server_lr),
                "sample_rate" => fmt_float(c.sample_rate),
                "eval_every" => c.eval_every.to_string(),
                "seed" => c.seed.to_string(),
                "poison_fraction" => fmt_float(c.poison_fraction),
                "trojan_epochs" => c.trojan.epochs.to_string(),
                "quantization" => format!("\"{}\"", c.quantization.name()),
                "cohort" => format!("\"{}\"", c.cohort.name()),
                "shard_budget_mb" => c.shard_budget_mb.to_string(),
                "fault.dropout" => fmt_float(self.fault.dropout),
                "fault.straggler" => fmt_float(self.fault.straggler),
                "fault.straggler_mean_ms" => fmt_float(self.fault.straggler_mean_ms),
                "fault.deadline_ms" => fmt_float(self.fault.deadline_ms),
                "fault.corrupt" => fmt_float(self.fault.corrupt),
                "fault.checkpoint_fail" => fmt_float(self.fault.checkpoint_fail),
                "sim.enabled" => self.sim_enabled.to_string(),
                "sim.arrival_mean_ms" => fmt_float(self.sim.arrival_mean_ms),
                "sim.train_mean_ms" => fmt_float(self.sim.train_mean_ms),
                "sim.buffer_k" => self.sim.buffer_k.to_string(),
                "sim.flush_deadline_ms" => fmt_float(self.sim.flush_deadline_ms),
                "sim.staleness_decay" => fmt_float(self.sim.staleness_decay),
                "sim.churn_up_ms" => fmt_float(self.sim.churn_up_ms),
                "sim.churn_down_ms" => fmt_float(self.sim.churn_down_ms),
                "sim.max_concurrency" => self.sim.max_concurrency.to_string(),
                other => unreachable!("CELL_KEYS entry '{other}' without a dump arm"),
            };
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        }
        out
    }

    /// FNV-1a over [`canonical_lines`](Self::canonical_lines): the cell's
    /// configuration identity (used by resume to detect edited scenarios).
    pub fn config_hash(&self) -> u64 {
        fnv1a(self.canonical_lines().as_bytes())
    }
}

/// FNV-1a (the same constants as the runtime's event hasher, so all digests
/// in this workspace share one well-understood function).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One expanded grid cell, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Position in expansion order (0-based).
    pub index: usize,
    /// Stable id: `axis=value+…+variant=name`.
    pub id: String,
    /// The resolved configuration.
    pub spec: CellSpec,
    /// [`CellSpec::config_hash`], precomputed.
    pub config_hash: u64,
}

/// One `key = value` overlay assignment (flattened dotted path).
type Assignment = (String, TomlValue);

/// A parsed, validated scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (reports and progress lines).
    pub name: String,
    /// Default worker count for the grid runner (0 = sequential).
    pub default_workers: usize,
    base: Vec<Assignment>,
    axes: Vec<(String, Vec<TomlValue>)>,
    variants: Vec<(String, Vec<Assignment>)>,
}

/// Flattens a table into dotted-path assignments, in file order.
fn flatten(table: &TomlTable, prefix: &str, out: &mut Vec<Assignment>) {
    for (k, v) in table.entries() {
        let path = if prefix.is_empty() {
            k.clone()
        } else {
            format!("{prefix}.{k}")
        };
        match v {
            TomlValue::Table(t) => flatten(t, &path, out),
            other => out.push((path, other.clone())),
        }
    }
}

impl GridSpec {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Any [`SchemaError`]: TOML syntax, version mismatch, unknown keys,
    /// bad values, empty axes, or a cell that fails cross-field validation.
    pub fn parse(text: &str) -> Result<Self, SchemaError> {
        let root = toml::parse(text)?;
        // Closed top-level vocabulary.
        for (k, _) in root.entries() {
            if !matches!(
                k.as_str(),
                "schema_version" | "name" | "run" | "base" | "axes" | "variants"
            ) {
                return Err(SchemaError::UnknownKey { path: k.clone() });
            }
        }
        match root.get("schema_version") {
            Some(TomlValue::Int(v)) if *v == SCHEMA_VERSION => {}
            Some(TomlValue::Int(v)) => {
                return Err(SchemaError::UnsupportedVersion { found: Some(*v) })
            }
            Some(other) => return Err(wrong_type("schema_version", "integer", other)),
            None => return Err(SchemaError::UnsupportedVersion { found: None }),
        }
        let name = match root.get("name") {
            Some(TomlValue::Str(s)) if !s.is_empty() => s.clone(),
            Some(TomlValue::Str(_)) => {
                return Err(out_of_range("name", "must be non-empty"));
            }
            Some(other) => return Err(wrong_type("name", "string", other)),
            None => {
                return Err(SchemaError::MissingKey {
                    path: "name".to_string(),
                })
            }
        };

        let mut default_workers = 0usize;
        if let Some(run) = root.get("run") {
            let run = match run {
                TomlValue::Table(t) => t,
                other => return Err(wrong_type("run", "table", other)),
            };
            for (k, v) in run.entries() {
                match k.as_str() {
                    "workers" => default_workers = as_count("run.workers", v, 0)?,
                    other => {
                        return Err(SchemaError::UnknownKey {
                            path: format!("run.{other}"),
                        })
                    }
                }
            }
        }

        let mut base = Vec::new();
        if let Some(v) = root.get("base") {
            match v {
                TomlValue::Table(t) => flatten(t, "base", &mut base),
                other => return Err(wrong_type("base", "table", other)),
            }
        }
        let base: Vec<Assignment> = base
            .into_iter()
            .map(|(p, v)| (p.trim_start_matches("base.").to_string(), v))
            .collect();

        let mut axes = Vec::new();
        if let Some(v) = root.get("axes") {
            let t = match v {
                TomlValue::Table(t) => t,
                other => return Err(wrong_type("axes", "table", other)),
            };
            for (k, v) in t.entries() {
                let path = format!("axes.{k}");
                let values = match v {
                    TomlValue::Array(items) => items.clone(),
                    other => return Err(wrong_type(&path, "array", other)),
                };
                if values.is_empty() {
                    return Err(SchemaError::EmptyAxis { path });
                }
                axes.push((k.clone(), values));
            }
        }

        let mut variants = Vec::new();
        if let Some(v) = root.get("variants") {
            let t = match v {
                TomlValue::Table(t) => t,
                other => return Err(wrong_type("variants", "table", other)),
            };
            for (k, v) in t.entries() {
                let path = format!("variants.{k}");
                let overlay_table = match v {
                    TomlValue::Table(t) => t,
                    other => return Err(wrong_type(&path, "table", other)),
                };
                let mut overlay = Vec::new();
                flatten(overlay_table, "", &mut overlay);
                variants.push((k.clone(), overlay));
            }
        }

        let spec = Self {
            name,
            default_workers,
            base,
            axes,
            variants,
        };
        // Expanding validates every assignment and every resolved cell.
        spec.cells()?;
        Ok(spec)
    }

    /// The grid's axes (name, value count) — for `--list` style summaries.
    pub fn axis_summary(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .axes
            .iter()
            .map(|(k, vs)| (k.clone(), vs.len()))
            .collect();
        if !self.variants.is_empty() {
            out.push(("variant".to_string(), self.variants.len()));
        }
        out
    }

    /// Expands the cross-product into cells, in deterministic odometer
    /// order (last axis fastest, variants as the final axis).
    ///
    /// # Errors
    ///
    /// Any assignment or cross-field validation failure, attributed to the
    /// offending key or cell.
    pub fn cells(&self) -> Result<Vec<GridCell>, SchemaError> {
        let mut base = CellSpec::default();
        for (path, value) in &self.base {
            base.apply(path, value)?;
        }

        let axis_card: Vec<usize> = self.axes.iter().map(|(_, vs)| vs.len()).collect();
        let n_variants = self.variants.len().max(1);
        let total: usize = axis_card.iter().product::<usize>() * n_variants;

        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            // Odometer decode: variants fastest, then axes right-to-left.
            let mut rem = index;
            let variant_idx = rem % n_variants;
            rem /= n_variants;
            let mut axis_idx = vec![0usize; self.axes.len()];
            for (slot, card) in axis_idx.iter_mut().zip(&axis_card).rev() {
                *slot = rem % card;
                rem /= card;
            }

            let mut spec = base.clone();
            let mut id_parts = Vec::with_capacity(self.axes.len() + 1);
            for (a, (key, values)) in self.axes.iter().enumerate() {
                let value = &values[axis_idx[a]];
                spec.apply(key, value)
                    .map_err(|e| rescope_axis(e, key, axis_idx[a]))?;
                id_parts.push(format!("{key}={}", id_fragment(value)));
            }
            if let Some((vname, overlay)) = self.variants.get(variant_idx) {
                for (path, value) in overlay {
                    spec.apply(path, value)
                        .map_err(|e| rescope_variant(e, vname))?;
                }
                id_parts.push(format!("variant={vname}"));
            }
            let id = if id_parts.is_empty() {
                "cell".to_string()
            } else {
                id_parts.join("+")
            };
            spec.validate(&id)?;
            let config_hash = spec.config_hash();
            cells.push(GridCell {
                index,
                id,
                spec,
                config_hash,
            });
        }
        Ok(cells)
    }

    /// Serializes back to canonical TOML: `parse(to_toml(s))` reproduces
    /// the same cells (ids, order, config hashes).
    pub fn to_toml(&self) -> String {
        let mut root = TomlTable::new();
        root.insert("schema_version", TomlValue::Int(SCHEMA_VERSION))
            .expect("fresh table");
        root.insert("name", TomlValue::Str(self.name.clone()))
            .expect("fresh table");
        if self.default_workers > 0 {
            let mut run = TomlTable::new();
            run.insert("workers", TomlValue::Int(self.default_workers as i64))
                .expect("fresh table");
            root.insert("run", TomlValue::Table(run))
                .expect("fresh table");
        }
        let mut base = TomlTable::new();
        for (path, value) in &self.base {
            let segs: Vec<&str> = path.split('.').collect();
            base.insert_path(&segs, value.clone())
                .expect("assignments validated at parse");
        }
        root.insert("base", TomlValue::Table(base))
            .expect("fresh table");
        let mut axes = TomlTable::new();
        for (key, values) in &self.axes {
            axes.insert(key, TomlValue::Array(values.clone()))
                .expect("axes validated at parse");
        }
        root.insert("axes", TomlValue::Table(axes))
            .expect("fresh table");
        if !self.variants.is_empty() {
            let mut variants = TomlTable::new();
            for (name, overlay) in &self.variants {
                let mut t = TomlTable::new();
                for (path, value) in overlay {
                    let segs: Vec<&str> = path.split('.').collect();
                    t.insert_path(&segs, value.clone())
                        .expect("overlay validated at parse");
                }
                variants
                    .insert(name, TomlValue::Table(t))
                    .expect("variants validated at parse");
            }
            root.insert("variants", TomlValue::Table(variants))
                .expect("fresh table");
        }
        toml::write(&root)
    }
}

/// Renders an axis value for a cell id (strings bare, scalars as printed).
fn id_fragment(v: &TomlValue) -> String {
    match v {
        TomlValue::Str(s) => s.clone(),
        other => other.render(),
    }
}

fn rescope_axis(e: SchemaError, key: &str, value_idx: usize) -> SchemaError {
    match e {
        SchemaError::UnknownKey { path } => SchemaError::UnknownKey {
            path: format!("axes.{path}"),
        },
        SchemaError::WrongType {
            path,
            expected,
            found,
        } => SchemaError::WrongType {
            path: format!("axes.{path}[{value_idx}]"),
            expected,
            found,
        },
        SchemaError::OutOfRange { path, message } => SchemaError::OutOfRange {
            path: format!("axes.{path}[{value_idx}]"),
            message,
        },
        other => {
            let _ = key;
            other
        }
    }
}

fn rescope_variant(e: SchemaError, vname: &str) -> SchemaError {
    match e {
        SchemaError::UnknownKey { path } => SchemaError::UnknownKey {
            path: format!("variants.{vname}.{path}"),
        },
        SchemaError::WrongType {
            path,
            expected,
            found,
        } => SchemaError::WrongType {
            path: format!("variants.{vname}.{path}"),
            expected,
            found,
        },
        SchemaError::OutOfRange { path, message } => SchemaError::OutOfRange {
            path: format!("variants.{vname}.{path}"),
            message,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
schema_version = 1
name = "unit"

[run]
workers = 2

[base]
clients = 12
samples_per_client = 20
alpha = 1.0
rounds = 4
eval_every = 4
trojan_epochs = 8

[axes]
attack = ["collapois", "label-flip"]
defense = ["norm-bound", "krum"]

[variants.plain]

[variants.faulted]
fault.dropout = 0.2
"#;

    #[test]
    fn expands_cross_product_in_odometer_order() {
        let spec = GridSpec::parse(SMOKE).unwrap();
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 8); // 2 × 2 × 2
        assert_eq!(
            cells[0].id,
            "attack=collapois+defense=norm-bound+variant=plain"
        );
        assert_eq!(
            cells[1].id,
            "attack=collapois+defense=norm-bound+variant=faulted"
        );
        assert_eq!(cells[2].id, "attack=collapois+defense=krum+variant=plain");
        assert_eq!(
            cells[7].id,
            "attack=label-flip+defense=krum+variant=faulted"
        );
        assert_eq!(spec.default_workers, 2);
        // Resolved settings: base applied everywhere, overlay only where named.
        assert_eq!(cells[0].spec.config.num_clients, 12);
        assert_eq!(cells[0].spec.fault.dropout, 0.0);
        assert_eq!(cells[1].spec.fault.dropout, 0.2);
        assert_eq!(cells[1].spec.config.attack, AttackKind::CollaPois);
        assert_eq!(cells[7].spec.config.defense, DefenseKind::Krum);
        // Indices are positional and hashes are distinct per distinct config.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        let mut hashes: Vec<u64> = cells.iter().map(|c| c.config_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 8, "distinct cells hash distinctly");
    }

    #[test]
    fn canonical_toml_round_trips_cells() {
        let spec = GridSpec::parse(SMOKE).unwrap();
        let text = spec.to_toml();
        let reparsed = GridSpec::parse(&text).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.cells().unwrap(), reparsed.cells().unwrap());
        // Idempotent canonicalization.
        assert_eq!(text, reparsed.to_toml());
    }

    #[test]
    fn config_hash_tracks_settings_not_spelling() {
        let a = GridSpec::parse(SMOKE).unwrap().cells().unwrap();
        // Same settings written via an equivalent document (base keys in a
        // different order) hash identically…
        let reordered = SMOKE.replace(
            "clients = 12\nsamples_per_client = 20",
            "samples_per_client = 20\nclients = 12",
        );
        let b = GridSpec::parse(&reordered).unwrap().cells().unwrap();
        assert_eq!(a[0].config_hash, b[0].config_hash);
        // …while a changed setting changes the hash.
        let edited = SMOKE.replace("alpha = 1.0", "alpha = 0.5");
        let c = GridSpec::parse(&edited).unwrap().cells().unwrap();
        assert_ne!(a[0].config_hash, c[0].config_hash);
    }

    #[test]
    fn rejects_unknown_and_out_of_range_keys() {
        let unknown = SMOKE.replace("clients = 12", "cleints = 12");
        match GridSpec::parse(&unknown).unwrap_err() {
            SchemaError::UnknownKey { path } => assert_eq!(path, "cleints"),
            other => panic!("expected UnknownKey, got {other}"),
        }
        let bad_alpha = SMOKE.replace("alpha = 1.0", "alpha = -0.5");
        assert!(matches!(
            GridSpec::parse(&bad_alpha).unwrap_err(),
            SchemaError::OutOfRange { .. }
        ));
        let bad_frac = SMOKE.replace("[axes]", "compromised_frac = 1.5\n[axes]");
        match GridSpec::parse(&bad_frac).unwrap_err() {
            SchemaError::OutOfRange { path, .. } => assert_eq!(path, "compromised_frac"),
            other => panic!("expected OutOfRange, got {other}"),
        }
        let bad_type = SMOKE.replace("rounds = 4", "rounds = 4.5");
        assert!(matches!(
            GridSpec::parse(&bad_type).unwrap_err(),
            SchemaError::WrongType { .. }
        ));
        let bad_axis_value = SMOKE.replace("\"krum\"", "\"kurm\"");
        match GridSpec::parse(&bad_axis_value).unwrap_err() {
            SchemaError::OutOfRange { path, .. } => assert_eq!(path, "axes.defense[1]"),
            other => panic!("expected OutOfRange, got {other}"),
        }
        let bad_variant = SMOKE.replace("fault.dropout = 0.2", "fault.dropuot = 0.2");
        match GridSpec::parse(&bad_variant).unwrap_err() {
            SchemaError::UnknownKey { path } => {
                assert_eq!(path, "variants.faulted.fault.dropuot")
            }
            other => panic!("expected UnknownKey, got {other}"),
        }
    }

    #[test]
    fn version_and_name_are_required() {
        assert!(matches!(
            GridSpec::parse("name = \"x\"").unwrap_err(),
            SchemaError::UnsupportedVersion { found: None }
        ));
        assert!(matches!(
            GridSpec::parse("schema_version = 99\nname = \"x\"").unwrap_err(),
            SchemaError::UnsupportedVersion { found: Some(99) }
        ));
        assert!(matches!(
            GridSpec::parse("schema_version = 1").unwrap_err(),
            SchemaError::MissingKey { .. }
        ));
    }

    #[test]
    fn rejects_inconsistent_cells() {
        // eval_every exceeding rounds is a cross-field violation.
        let doc = SMOKE.replace("eval_every = 4", "eval_every = 9");
        match GridSpec::parse(&doc).unwrap_err() {
            SchemaError::InvalidCell { message, .. } => {
                assert!(message.contains("eval_every"), "{message}")
            }
            other => panic!("expected InvalidCell, got {other}"),
        }
        // Sim + active faults are mutually exclusive.
        let doc = SMOKE.replace(
            "fault.dropout = 0.2",
            "fault.dropout = 0.2\nsim.enabled = true",
        );
        assert!(matches!(
            GridSpec::parse(&doc).unwrap_err(),
            SchemaError::InvalidCell { .. }
        ));
    }

    #[test]
    fn cohort_keys_parse_and_hash() {
        let doc = SMOKE.replace("[axes]", "cohort = \"lazy\"\nshard_budget_mb = 64\n[axes]");
        let cells = GridSpec::parse(&doc).unwrap().cells().unwrap();
        assert_eq!(cells[0].spec.config.cohort, CohortMode::Lazy);
        assert_eq!(cells[0].spec.config.shard_budget_mb, 64);
        let base = GridSpec::parse(SMOKE).unwrap().cells().unwrap();
        assert_eq!(base[0].spec.config.cohort, CohortMode::Auto);
        assert_ne!(cells[0].config_hash, base[0].config_hash);
        let bad = SMOKE.replace("[axes]", "cohort = \"sometimes\"\n[axes]");
        match GridSpec::parse(&bad).unwrap_err() {
            SchemaError::OutOfRange { path, .. } => assert_eq!(path, "cohort"),
            other => panic!("expected OutOfRange, got {other}"),
        }
    }

    #[test]
    fn empty_axis_is_an_error() {
        let doc = SMOKE.replace("attack = [\"collapois\", \"label-flip\"]", "attack = []");
        assert!(matches!(
            GridSpec::parse(&doc).unwrap_err(),
            SchemaError::EmptyAxis { .. }
        ));
    }

    #[test]
    fn grid_without_axes_or_variants_is_one_cell() {
        let doc = "schema_version = 1\nname = \"single\"\n[base]\nrounds = 2\neval_every = 2\n";
        let cells = GridSpec::parse(doc).unwrap().cells().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].id, "cell");
        assert_eq!(cells[0].spec.config.rounds, 2);
    }

    #[test]
    fn defaults_match_quick_image() {
        let doc = "schema_version = 1\nname = \"d\"\n";
        let cells = GridSpec::parse(doc).unwrap().cells().unwrap();
        let expected = ScenarioConfig::quick_image(1.0, 0.1);
        assert_eq!(cells[0].spec.config, expected);
        assert_eq!(cells[0].spec.fault, FaultPlan::none());
        assert!(!cells[0].spec.sim_enabled);
    }
}
