//! Minimal TOML subset reader/writer (this workspace is dependency-free,
//! so the scenario schema carries its own parser, in the same spirit as
//! the hand-rolled JSONL codec in `collapois-runtime::trace`).
//!
//! Supported surface — exactly what scenario files need:
//!
//! * `[a.b]` table headers and bare dotted keys (`fault.dropout = 0.2`);
//! * scalars: basic strings (`"…"` with the JSON escape set), integers,
//!   floats, booleans;
//! * single-line arrays of scalars;
//! * `#` comments and blank lines.
//!
//! Not supported (rejected with a line-numbered error, never silently
//! misread): multi-line strings/arrays, inline tables, arrays of tables,
//! dates, `+`/underscore digit separators, non-finite floats.
//!
//! The writer emits a *canonical* form — scalars before subtables, tables
//! as explicit `[dotted.headers]` in first-insertion order, floats printed
//! so they round-trip — so `write(parse(write(t))) == write(t)` holds and
//! schema round-trip tests can compare strings byte-for-byte.

use std::fmt::Write as _;

/// One TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// Basic string.
    Str(String),
    /// Integer (TOML integers are i64).
    Int(i64),
    /// Finite float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Single-line array of scalars.
    Array(Vec<TomlValue>),
    /// Nested table.
    Table(TomlTable),
}

impl TomlValue {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Self::Str(_) => "string",
            Self::Int(_) => "integer",
            Self::Float(_) => "float",
            Self::Bool(_) => "boolean",
            Self::Array(_) => "array",
            Self::Table(_) => "table",
        }
    }

    /// The value rendered as it would appear in a TOML file (scalars and
    /// arrays only; tables render as their header form elsewhere).
    pub fn render(&self) -> String {
        match self {
            Self::Str(s) => format!("\"{}\"", escape(s)),
            Self::Int(i) => format!("{i}"),
            Self::Float(f) => fmt_float(*f),
            Self::Bool(b) => format!("{b}"),
            Self::Array(items) => {
                let inner: Vec<String> = items.iter().map(TomlValue::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Self::Table(_) => "<table>".to_string(),
        }
    }
}

/// An ordered table: entries keep first-insertion order so the canonical
/// writer is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlTable {
    entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, TomlValue)] {
        &self.entries
    }

    /// Looks up a direct child.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a nested value by dotted path.
    pub fn get_path(&self, path: &str) -> Option<&TomlValue> {
        let mut current = self;
        let mut segments = path.split('.').peekable();
        while let Some(seg) = segments.next() {
            let v = current.get(seg)?;
            if segments.peek().is_none() {
                return Some(v);
            }
            match v {
                TomlValue::Table(t) => current = t,
                _ => return None,
            }
        }
        None
    }

    /// Inserts a direct child, rejecting duplicates.
    pub fn insert(&mut self, key: &str, value: TomlValue) -> Result<(), String> {
        if self.get(key).is_some() {
            return Err(format!("duplicate key '{key}'"));
        }
        self.entries.push((key.to_string(), value));
        Ok(())
    }

    /// Returns the subtable at `key`, creating an empty one if absent.
    /// Errors if `key` already holds a non-table value.
    fn subtable_mut(&mut self, key: &str) -> Result<&mut TomlTable, String> {
        if self.get(key).is_none() {
            self.entries
                .push((key.to_string(), TomlValue::Table(TomlTable::new())));
        }
        match self
            .entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
        {
            Some(TomlValue::Table(t)) => Ok(t),
            _ => Err(format!("key '{key}' is not a table")),
        }
    }

    /// Inserts a value at a dotted path, creating intermediate tables.
    pub fn insert_path(&mut self, path: &[&str], value: TomlValue) -> Result<(), String> {
        match path {
            [] => Err("empty key".to_string()),
            [last] => self.insert(last, value),
            [head, rest @ ..] => self.subtable_mut(head)?.insert_path(rest, value),
        }
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending text (0 for whole-document errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TomlError {}

fn terr(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns a line-numbered [`TomlError`] on anything outside the supported
/// subset: malformed headers/keys/values, duplicate keys, duplicate table
/// headers, multi-line constructs.
pub fn parse(text: &str) -> Result<TomlTable, TomlError> {
    let mut root = TomlTable::new();
    let mut current_path: Vec<String> = Vec::new();
    let mut seen_headers: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            if header.starts_with('[') {
                return Err(terr(lineno, "arrays of tables ([[…]]) are not supported"));
            }
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| terr(lineno, "unterminated table header"))?;
            let path = split_key(header).map_err(|m| terr(lineno, m))?;
            let joined = path.join(".");
            if seen_headers.contains(&joined) {
                return Err(terr(lineno, format!("duplicate table header [{joined}]")));
            }
            seen_headers.push(joined);
            // Materialize the table so empty tables survive round-trips.
            let mut t = &mut root;
            for seg in &path {
                t = t.subtable_mut(seg).map_err(|m| terr(lineno, m))?;
            }
            current_path = path;
            continue;
        }
        let eq = find_unquoted(&line, '=')
            .ok_or_else(|| terr(lineno, "expected 'key = value' or '[table]'"))?;
        let key_part = line[..eq].trim();
        let value_part = line[eq + 1..].trim();
        if value_part.is_empty() {
            return Err(terr(lineno, format!("key '{key_part}' has no value")));
        }
        let key_path = split_key(key_part).map_err(|m| terr(lineno, m))?;
        let value = parse_value(value_part).map_err(|m| terr(lineno, m))?;
        let mut table = &mut root;
        for seg in &current_path {
            table = table.subtable_mut(seg).map_err(|m| terr(lineno, m))?;
        }
        let segs: Vec<&str> = key_path.iter().map(String::as_str).collect();
        table
            .insert_path(&segs, value)
            .map_err(|m| terr(lineno, m))?;
    }
    Ok(root)
}

/// Serializes a table to the canonical form the parser accepts.
pub fn write(table: &TomlTable) -> String {
    let mut out = String::new();
    write_table(&mut out, table, &mut Vec::new());
    out
}

fn write_table(out: &mut String, table: &TomlTable, path: &mut Vec<String>) {
    // Scalars and arrays first…
    for (k, v) in table.entries() {
        if !matches!(v, TomlValue::Table(_)) {
            let _ = writeln!(out, "{k} = {}", v.render());
        }
    }
    // …then subtables as explicit headers, in insertion order.
    for (k, v) in table.entries() {
        if let TomlValue::Table(t) = v {
            path.push(k.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{}]", path.join("."));
            write_table(out, t, path);
            path.pop();
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Index of the first `c` outside quoted strings.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            c if c == target && !in_str => return Some(i),
            _ => {}
        }
        escaped = false;
    }
    None
}

/// Splits a bare dotted key into validated segments.
fn split_key(key: &str) -> Result<Vec<String>, String> {
    let key = key.trim();
    if key.is_empty() {
        return Err("empty key".to_string());
    }
    key.split('.')
        .map(|seg| {
            let seg = seg.trim();
            if seg.is_empty() {
                return Err(format!("empty segment in key '{key}'"));
            }
            if !seg
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!("key segment '{seg}' must be bare ([A-Za-z0-9_-])"));
            }
            Ok(seg.to_string())
        })
        .collect()
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or_else(|| {
            "unterminated array (multi-line arrays are not supported)".to_string()
        })?;
        let mut items = Vec::new();
        for piece in split_array_items(inner)? {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let v = parse_value(piece)?;
            if matches!(v, TomlValue::Array(_)) {
                return Err("nested arrays are not supported".to_string());
            }
            items.push(v);
        }
        return Ok(TomlValue::Array(items));
    }
    if text.starts_with('"') {
        return parse_string(text).map(TomlValue::Str);
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if text.contains(['.', 'e', 'E']) {
        let f: f64 = text
            .parse()
            .map_err(|_| format!("'{text}' is not a valid value"))?;
        if !f.is_finite() {
            return Err(format!("float '{text}' must be finite"));
        }
        return Ok(TomlValue::Float(f));
    }
    text.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("'{text}' is not a valid value"))
}

/// Splits array innards on commas outside strings.
fn split_array_items(inner: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(inner[start..i].to_string());
                start = i + 1;
            }
            '[' | ']' if !in_str => return Err("nested arrays are not supported".to_string()),
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        return Err("unterminated string in array".to_string());
    }
    items.push(inner[start..].to_string());
    Ok(items)
}

fn parse_string(text: &str) -> Result<String, String> {
    let bytes = text.as_bytes();
    if bytes.len() < 2 || bytes[0] != b'"' || bytes[bytes.len() - 1] != b'"' {
        return Err(format!("'{text}' is not a terminated string"));
    }
    let inner = &text[1..text.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err("unescaped quote inside string".to_string());
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(c) => return Err(format!("unsupported escape \\{c}")),
            None => return Err("dangling backslash in string".to_string()),
        }
    }
    Ok(out)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Prints a float so it parses back to the same bits and always reads as a
/// float (integral values keep a `.0`).
pub fn fmt_float(v: f64) -> String {
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_dotted_keys() {
        let doc = r#"
# grid header
schema_version = 1
name = "smoke" # trailing comment

[base]
alpha = 0.1
clients = 12
sim_enabled = false
fault.dropout = 0.25

[axes]
attack = ["collapois", "dpois"]
"#;
        let t = parse(doc).unwrap();
        assert_eq!(t.get("schema_version"), Some(&TomlValue::Int(1)));
        assert_eq!(t.get("name"), Some(&TomlValue::Str("smoke".into())));
        assert_eq!(t.get_path("base.alpha"), Some(&TomlValue::Float(0.1)));
        assert_eq!(t.get_path("base.clients"), Some(&TomlValue::Int(12)));
        assert_eq!(
            t.get_path("base.fault.dropout"),
            Some(&TomlValue::Float(0.25))
        );
        match t.get_path("axes.attack") {
            Some(TomlValue::Array(items)) => assert_eq!(items.len(), 2),
            other => panic!("bad axes.attack: {other:?}"),
        }
    }

    #[test]
    fn canonical_write_is_idempotent() {
        let doc = r#"
name = "x"
[b]
k = 1
f = 2.5
[a.inner]
s = "hi # not a comment"
list = [1, 2, 3]
"#;
        let once = write(&parse(doc).unwrap());
        let twice = write(&parse(&once).unwrap());
        assert_eq!(once, twice);
        assert!(once.contains("[a.inner]"));
        assert!(once.contains("f = 2.5"));
    }

    #[test]
    fn strings_round_trip_with_escapes() {
        let table = {
            let mut t = TomlTable::new();
            t.insert("s", TomlValue::Str("a\"b\\c\nd\te # f".into()))
                .unwrap();
            t
        };
        let text = write(&table);
        assert_eq!(parse(&text).unwrap(), table);
    }

    #[test]
    fn empty_tables_survive_round_trips() {
        let doc = "[variants.plain]\n\n[variants.faulted]\nx = 1\n";
        let t = parse(doc).unwrap();
        assert_eq!(
            t.get_path("variants.plain"),
            Some(&TomlValue::Table(TomlTable::new()))
        );
        let once = write(&t);
        assert_eq!(parse(&once).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_documents() {
        for (doc, needle) in [
            ("k = 1\nk = 2", "duplicate key"),
            ("[t]\nx = 1\n[t]", "duplicate table"),
            ("[t\nx = 1", "unterminated table header"),
            ("x 1", "expected 'key = value'"),
            ("x =", "has no value"),
            ("x = [1, [2]]", "nested arrays"),
            ("x = \"abc", "not a terminated string"),
            ("x = zebra", "not a valid value"),
            ("x = inf", "not a valid value"),
            ("[[cells]]", "arrays of tables"),
            ("a..b = 1", "empty segment"),
            ("weird key = 1", "must be bare"),
            ("x = nan", "not a valid value"),
        ] {
            let e = parse(doc).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "doc {doc:?}: expected {needle:?} in {e}"
            );
        }
    }

    /// Every way of defining the same name twice must surface a typed
    /// [`TomlError`] — never silently last-wins (a grid cell whose axis
    /// value was quietly overwritten would run the wrong scenario).
    #[test]
    fn duplicate_definitions_are_typed_errors_not_last_wins() {
        for (doc, needle) in [
            // Scalar redefined in the same table.
            ("k = 1\nk = 2", "duplicate key 'k'"),
            // Scalar redefined inside a named table.
            ("[t]\na = 1\na = 2", "duplicate key 'a'"),
            // Table header repeated verbatim.
            ("[t]\nx = 1\n[t]\ny = 2", "duplicate table header [t]"),
            // Header opened over an existing scalar.
            ("x = 1\n[x]\ny = 2", "key 'x' is not a table"),
            // Dotted key extending through an existing scalar.
            ("a.b = 1\na.b.c = 2", "key 'b' is not a table"),
            // Dotted header descending through an existing scalar.
            ("[t]\nk = 1\n[t.k]\nv = 2", "key 'k' is not a table"),
            // Key colliding with an earlier-declared subtable.
            ("[a.b]\nv = 1\n[a]\nb = 2", "duplicate key 'b'"),
            // Dotted key colliding with an explicit header's table entry.
            ("[a]\nb.c = 1\n[a.b]\nc = 2", "duplicate key 'c'"),
        ] {
            let e = parse(doc).unwrap_err();
            assert!(e.line > 0, "doc {doc:?}: error must carry a line number");
            assert!(
                e.to_string().contains(needle),
                "doc {doc:?}: expected {needle:?} in {e}"
            );
        }
        // The accepted near-misses parse to distinct entries, not overwrites.
        let t = parse("[a]\nb = 1\n[c]\nb = 2\n").unwrap();
        assert_eq!(t.get_path("a.b"), Some(&TomlValue::Int(1)));
        assert_eq!(t.get_path("c.b"), Some(&TomlValue::Int(2)));
    }

    #[test]
    fn floats_and_ints_stay_distinct() {
        let t = parse("a = 1\nb = 1.0\nc = 1e3\n").unwrap();
        assert_eq!(t.get("a"), Some(&TomlValue::Int(1)));
        assert_eq!(t.get("b"), Some(&TomlValue::Float(1.0)));
        assert_eq!(t.get("c"), Some(&TomlValue::Float(1000.0)));
        // Canonical form prints floats as floats.
        assert_eq!(fmt_float(1.0), "1.0");
        assert_eq!(fmt_float(0.25), "0.25");
    }
}
