//! Declarative scenario matrix for the CollaPois reproduction.
//!
//! This crate turns the attack/defense evaluation space into *data*: a
//! versioned TOML scenario file declares a base configuration, cross-
//! product axes and named variants ([`schema`]); the grid runner
//! ([`runner`]) expands the matrix in deterministic order and executes
//! each cell through the existing scenario engine, emitting one
//! comparable JSONL row per cell ([`report`]) with accuracy, attack
//! success rate, per-client metrics, fault counters and — crucially — the
//! run's canonical trace-event hash. Two invocations of the same grid at
//! *any* worker count produce byte-identical reports, which is what lets
//! CI pin the whole attack/defense conformance surface with a handful of
//! golden hash fixtures, and lets a killed grid resume by skipping every
//! cell whose row already matches.
//!
//! ```no_run
//! use collapois_grid::runner::{run_grid, GridRunOptions};
//! use collapois_grid::schema::GridSpec;
//!
//! let text = std::fs::read_to_string("scenarios/smoke.toml").unwrap();
//! let spec = GridSpec::parse(&text).unwrap();
//! let outcome = run_grid(
//!     &spec,
//!     std::path::Path::new("smoke.report.jsonl"),
//!     &GridRunOptions::default(),
//!     |cell, status| println!("{:?} {}", status, cell.id),
//! )
//! .unwrap();
//! assert!(outcome.complete());
//! ```

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod schema;
pub mod toml;
