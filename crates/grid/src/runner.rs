//! The resumable grid runner.
//!
//! Cells execute strictly in expansion order through the existing scenario
//! engine. One JSONL row is appended (and flushed) per completed cell, so
//! a killed run loses at most the in-flight cell. On restart the runner
//! re-reads the report file and keeps the longest prefix of lines that
//! verbatim-match the expected cells (same id, same `config_hash`); a torn
//! final line, a stale row from an edited scenario file, or any
//! out-of-order row truncates the file back to the end of the valid prefix
//! before execution continues. Because every cell is deterministic, the
//! concatenation of a killed-and-resumed run is byte-identical to an
//! uninterrupted one — a property the conformance tests assert directly.

use crate::report::{extract_str_field, CellReport};
use crate::schema::{GridCell, GridSpec};
use collapois_core::scenario::{RunOptions, Scenario};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Execution options for one `run_grid` invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridRunOptions {
    /// Worker threads per cell (`0` = the scenario file's `[run] workers`,
    /// which itself defaults to sequential).
    pub workers: usize,
    /// Ignore any existing report: truncate and rerun every cell.
    pub fresh: bool,
    /// Execute at most this many cells this invocation (`0` = all
    /// remaining). Skipped (already-complete) cells do not count.
    pub limit: usize,
}

/// What happened to one cell (progress callback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// A valid row already existed; the cell was not rerun.
    Skipped,
    /// The cell executed and its row was appended.
    Executed,
}

/// Summary of one `run_grid` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridOutcome {
    /// Cells in the grid.
    pub total: usize,
    /// Cells skipped via resume.
    pub skipped: usize,
    /// Cells executed this invocation.
    pub executed: usize,
    /// Cells still missing (hit `limit`).
    pub remaining: usize,
    /// Where the JSONL report lives.
    pub report_path: PathBuf,
}

impl GridOutcome {
    /// Whether every cell now has a row.
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }
}

/// Splits existing report text into the longest valid prefix.
///
/// Returns `(byte_len, line_count)` of the prefix to keep: complete lines,
/// in expansion order, each matching its expected cell id and config hash.
fn valid_prefix(existing: &str, cells: &[GridCell]) -> (usize, usize) {
    let mut offset = 0usize;
    let mut kept = 0usize;
    for cell in cells {
        let rest = &existing[offset..];
        let Some(nl) = rest.find('\n') else {
            break; // torn or absent line: truncate here
        };
        let line = &rest[..nl];
        let id_ok = extract_str_field(line, "cell").is_some_and(|id| id == cell.id);
        let hash_ok = extract_str_field(line, "config_hash")
            .is_some_and(|h| h == format!("{:#018x}", cell.config_hash));
        if !(id_ok && hash_ok) {
            break; // stale/foreign row: rerun from this cell on
        }
        offset += nl + 1;
        kept += 1;
    }
    (offset, kept)
}

/// Where the wall-clock profile sidecar for a report lives.
///
/// `smoke.jsonl` → `smoke.profile.jsonl`. The sidecar is rewritten from
/// scratch on every invocation and never read back: it carries timing
/// counters (dispatch/barrier milliseconds, steal tallies, shard
/// residency), which are machine-dependent and must stay out of the
/// resume-matched, byte-identity-checked main report.
pub fn profile_sidecar_path(out_path: &Path) -> PathBuf {
    out_path.with_extension("profile.jsonl")
}

/// One sidecar line: the timing-dependent counters for an executed cell.
fn profile_row(cell: &GridCell, report: &collapois_core::scenario::ScenarioReport) -> String {
    let p = &report.profile;
    let mut row = format!(
        concat!(
            "{{\"cell\":\"{}\",\"train_ms\":{:.3},\"commit_ms\":{:.3},",
            "\"aggregate_ms\":{:.3},\"eval_ms\":{:.3},\"dispatch_ms\":{:.3},",
            "\"barrier_ms\":{:.3},\"steals\":{},\"stolen_items\":{}"
        ),
        cell.id,
        p.train_ms,
        p.commit_ms,
        p.aggregate_ms,
        p.eval_ms,
        p.dispatch_ms,
        p.barrier_ms,
        p.steals,
        p.stolen_items,
    );
    if let Some(s) = &report.shard_stats {
        row.push_str(&format!(
            concat!(
                ",\"shard_resident_bytes\":{},\"shard_budget_bytes\":{},",
                "\"shard_hits\":{},\"shard_misses\":{},\"shard_evictions\":{}"
            ),
            s.resident_bytes, s.budget_bytes, s.hits, s.misses, s.evictions,
        ));
    }
    row.push('}');
    row
}

/// Runs (or resumes) a grid, appending one report row per executed cell.
///
/// `progress` fires once per cell in order, after the cell is skipped or
/// its row is durably written. A profile sidecar (see
/// [`profile_sidecar_path`]) is truncated at the start of each invocation
/// and receives one timing row per *executed* cell.
///
/// # Errors
///
/// I/O errors on the report file. Scenario execution itself panics on
/// invalid configurations — which [`GridSpec::parse`] has already ruled
/// out.
pub fn run_grid(
    spec: &GridSpec,
    out_path: &Path,
    opts: &GridRunOptions,
    mut progress: impl FnMut(&GridCell, CellStatus),
) -> io::Result<GridOutcome> {
    let cells = spec
        .cells()
        .expect("GridSpec::parse validated the expansion");
    let workers = if opts.workers > 0 {
        opts.workers
    } else {
        spec.default_workers
    };

    // Resume: find how much of the existing report is still valid.
    let (keep_bytes, keep_lines) = if opts.fresh {
        (0, 0)
    } else {
        match File::open(out_path) {
            Ok(mut f) => {
                let mut existing = String::new();
                f.read_to_string(&mut existing)?;
                valid_prefix(&existing, &cells)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, 0),
            Err(e) => return Err(e),
        }
    };

    // Keep the valid prefix: open without truncation, then cut the tail.
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(out_path)?;
    file.set_len(keep_bytes as u64)?;
    file.seek(SeekFrom::Start(keep_bytes as u64))?;

    // Timing sidecar: truncated every invocation, never resume-matched.
    let mut profile_file = File::create(profile_sidecar_path(out_path))?;

    let mut executed = 0usize;
    let mut position = 0usize; // cells with a row so far
    for cell in &cells {
        if position < keep_lines {
            position += 1;
            progress(cell, CellStatus::Skipped);
            continue;
        }
        if opts.limit > 0 && executed >= opts.limit {
            break;
        }
        let run_opts = RunOptions {
            workers,
            fault: cell.spec.fault,
            sim: cell.spec.sim_enabled.then_some(cell.spec.sim),
            ..RunOptions::default()
        };
        let report = Scenario::new(cell.spec.config.clone()).run_with(&run_opts);
        let row = CellReport::from_run(cell, &report);
        file.write_all(row.to_json().as_bytes())?;
        file.write_all(b"\n")?;
        // Flush per cell: a kill loses at most the in-flight cell.
        file.flush()?;
        file.sync_data()?;
        profile_file.write_all(profile_row(cell, &report).as_bytes())?;
        profile_file.write_all(b"\n")?;
        profile_file.flush()?;
        executed += 1;
        position += 1;
        progress(cell, CellStatus::Executed);
    }

    Ok(GridOutcome {
        total: cells.len(),
        skipped: keep_lines,
        executed,
        remaining: cells.len() - position,
        report_path: out_path.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_spec() -> GridSpec {
        GridSpec::parse(
            r#"
schema_version = 1
name = "runner-unit"

[base]
clients = 8
samples_per_client = 12
alpha = 1.0
compromised_frac = 0.5
rounds = 2
eval_every = 2
local_steps = 2
batch_size = 8
sample_rate = 0.5
trojan_epochs = 2
attack = "dpois"

[axes]
defense = ["none", "median"]
"#,
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("collapois-grid-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn runs_all_cells_and_resumes_as_noop() {
        let spec = fast_spec();
        let out = tmp("full.jsonl");
        let _ = std::fs::remove_file(&out);
        let o1 = run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        assert_eq!((o1.total, o1.executed, o1.skipped), (2, 2, 0));
        assert!(o1.complete());
        let text1 = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text1.lines().count(), 2);

        // Second invocation: everything skips, bytes untouched.
        let mut statuses = Vec::new();
        let o2 = run_grid(&spec, &out, &GridRunOptions::default(), |_, s| {
            statuses.push(s)
        })
        .unwrap();
        assert_eq!((o2.executed, o2.skipped), (0, 2));
        assert_eq!(statuses, vec![CellStatus::Skipped; 2]);
        assert_eq!(std::fs::read_to_string(&out).unwrap(), text1);
    }

    #[test]
    fn profile_sidecar_tracks_executed_cells_only() {
        let spec = fast_spec();
        let out = tmp("sidecar.jsonl");
        let _ = std::fs::remove_file(&out);
        run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        let side = profile_sidecar_path(&out);
        assert_eq!(side, tmp("sidecar.profile.jsonl"));
        let text = std::fs::read_to_string(&side).unwrap();
        assert_eq!(text.lines().count(), 2);
        for (line, cell) in text.lines().zip(spec.cells().unwrap()) {
            assert_eq!(extract_str_field(line, "cell").unwrap(), cell.id);
            assert!(line.contains("\"dispatch_ms\":"));
            assert!(line.contains("\"steals\":"));
        }
        // A resume that skips everything leaves an empty sidecar: the
        // file reflects only what this invocation measured.
        run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        assert_eq!(std::fs::read_to_string(&side).unwrap(), "");
    }

    #[test]
    fn limit_stops_early_and_resume_completes() {
        let spec = fast_spec();
        let out = tmp("limited.jsonl");
        let _ = std::fs::remove_file(&out);
        let o1 = run_grid(
            &spec,
            &out,
            &GridRunOptions {
                limit: 1,
                ..GridRunOptions::default()
            },
            |_, _| {},
        )
        .unwrap();
        assert_eq!((o1.executed, o1.remaining), (1, 1));
        assert!(!o1.complete());
        let o2 = run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        assert_eq!((o2.skipped, o2.executed, o2.remaining), (1, 1, 0));
    }

    #[test]
    fn torn_line_is_truncated_and_rerun() {
        let spec = fast_spec();
        let out = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&out);
        run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        let full = std::fs::read_to_string(&out).unwrap();
        // Tear the second line mid-way (simulated kill during write).
        let first_nl = full.find('\n').unwrap();
        let torn = &full[..first_nl + 1 + 20];
        std::fs::write(&out, torn).unwrap();
        let o = run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        assert_eq!((o.skipped, o.executed), (1, 1));
        assert_eq!(std::fs::read_to_string(&out).unwrap(), full);
    }

    #[test]
    fn stale_rows_from_an_edited_grid_are_replaced() {
        let spec = fast_spec();
        let out = tmp("stale.jsonl");
        let _ = std::fs::remove_file(&out);
        run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        // Same axes, different base setting: cell ids match but hashes
        // don't, so nothing may be skipped.
        let edited = GridSpec::parse(
            &fast_spec_text()
                .replace("rounds = 2", "rounds = 3")
                .replace("eval_every = 2", "eval_every = 3"),
        )
        .unwrap();
        let o = run_grid(&edited, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        assert_eq!((o.skipped, o.executed), (0, 2));
    }

    #[test]
    fn fresh_reruns_everything() {
        let spec = fast_spec();
        let out = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&out);
        run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
        let o = run_grid(
            &spec,
            &out,
            &GridRunOptions {
                fresh: true,
                ..GridRunOptions::default()
            },
            |_, _| {},
        )
        .unwrap();
        assert_eq!((o.skipped, o.executed), (0, 2));
    }

    fn fast_spec_text() -> String {
        r#"
schema_version = 1
name = "runner-unit"

[base]
clients = 8
samples_per_client = 12
alpha = 1.0
compromised_frac = 0.5
rounds = 2
eval_every = 2
local_steps = 2
batch_size = 8
sample_rate = 0.5
trojan_epochs = 2
attack = "dpois"

[axes]
defense = ["none", "median"]
"#
        .to_string()
    }
}
