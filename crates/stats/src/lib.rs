//! Statistical substrate for the CollaPois reproduction.
//!
//! The paper's analysis leans on a handful of statistical tools that have no
//! counterpart in the allowed dependency set, so this crate implements them
//! from scratch:
//!
//! * [`special`] — special functions (log-gamma, regularized incomplete
//!   beta/gamma, error function) backing every p-value computation.
//! * [`distribution`] — samplers for Normal, Gamma, Dirichlet and Uniform
//!   distributions built on top of [`rand`]. The symmetric Dirichlet is what
//!   the paper uses to induce non-IID label skew (`Dir(α)`).
//! * [`descriptive`] — means, variances, medians, quantiles, histograms.
//! * [`hypothesis`] — Student/Welch t-tests, Levene's test, the two-sample
//!   Kolmogorov–Smirnov test and the 3σ outlier rule: exactly the battery the
//!   paper applies in §V ("Bypassing Defenses").
//! * [`geometry`] — cosine similarity, angles between gradient vectors, norms:
//!   the quantities behind Figs. 3 and 6 and Theorem 1.
//! * [`hoeffding`] — Hoeffding concentration bounds used to quantify the
//!   approximation error of Theorem 1 (Fig. 4).
//!
//! # Example
//!
//! ```
//! use collapois_stats::geometry::angle_between;
//!
//! let a = [1.0_f32, 0.0];
//! let b = [0.0_f32, 1.0];
//! let theta = angle_between(&a, &b).expect("non-zero vectors");
//! assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod distribution;
pub mod geometry;
pub mod hoeffding;
pub mod hypothesis;
pub mod special;

pub use descriptive::{mean, median, quantile, std_dev, variance};
pub use distribution::{Binomial, Dirichlet, Gamma, Normal};
pub use geometry::{angle_between, cosine_similarity, l2_norm};
pub use hypothesis::{ks_two_sample, levene_test, t_test_welch, three_sigma_outliers, TestResult};
