//! Special functions backing the p-value computations.
//!
//! All routines operate on `f64` and are accurate to roughly 1e-10 over the
//! argument ranges exercised by the hypothesis tests in this crate, which is
//! far tighter than anything the experiments need.

/// Natural log of the gamma function, via the Lanczos approximation (g = 7).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed by this crate and
/// deliberately unsupported to keep the domain honest).
///
/// # Example
///
/// ```
/// let v = collapois_stats::special::ln_gamma(5.0);
/// assert!((v - (24.0_f64).ln()).abs() < 1e-10); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's algorithm), as in Numerical Recipes.
///
/// Returns a value in `[0, 1]`. This is the backbone of the t-distribution
/// and F-distribution CDFs.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai requires a,b > 0 (a={a}, b={b})");
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to stay in the rapidly converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction helper for [`betai`] (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26
/// refined with a higher-order rational approximation).
pub fn erf(x: f64) -> f64 {
    // Use the complementary error function based on a Chebyshev-like fit
    // (Numerical Recipes `erfc` with fractional error < 1.2e-7 everywhere).
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF `Φ(x)`.
///
/// ```
/// let p = collapois_stats::special::normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-6);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Survival function of the Student t distribution: `P(T > t)` for `df`
/// degrees of freedom. Two-sided p-values are `2 * t_sf(|t|, df)`.
pub fn t_sf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_sf requires df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

/// Survival function of the F distribution: `P(F > f)` with `(d1, d2)`
/// degrees of freedom. Used by Levene's test.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_sf requires positive dof");
    if f <= 0.0 {
        return 1.0;
    }
    betai(0.5 * d2, 0.5 * d1, d2 / (d2 + d1 * f))
}

/// Asymptotic Kolmogorov distribution tail `Q_KS(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}`.
///
/// Used for the two-sample KS-test p-value.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: u64 = (1..=n).product();
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - (fact as f64).ln()).abs() < 1e-9,
                "ln_gamma({}) = {got}",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        assert!((got - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetric_midpoint() {
        // I_{0.5}(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.0, 7.5] {
            let v = betai(a, a, 0.5);
            assert!((v - 0.5).abs() < 1e-9, "a={a}: {v}");
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-9);
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.3, 1.1, 2.4] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-9);
        }
        assert!((normal_cdf(1.959_96) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn t_sf_reference_values() {
        // With df → ∞ the t distribution approaches the normal.
        assert!((t_sf(1.96, 1e7) - (1.0 - normal_cdf(1.96))).abs() < 1e-4);
        // t(df=10): P(T > 2.228) ≈ 0.025 (classic table value).
        assert!((t_sf(2.228, 10.0) - 0.025).abs() < 2e-4);
        // Symmetry.
        assert!((t_sf(-2.228, 10.0) - 0.975).abs() < 2e-4);
    }

    #[test]
    fn f_sf_reference_values() {
        // F(1, d) is the square of t(d): P(F > t²) = 2 P(T > t).
        let t = 2.228;
        let p_f = f_sf(t * t, 1.0, 10.0);
        assert!((p_f - 2.0 * t_sf(t, 10.0)).abs() < 1e-6);
    }

    #[test]
    fn kolmogorov_tail_behaviour() {
        assert!((kolmogorov_sf(0.0) - 1.0).abs() < 1e-12);
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.26999...
        assert!((kolmogorov_sf(1.0) - 0.26999).abs() < 1e-4);
    }
}
