//! Vector geometry over `f32` slices (the parameter/gradient representation
//! used by the NN substrate).
//!
//! Angles between client gradients are the paper's central observable: Fig. 3
//! plots average pairwise angles as a function of the Dirichlet α, Theorem 1
//! models the angle βᵢ between a benign gradient and the aggregated malicious
//! gradient, and Fig. 6's stealth argument is about matching angle statistics.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Euclidean (l2) norm.
pub fn l2_norm(a: &[f32]) -> f64 {
    dot(a, a).sqrt()
}

/// l2 distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; `None` if either vector is (numerically)
/// zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> Option<f64> {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return None;
    }
    Some((dot(a, b) / (na * nb)).clamp(-1.0, 1.0))
}

/// Angle between two vectors in radians, in `[0, π]`; `None` for zero
/// vectors.
///
/// ```
/// use collapois_stats::geometry::angle_between;
/// let a = [1.0_f32, 0.0];
/// let theta = angle_between(&a, &[1.0, 1.0]).unwrap();
/// assert!((theta - std::f64::consts::FRAC_PI_4).abs() < 1e-6);
/// ```
pub fn angle_between(a: &[f32], b: &[f32]) -> Option<f64> {
    cosine_similarity(a, b).map(f64::acos)
}

/// Cosine similarity over `f64` slices (used for label-distribution vectors,
/// Eq. 9 of the paper); `None` for zero vectors.
pub fn cosine_similarity_f64(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "cosine_similarity_f64: length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return None;
    }
    Some((dot / (na * nb)).clamp(-1.0, 1.0))
}

/// Mean of all pairwise angles (radians) among a set of vectors.
/// Pairs where either vector is zero are skipped. Returns `None` if no valid
/// pair exists.
pub fn mean_pairwise_angle(vectors: &[&[f32]]) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            if let Some(theta) = angle_between(vectors[i], vectors[j]) {
                sum += theta;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// All angles (radians) between each vector in `set` and a single
/// `reference` vector, skipping zero vectors.
pub fn angles_to_reference(set: &[&[f32]], reference: &[f32]) -> Vec<f64> {
    set.iter()
        .filter_map(|v| angle_between(v, reference))
        .collect()
}

/// Scales `v` in place so its l2 norm equals `target` (no-op on zero
/// vectors or non-positive targets).
pub fn rescale_to_norm(v: &mut [f32], target: f64) {
    let n = l2_norm(v);
    if n <= f64::EPSILON || target <= 0.0 {
        return;
    }
    let s = (target / n) as f32;
    for x in v {
        *x *= s;
    }
}

/// Clips `v` in place so its l2 norm is at most `bound` (no-op if already
/// within the bound or `bound <= 0`).
pub fn clip_to_norm(v: &mut [f32], bound: f64) {
    let n = l2_norm(v);
    if bound > 0.0 && n > bound {
        rescale_to_norm(v, bound);
    }
}

/// Element-wise mean of equal-length vectors. Returns `None` if the input is
/// empty.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn mean_vector(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let dim = first.len();
    let mut acc = vec![0.0f64; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mean_vector: length mismatch");
        for (a, &x) in acc.iter_mut().zip(v.iter()) {
            *a += x as f64;
        }
    }
    let n = vectors.len() as f64;
    Some(acc.into_iter().map(|a| (a / n) as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]).unwrap() - 1.0).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-3.0, 0.0]).unwrap() + 1.0).abs() < 1e-9);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).unwrap().abs() < 1e-9);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), None);
    }

    #[test]
    fn angle_right_and_opposite() {
        let th = angle_between(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((th - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        let th = angle_between(&[1.0, 0.0], &[-1.0, 0.0]).unwrap();
        assert!((th - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn mean_pairwise_angle_of_axes() {
        let x = [1.0f32, 0.0, 0.0];
        let y = [0.0f32, 1.0, 0.0];
        let z = [0.0f32, 0.0, 1.0];
        let m = mean_pairwise_angle(&[&x, &y, &z]).unwrap();
        assert!((m - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert_eq!(mean_pairwise_angle(&[&x]), None);
    }

    #[test]
    fn angles_to_reference_skips_zero() {
        let zero = [0.0f32, 0.0];
        let a = [1.0f32, 0.0];
        let angles = angles_to_reference(&[&zero, &a], &[1.0, 0.0]);
        assert_eq!(angles.len(), 1);
        assert!(angles[0].abs() < 1e-6);
    }

    #[test]
    fn rescale_and_clip() {
        let mut v = vec![3.0f32, 4.0];
        rescale_to_norm(&mut v, 10.0);
        assert!((l2_norm(&v) - 10.0).abs() < 1e-5);
        clip_to_norm(&mut v, 1.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-5);
        // Already within bound: unchanged.
        let before = v.clone();
        clip_to_norm(&mut v, 5.0);
        assert_eq!(v, before);
        // Zero vector untouched.
        let mut z = vec![0.0f32; 4];
        rescale_to_norm(&mut z, 5.0);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mean_vector_basic() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let m = mean_vector(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert_eq!(mean_vector(&[]), None);
    }

    #[test]
    fn cosine_f64_for_label_distributions() {
        let p = [0.5f64, 0.5, 0.0];
        let q = [0.5f64, 0.5, 0.0];
        assert!((cosine_similarity_f64(&p, &q).unwrap() - 1.0).abs() < 1e-12);
        let r = [0.0f64, 0.0, 1.0];
        assert!(cosine_similarity_f64(&p, &r).unwrap().abs() < 1e-12);
    }
}
