//! Descriptive statistics over `f64` slices.
//!
//! These helpers intentionally return `0.0` (not NaN) for degenerate inputs
//! where a neutral value is well defined, and document the convention; the
//! experiment code aggregates over possibly-empty client subsets.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). Returns `0.0` if fewer than
/// two observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population variance (n denominator). Returns `0.0` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Median (average of middle two for even length). Returns `0.0` for an
/// empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`. Returns `0.0` for an
/// empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile input must not contain NaN")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum of a slice; `None` if empty or containing NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.min(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Maximum of a slice; `None` if empty or containing NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .try_fold(f64::NEG_INFINITY, |acc, x| {
            if x.is_nan() {
                None
            } else {
                Some(acc.max(x))
            }
        })
        .filter(|_| !xs.is_empty())
}

/// Fixed-width histogram of `xs` over `[lo, hi)` with `bins` buckets.
/// Values outside the range are clamped into the first/last bucket.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram requires at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Summary statistics bundle for report tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes the summary of a slice.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            min: min(xs).unwrap_or(0.0),
            median: median(xs),
            max: max(xs).unwrap_or(0.0),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} min={:.4} med={:.4} max={:.4} n={}",
            self.mean, self.std, self.min, self.median, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((quantile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 40.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.1, 0.5, 0.9, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]); // -1.0 clamps into bin 0; 0.9, 2.0 into bin 1
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn min_max_with_nan() {
        assert_eq!(min(&[1.0, f64::NAN]), None);
        assert_eq!(max(&[1.0, f64::NAN]), None);
        assert_eq!(min(&[3.0, -2.0, 5.0]), Some(-2.0));
        assert_eq!(max(&[3.0, -2.0, 5.0]), Some(5.0));
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.median - 2.0).abs() < 1e-12);
        assert!(!format!("{s}").is_empty());
    }
}
