//! Random-variate samplers built on top of [`rand`].
//!
//! The allowed dependency set does not include `rand_distr`, so the Normal,
//! Gamma and Dirichlet samplers used throughout the reproduction are
//! implemented here. The symmetric Dirichlet `Dir(α)` is the paper's model of
//! label-distribution skew (§II-A): smaller `α` ⇒ more diverse (non-IID)
//! client data.

use rand::Rng;

/// Normal distribution `N(mean, std²)` sampled via the Marsaglia polar method.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use collapois_stats::Normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let n = Normal::new(2.0, 0.5).unwrap();
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] if `std` is negative
    /// or not finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, DistributionError> {
        if std.is_nan() || std < 0.0 || !std.is_finite() || !mean.is_finite() {
            return Err(DistributionError::InvalidParameter {
                what: "normal std must be finite and >= 0",
            });
        }
        Ok(Self { mean, std })
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// One standard-normal variate (Marsaglia polar method).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`), sampled with
/// the Marsaglia–Tsang method (shape ≥ 1) plus the standard boost for
/// shape < 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] unless both parameters
    /// are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistributionError> {
        if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
            return Err(DistributionError::InvalidParameter {
                what: "gamma shape and scale must be finite and > 0",
            });
        }
        Ok(Self { shape, scale })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: X ~ Gamma(k+1), U^(1/k) * X ~ Gamma(k).
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(0.0..1.0);
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return self.scale * d * v;
            }
        }
    }
}

/// Dirichlet distribution over the probability simplex, used to draw each
/// client's label mix (label-distribution skew, §II-A of the paper).
///
/// Sampled as normalized independent Gamma(αᵢ, 1) variates.
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution from a full concentration vector.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] if fewer than two
    /// components are given or any component is not finite and positive.
    pub fn new(alpha: Vec<f64>) -> Result<Self, DistributionError> {
        if alpha.len() < 2 {
            return Err(DistributionError::InvalidParameter {
                what: "dirichlet needs at least 2 components",
            });
        }
        if alpha.iter().any(|&a| !(a.is_finite() && a > 0.0)) {
            return Err(DistributionError::InvalidParameter {
                what: "dirichlet concentrations must be finite and > 0",
            });
        }
        Ok(Self { alpha })
    }

    /// Symmetric Dirichlet `Dir(α)` over `k` components — the paper's non-IID
    /// knob: `α < 1` concentrates mass on few labels, `α > 1` spreads it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dirichlet::new`].
    pub fn symmetric(alpha: f64, k: usize) -> Result<Self, DistributionError> {
        Self::new(vec![alpha; k])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// Whether the distribution has zero components (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }

    /// Draws one probability vector (sums to 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alpha
            .iter()
            .map(|&a| {
                Gamma::new(a, 1.0)
                    .expect("validated at construction")
                    .sample(rng)
                    .max(f64::MIN_POSITIVE)
            })
            .collect();
        let sum: f64 = draws.iter().sum();
        for d in &mut draws {
            *d /= sum;
        }
        draws
    }
}

/// Natural log of `n!`, exact summation for small `n` and a Stirling series
/// for the rest (relative error far below f64 epsilon at the switch point).
fn ln_factorial(n: u64) -> f64 {
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        // ln Γ(x) for x = n + 1, Stirling with three correction terms.
        let x = n as f64 + 1.0;
        (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3))
            + 1.0 / (1260.0 * x.powi(5))
    }
}

/// Binomial distribution `B(n, p)`: the number of successes in `n`
/// independent trials of probability `p`.
///
/// Sampled by inverse-CDF chop-down starting at the mode and walking
/// outward with the pmf recurrence — one uniform draw per sample and
/// `O(√(np(1−p)))` expected steps, so counting a paper-scale cohort's
/// sampled clients costs a single draw instead of one Bernoulli per client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials of probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, DistributionError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(DistributionError::InvalidParameter {
                what: "binomial probability must lie in [0, 1]",
            });
        }
        Ok(Self { n, p })
    }

    /// The number of trials `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let nf = n as f64;
        let mode = (((nf + 1.0) * p) as u64).min(n);
        let pm = (ln_factorial(n) - ln_factorial(mode) - ln_factorial(n - mode)
            + mode as f64 * p.ln()
            + (nf - mode as f64) * (1.0 - p).ln())
        .exp();
        let odds = p / (1.0 - p);
        let mut u = rng.gen_range(0.0..1.0) - pm;
        if u < 0.0 {
            return mode;
        }
        // Alternate below/above the mode, consuming each pmf value once;
        // the visit order is immaterial to the sampled distribution.
        let (mut lo, mut hi) = (mode, mode);
        let (mut p_lo, mut p_hi) = (pm, pm);
        loop {
            let mut advanced = false;
            if lo > 0 {
                p_lo *= lo as f64 / ((nf - lo as f64 + 1.0) * odds);
                lo -= 1;
                u -= p_lo;
                if u < 0.0 {
                    return lo;
                }
                advanced = true;
            }
            if hi < n {
                p_hi *= (nf - hi as f64) / (hi as f64 + 1.0) * odds;
                hi += 1;
                u -= p_hi;
                if u < 0.0 {
                    return hi;
                }
                advanced = true;
            }
            if !advanced {
                // Residual rounding mass: the support is exhausted, so the
                // mode is as good a tiebreak as any.
                return mode;
            }
        }
    }
}

/// Error produced when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionError {
    /// A parameter was outside the distribution's domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter { what } => write!(f, "invalid distribution parameter: {what}"),
        }
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(3.0, 2.0).unwrap();
        let xs = n.sample_n(&mut rng, 50_000);
        assert!((mean(&xs) - 3.0).abs() < 0.05);
        assert!((variance(&xs).sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Gamma::new(4.0, 0.5).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| g.sample(&mut rng)).collect();
        // mean = kθ = 2, var = kθ² = 1
        assert!((mean(&xs) - 2.0).abs() < 0.05, "mean {}", mean(&xs));
        assert!((variance(&xs) - 1.0).abs() < 0.1);
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Gamma::new(0.3, 1.0).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| g.sample(&mut rng)).collect();
        assert!((mean(&xs) - 0.3).abs() < 0.02, "mean {}", mean(&xs));
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for alpha in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let d = Dirichlet::symmetric(alpha, 10).unwrap();
            for _ in 0..20 {
                let p = d.sample(&mut rng);
                assert_eq!(p.len(), 10);
                let s: f64 = p.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "alpha={alpha}: sum={s}");
                assert!(p.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn dirichlet_concentration_controls_skew() {
        // With small alpha the max component dominates; with large alpha the
        // vector is near-uniform. This is exactly the non-IID knob.
        let mut rng = StdRng::seed_from_u64(4);
        let sparse = Dirichlet::symmetric(0.05, 10).unwrap();
        let dense = Dirichlet::symmetric(100.0, 10).unwrap();
        let avg_max = |d: &Dirichlet, rng: &mut StdRng| {
            let mut acc = 0.0;
            for _ in 0..200 {
                let p = d.sample(rng);
                acc += p.iter().cloned().fold(0.0, f64::max);
            }
            acc / 200.0
        };
        let sparse_max = avg_max(&sparse, &mut rng);
        let dense_max = avg_max(&dense, &mut rng);
        assert!(
            sparse_max > 0.6 && dense_max < 0.2,
            "sparse_max={sparse_max}, dense_max={dense_max}"
        );
    }

    #[test]
    fn dirichlet_rejects_degenerate() {
        assert!(Dirichlet::symmetric(1.0, 1).is_err());
        assert!(Dirichlet::new(vec![1.0, -0.5]).is_err());
    }

    #[test]
    fn binomial_moments_at_cohort_scale() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = Binomial::new(5000, 0.25).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| b.sample(&mut rng) as f64).collect();
        // mean = np = 1250, var = np(1-p) = 937.5
        assert!((mean(&xs) - 1250.0).abs() < 1.0, "mean {}", mean(&xs));
        assert!(
            (variance(&xs) - 937.5).abs() < 30.0,
            "var {}",
            variance(&xs)
        );
        assert!(xs.iter().all(|&x| (0.0..=5000.0).contains(&x)));
    }

    #[test]
    fn binomial_small_n_matches_exact_pmf() {
        // n=4, p=0.5: P(k) = {1,4,6,4,1}/16. A chi-square-ish sanity bound.
        let mut rng = StdRng::seed_from_u64(7);
        let b = Binomial::new(4, 0.5).unwrap();
        let mut counts = [0u32; 5];
        for _ in 0..16_000 {
            counts[b.sample(&mut rng) as usize] += 1;
        }
        let expected = [1000.0, 4000.0, 6000.0, 4000.0, 1000.0];
        for (k, (&c, &e)) in counts.iter().zip(&expected).enumerate() {
            assert!(
                (c as f64 - e).abs() < 5.0 * e.sqrt(),
                "k={k}: got {c}, expected {e}"
            );
        }
    }

    #[test]
    fn binomial_edges_and_determinism() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(Binomial::new(100, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).unwrap().sample(&mut rng), 100);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        let b = Binomial::new(3000, 0.1).unwrap();
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..32).map(|_| b.sample(&mut r)).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..32).map(|_| b.sample(&mut r)).collect()
        };
        assert_eq!(a, c);
    }

    #[test]
    fn binomial_rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn ln_factorial_is_continuous_across_the_stirling_switch() {
        // ln(256!) = ln(255!) + ln 256 must hold across the branch change.
        let exact = ln_factorial(255) + 256f64.ln();
        assert!((ln_factorial(256) - exact).abs() < 1e-9);
    }

    #[test]
    fn error_display_nonempty() {
        let e = Normal::new(0.0, -1.0).unwrap_err();
        assert!(!format!("{e}").is_empty());
        assert!(!format!("{e:?}").is_empty());
    }
}
