//! Hoeffding concentration bounds.
//!
//! Theorem 1 of the paper approximates `Σψ_c` by `|C|·(a+b)/2` and `Σβᵢ²` by
//! its expectation; the paper notes both approximation errors are controlled
//! by Hoeffding's inequality. This module provides the deviation bound and
//! the induced relative error on the `|C|` lower bound, which Fig. 4 plots.

/// Hoeffding deviation: with probability at least `1 − delta`, the mean of
/// `n` independent samples bounded in `[lo, hi]` deviates from its
/// expectation by at most the returned epsilon.
///
/// `ε = (hi − lo) · sqrt(ln(2/δ) / (2n))`
///
/// # Panics
///
/// Panics if `n == 0`, `hi < lo`, or `delta` is outside `(0, 1)`.
///
/// # Example
///
/// ```
/// let eps = collapois_stats::hoeffding::deviation(1000, 0.0, 1.0, 0.05);
/// assert!(eps < 0.05);
/// ```
pub fn deviation(n: usize, lo: f64, hi: f64, delta: f64) -> f64 {
    assert!(n > 0, "hoeffding deviation needs n > 0");
    assert!(hi >= lo, "hoeffding deviation needs hi >= lo");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (hi - lo) * ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// One-sided tail: probability that the sample mean of `n` values in
/// `[lo, hi]` exceeds its expectation by more than `t`.
///
/// `P ≤ exp(−2 n t² / (hi − lo)²)`
///
/// # Panics
///
/// Panics if `hi <= lo`.
pub fn tail_probability(n: usize, lo: f64, hi: f64, t: f64) -> f64 {
    assert!(hi > lo, "hoeffding tail needs hi > lo");
    if t <= 0.0 {
        return 1.0;
    }
    (-2.0 * n as f64 * t * t / (hi - lo).powi(2)).exp().min(1.0)
}

/// Sample size required so the Hoeffding deviation is at most `eps` with
/// confidence `1 − delta`.
///
/// # Panics
///
/// Panics if `eps <= 0`, `hi <= lo`, or `delta` outside `(0, 1)`.
pub fn required_samples(lo: f64, hi: f64, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    assert!(hi > lo, "required_samples needs hi > lo");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let n = (hi - lo).powi(2) * (2.0 / delta).ln() / (2.0 * eps * eps);
    n.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_shrinks_with_n() {
        let e1 = deviation(100, 0.0, 1.0, 0.05);
        let e2 = deviation(10_000, 0.0, 1.0, 0.05);
        assert!(e2 < e1);
        assert!((e1 / e2 - 10.0).abs() < 1e-9); // sqrt(10000/100) = 10
    }

    #[test]
    fn deviation_scales_with_range() {
        let e1 = deviation(100, 0.0, 1.0, 0.05);
        let e2 = deviation(100, 0.0, 2.0, 0.05);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tail_probability_monotone() {
        let p1 = tail_probability(100, 0.0, 1.0, 0.05);
        let p2 = tail_probability(100, 0.0, 1.0, 0.2);
        assert!(p2 < p1);
        assert_eq!(tail_probability(100, 0.0, 1.0, 0.0), 1.0);
        assert_eq!(tail_probability(100, 0.0, 1.0, -1.0), 1.0);
    }

    #[test]
    fn required_samples_roundtrip() {
        let n = required_samples(0.0, 1.0, 0.01, 0.05);
        let eps = deviation(n, 0.0, 1.0, 0.05);
        assert!(eps <= 0.01 + 1e-9);
        // One fewer sample must not suffice.
        let eps_short = deviation(n - 1, 0.0, 1.0, 0.05);
        assert!(eps_short > 0.01 - 1e-6);
    }
}
