//! Hypothesis tests used by the paper's "Bypassing Defenses" analysis (§V).
//!
//! The paper checks that malicious gradients are statistically
//! indistinguishable from benign ones using:
//!
//! * a two-tailed **t-test** for the mean angle,
//! * **Levene's test** for equality of variances,
//! * the two-sample **Kolmogorov–Smirnov test** for the full distribution,
//! * the **3σ rule** for outlier flagging (they report a ~3.5 % flag rate).
//!
//! All four are implemented here, plus the pooled-variance Student variant of
//! the t-test used for the paper's significance claims on Attack SR.

use crate::descriptive::{mean, median, variance};
use crate::special::{f_sf, kolmogorov_sf, t_sf};

/// Outcome of a two-sample hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test statistic (t, W, or D depending on the test).
    pub statistic: f64,
    /// Two-sided p-value in `[0, 1]`.
    pub p_value: f64,
    /// Degrees of freedom where meaningful (0 for KS).
    pub df: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

impl std::fmt::Display for TestResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stat={:.4} p={:.4e} df={:.1}",
            self.statistic, self.p_value, self.df
        )
    }
}

/// Error returned when a test's preconditions are not met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestError {
    /// A sample had fewer observations than the test requires.
    TooFewObservations {
        /// Minimum observations each sample must contain.
        needed: usize,
    },
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewObservations { needed } => {
                write!(f, "each sample needs at least {needed} observations")
            }
        }
    }
}

impl std::error::Error for TestError {}

/// Welch's two-sample t-test (unequal variances), two-sided.
///
/// # Errors
///
/// Returns [`TestError::TooFewObservations`] if either sample has fewer than
/// two observations.
///
/// # Example
///
/// ```
/// use collapois_stats::t_test_welch;
/// let a = [1.0, 1.1, 0.9, 1.05, 0.95];
/// let b = [1.0, 1.02, 0.98, 1.01, 0.99];
/// let r = t_test_welch(&a, &b)?;
/// assert!(r.p_value > 0.05); // indistinguishable means
/// # Ok::<(), collapois_stats::hypothesis::TestError>(())
/// ```
pub fn t_test_welch(a: &[f64], b: &[f64]) -> Result<TestResult, TestError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(TestError::TooFewObservations { needed: 2 });
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        // Identical constant samples: means equal ⇒ p = 1; unequal ⇒ p = 0.
        let p = if (ma - mb).abs() < f64::EPSILON {
            1.0
        } else {
            0.0
        };
        // The Welch–Satterthwaite ratio is 0/0 here; report its limit as
        // both variances shrink to the same s² → 0, which depends only on
        // the sample sizes. Unlike the pooled Student df `na + nb - 2` (to
        // which it reduces only when na == nb), this stays consistent with
        // the unequal-variance formula used on the normal path.
        let inv = 1.0 / na + 1.0 / nb;
        let df = inv * inv / (1.0 / (na * na * (na - 1.0)) + 1.0 / (nb * nb * (nb - 1.0)));
        return Ok(TestResult {
            statistic: 0.0,
            p_value: p,
            df,
        });
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = (2.0 * t_sf(t.abs(), df)).clamp(0.0, 1.0);
    Ok(TestResult {
        statistic: t,
        p_value: p,
        df,
    })
}

/// Student's pooled-variance two-sample t-test, two-sided.
///
/// # Errors
///
/// Returns [`TestError::TooFewObservations`] if either sample has fewer than
/// two observations.
pub fn t_test_student(a: &[f64], b: &[f64]) -> Result<TestResult, TestError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(TestError::TooFewObservations { needed: 2 });
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let df = na + nb - 2.0;
    let sp2 = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    let se2 = sp2 * (1.0 / na + 1.0 / nb);
    if se2 <= 0.0 {
        let p = if (ma - mb).abs() < f64::EPSILON {
            1.0
        } else {
            0.0
        };
        return Ok(TestResult {
            statistic: 0.0,
            p_value: p,
            df,
        });
    }
    let t = (ma - mb) / se2.sqrt();
    let p = (2.0 * t_sf(t.abs(), df)).clamp(0.0, 1.0);
    Ok(TestResult {
        statistic: t,
        p_value: p,
        df,
    })
}

/// Levene's test for equality of variances (Brown–Forsythe variant: absolute
/// deviations from the *median*, the robust form used in practice).
///
/// # Errors
///
/// Returns [`TestError::TooFewObservations`] if either sample has fewer than
/// two observations.
pub fn levene_test(a: &[f64], b: &[f64]) -> Result<TestResult, TestError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(TestError::TooFewObservations { needed: 2 });
    }
    let za: Vec<f64> = {
        let m = median(a);
        a.iter().map(|x| (x - m).abs()).collect()
    };
    let zb: Vec<f64> = {
        let m = median(b);
        b.iter().map(|x| (x - m).abs()).collect()
    };
    let (na, nb) = (za.len() as f64, zb.len() as f64);
    let n = na + nb;
    let (mza, mzb) = (mean(&za), mean(&zb));
    let grand = (na * mza + nb * mzb) / n;
    let between = na * (mza - grand).powi(2) + nb * (mzb - grand).powi(2);
    let within: f64 = za.iter().map(|z| (z - mza).powi(2)).sum::<f64>()
        + zb.iter().map(|z| (z - mzb).powi(2)).sum::<f64>();
    let k = 2.0; // two groups
    let df1 = k - 1.0;
    let df2 = n - k;
    if within <= 0.0 {
        let p = if between <= 0.0 { 1.0 } else { 0.0 };
        return Ok(TestResult {
            statistic: 0.0,
            p_value: p,
            df: df2,
        });
    }
    let w = (df2 / df1) * (between / within);
    let p = f_sf(w, df1, df2).clamp(0.0, 1.0);
    Ok(TestResult {
        statistic: w,
        p_value: p,
        df: df2,
    })
}

/// Two-sample Kolmogorov–Smirnov test with the asymptotic p-value.
///
/// The statistic is the max distance between the two empirical CDFs.
///
/// # Errors
///
/// Returns [`TestError::TooFewObservations`] if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<TestResult, TestError> {
    if a.is_empty() || b.is_empty() {
        return Err(TestError::TooFewObservations { needed: 1 });
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("KS input must not contain NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("KS input must not contain NaN"));
    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < na && sa[ia] <= x {
            ia += 1;
        }
        while ib < nb && sb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p = kolmogorov_sf(lambda);
    Ok(TestResult {
        statistic: d,
        p_value: p,
        df: 0.0,
    })
}

/// Indices of observations lying outside `mean ± 3·std` of `background` —
/// the 3σ rule [Pukelsheim 1994] the paper uses for outlier screening.
///
/// Returns the indices *into `candidates`* that would be flagged when judged
/// against the background sample's moments.
///
/// A background with fewer than two observations has no defined spread
/// (`variance` reports 0.0, which would flag every candidate not exactly
/// equal to the mean — and an empty background would judge against mean
/// 0.0). The rule **fails open** in that case and flags nothing, as it also
/// does when the background moments are non-finite.
pub fn three_sigma_outliers(background: &[f64], candidates: &[f64]) -> Vec<usize> {
    if background.len() < 2 {
        return Vec::new();
    }
    let m = mean(background);
    let s = variance(background).sqrt();
    if !m.is_finite() || !s.is_finite() {
        return Vec::new();
    }
    candidates
        .iter()
        .enumerate()
        .filter(|(_, &x)| (x - m).abs() > 3.0 * s)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws(mean: f64, std: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Normal::new(mean, std).unwrap().sample_n(&mut rng, n)
    }

    #[test]
    fn welch_detects_mean_shift() {
        let a = draws(0.0, 1.0, 500, 1);
        let b = draws(0.5, 1.0, 500, 2);
        let r = t_test_welch(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        assert!(r.rejects_at(0.05));
    }

    #[test]
    fn welch_accepts_same_mean() {
        let a = draws(1.0, 1.0, 500, 3);
        let b = draws(1.0, 1.0, 500, 4);
        let r = t_test_welch(&a, &b).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn student_matches_welch_on_equal_sizes() {
        let a = draws(0.0, 1.0, 200, 5);
        let b = draws(0.1, 1.0, 200, 6);
        let rw = t_test_welch(&a, &b).unwrap();
        let rs = t_test_student(&a, &b).unwrap();
        assert!((rw.statistic - rs.statistic).abs() < 0.05);
    }

    #[test]
    fn t_test_identical_constant_samples() {
        let a = [2.0, 2.0, 2.0];
        let r = t_test_welch(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        let b = [3.0, 3.0, 3.0];
        let r = t_test_welch(&a, &b).unwrap();
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn t_test_errors_on_tiny_samples() {
        assert!(t_test_welch(&[1.0], &[1.0, 2.0]).is_err());
        assert!(t_test_student(&[], &[]).is_err());
    }

    #[test]
    fn welch_constant_sample_df_follows_satterthwaite_limit() {
        // Regression: the zero-variance early return used to report the
        // pooled Student df `na + nb - 2`, inconsistent with the
        // Welch–Satterthwaite formula the normal path uses. For equal
        // variances the W–S limit is
        //   (1/na + 1/nb)² / (1/(na²(na-1)) + 1/(nb²(nb-1)))
        // which equals na + nb - 2 only when na == nb.
        let a = [2.0; 3];
        let b = [3.0; 5];
        let r = t_test_welch(&a, &b).unwrap();
        let expected = {
            let (na, nb) = (3.0f64, 5.0f64);
            let inv = 1.0 / na + 1.0 / nb;
            inv * inv / (1.0 / (na * na * (na - 1.0)) + 1.0 / (nb * nb * (nb - 1.0)))
        };
        assert!((r.df - expected).abs() < 1e-12, "df={}", r.df);
        assert!((r.df - 4.338_983_050_847_458).abs() < 1e-9, "df={}", r.df);
        // In particular NOT the Student value 3 + 5 - 2 = 6.
        assert!((r.df - 6.0).abs() > 1.0);

        // Equal sizes: the limit coincides with the pooled value.
        let r = t_test_welch(&[2.0; 4], &[9.0; 4]).unwrap();
        assert!((r.df - 6.0).abs() < 1e-12, "df={}", r.df);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn welch_constant_df_is_continuous_with_vanishing_variance() {
        // The degenerate branch must agree with the normal path's df as the
        // common variance shrinks toward zero.
        // Both samples get the *same* sample variance eps² (the limit is
        // taken along va == vb → 0).
        let eps = 1e-6;
        let a = [2.0 - eps, 2.0, 2.0 + eps];
        let b = [3.0 - eps, 3.0 - eps, 3.0, 3.0 + eps, 3.0 + eps];
        let near = t_test_welch(&a, &b).unwrap();
        let degenerate = t_test_welch(&[2.0; 3], &[3.0; 5]).unwrap();
        assert!(
            (near.df - degenerate.df).abs() < 0.5,
            "near {} vs limit {}",
            near.df,
            degenerate.df
        );
    }

    #[test]
    fn levene_detects_variance_difference() {
        let a = draws(0.0, 1.0, 400, 7);
        let b = draws(0.0, 3.0, 400, 8);
        let r = levene_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn levene_accepts_same_variance() {
        let a = draws(0.0, 1.0, 400, 9);
        let b = draws(5.0, 1.0, 400, 10); // mean shift must not matter
        let r = levene_test(&a, &b).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn ks_detects_distribution_shift() {
        let a = draws(0.0, 1.0, 300, 11);
        let b = draws(1.0, 1.0, 300, 12);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        assert!(r.statistic > 0.3);
    }

    #[test]
    fn ks_identical_samples() {
        let a = draws(0.0, 1.0, 300, 13);
        let r = ks_two_sample(&a, &a).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn ks_same_distribution_high_p() {
        let a = draws(0.0, 1.0, 400, 14);
        let b = draws(0.0, 1.0, 400, 15);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn three_sigma_fails_open_on_tiny_background() {
        // Regression: a single-observation background has variance 0.0, so
        // every candidate off the mean used to be flagged (even by 1e-7);
        // an empty background judged candidates against mean 0.0. Both now
        // flag nothing.
        assert!(three_sigma_outliers(&[], &[0.0, 100.0, -5.0]).is_empty());
        assert!(three_sigma_outliers(&[5.0], &[5.0000001, 100.0]).is_empty());
        // Two observations is the minimum for a defined spread.
        let out = three_sigma_outliers(&[0.0, 1.0], &[0.5, 100.0]);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn three_sigma_fails_open_on_nonfinite_background() {
        assert!(three_sigma_outliers(&[0.0, f64::NAN, 1.0], &[100.0]).is_empty());
        assert!(three_sigma_outliers(&[0.0, f64::INFINITY], &[100.0]).is_empty());
    }

    #[test]
    fn three_sigma_flags_extremes() {
        let bg = draws(0.0, 1.0, 1000, 16);
        let cands = vec![0.0, 10.0, -10.0, 0.5];
        let out = three_sigma_outliers(&bg, &cands);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn three_sigma_rate_for_normal_data() {
        // For normal data the 3σ rule flags ≈ 0.27 % — far below the paper's
        // 3.5 % threshold for suspicion.
        let bg = draws(0.0, 1.0, 20_000, 17);
        let cands = draws(0.0, 1.0, 20_000, 18);
        let rate = three_sigma_outliers(&bg, &cands).len() as f64 / cands.len() as f64;
        assert!(rate < 0.01, "rate={rate}");
    }
}
