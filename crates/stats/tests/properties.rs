//! Property-based tests for the statistical substrate.

use collapois_stats::descriptive::{histogram, max, mean, median, min, quantile};
use collapois_stats::distribution::{Dirichlet, Gamma, Normal};
use collapois_stats::geometry::{angle_between, cosine_similarity, l2_norm, rescale_to_norm};
use collapois_stats::hypothesis::{ks_two_sample, levene_test, t_test_welch};
use collapois_stats::special::{betai, kolmogorov_sf, normal_cdf, t_sf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p-values of every test live in [0, 1] for arbitrary inputs.
    #[test]
    fn p_values_in_unit_interval(
        seed in 0u64..10_000,
        n in 3usize..40,
        shift in -2.0f64..2.0,
        scale in 0.1f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, n);
        let b = Normal::new(shift, scale).unwrap().sample_n(&mut rng, n);
        for r in [
            t_test_welch(&a, &b).unwrap(),
            levene_test(&a, &b).unwrap(),
            ks_two_sample(&a, &b).unwrap(),
        ] {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "{r:?}");
        }
    }

    /// CDF-like special functions are monotone and bounded.
    #[test]
    fn special_functions_bounded(x in -6.0f64..6.0, df in 1.0f64..200.0) {
        let phi = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&phi));
        let t = t_sf(x, df);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&kolmogorov_sf(x.abs())));
    }

    /// The incomplete beta is a CDF in x: monotone, 0 at 0, 1 at 1.
    #[test]
    fn betai_is_monotone_cdf(a in 0.2f64..10.0, b in 0.2f64..10.0, x in 0.01f64..0.98) {
        let lo = betai(a, b, x);
        let hi = betai(a, b, (x + 0.02).min(1.0));
        prop_assert!(lo <= hi + 1e-9, "betai not monotone: {lo} > {hi}");
        prop_assert!((0.0..=1.0).contains(&lo));
    }

    /// Dirichlet samples live on the simplex for any (alpha, k).
    #[test]
    fn dirichlet_on_simplex(alpha in 0.01f64..100.0, k in 2usize..30, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Dirichlet::symmetric(alpha, k).unwrap().sample(&mut rng);
        prop_assert_eq!(p.len(), k);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    /// Gamma samples are non-negative for any valid parameters.
    #[test]
    fn gamma_non_negative(shape in 0.05f64..20.0, scale in 0.05f64..5.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Gamma::new(shape, scale).unwrap();
        for _ in 0..10 {
            prop_assert!(g.sample(&mut rng) >= 0.0);
        }
    }

    /// Descriptive stats respect ordering: min <= q25 <= median <= q75 <= max,
    /// and the histogram conserves the sample count.
    #[test]
    fn descriptive_orderings(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let lo = min(&xs).unwrap();
        let hi = max(&xs).unwrap();
        let q25 = quantile(&xs, 0.25);
        let q75 = quantile(&xs, 0.75);
        let med = median(&xs);
        prop_assert!(lo <= q25 + 1e-9 && q25 <= med + 1e-9);
        prop_assert!(med <= q75 + 1e-9 && q75 <= hi + 1e-9);
        prop_assert!(lo <= mean(&xs) + 1e-9 && mean(&xs) <= hi + 1e-9);
        let h = histogram(&xs, -100.0, 100.0 + 1e-9, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    /// Geometry: cosine in [-1,1], angle in [0, pi], rescale hits the target
    /// norm, for arbitrary non-zero vectors.
    #[test]
    fn geometry_invariants(
        a in prop::collection::vec(-10.0f32..10.0, 2..20),
        target in 0.1f64..50.0,
    ) {
        let b: Vec<f32> = a.iter().rev().cloned().collect();
        if l2_norm(&a) > 1e-3 {
            if let Some(cs) = cosine_similarity(&a, &b) {
                prop_assert!((-1.0..=1.0).contains(&cs));
            }
            if let Some(theta) = angle_between(&a, &b) {
                prop_assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&theta));
            }
            let mut v = a.clone();
            rescale_to_norm(&mut v, target);
            prop_assert!((l2_norm(&v) - target).abs() < 1e-3 * target.max(1.0));
        }
    }
}
