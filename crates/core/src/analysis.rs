//! Gradient-scatter analysis (Figs. 3 and 6).
//!
//! The observable driving the whole paper: under non-IID data (small Dirichlet
//! α) benign clients' deltas scatter — large pairwise angles — while
//! CollaPois' coordinated deltas stay mutually aligned. These helpers extract
//! those statistics from collected [`RoundRecord`]s.

use collapois_fl::server::RoundRecord;
use collapois_fl::update::ClientUpdate;
use collapois_stats::geometry::mean_pairwise_angle;

/// Per-round angle statistics among benign and malicious updates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundAngles {
    /// Round index.
    pub round: usize,
    /// Mean pairwise angle among benign updates (radians), if ≥ 2 benign.
    pub benign: Option<f64>,
    /// Mean pairwise angle among malicious updates (radians), if ≥ 2.
    pub malicious: Option<f64>,
}

/// Splits a round's updates into benign/malicious by the compromised id set.
pub fn split_updates<'a>(
    updates: &'a [ClientUpdate],
    compromised: &[usize],
) -> (Vec<&'a [f32]>, Vec<&'a [f32]>) {
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for u in updates {
        if compromised.contains(&u.client_id) {
            malicious.push(u.delta.as_slice());
        } else {
            benign.push(u.delta.as_slice());
        }
    }
    (benign, malicious)
}

/// Computes [`RoundAngles`] for every record that kept its updates.
pub fn round_angles(records: &[RoundRecord], compromised: &[usize]) -> Vec<RoundAngles> {
    records
        .iter()
        .filter_map(|r| {
            let updates = r.updates.as_ref()?;
            let (benign, malicious) = split_updates(updates, compromised);
            Some(RoundAngles {
                round: r.round,
                benign: mean_pairwise_angle(&benign),
                malicious: mean_pairwise_angle(&malicious),
            })
        })
        .collect()
}

/// Pools all benign (resp. malicious) update vectors across rounds and
/// returns the mean pairwise angle of each pool, degrees.
pub fn pooled_mean_angles_deg(
    records: &[RoundRecord],
    compromised: &[usize],
) -> (Option<f64>, Option<f64>) {
    let mut benign: Vec<&[f32]> = Vec::new();
    let mut malicious: Vec<&[f32]> = Vec::new();
    for r in records {
        if let Some(updates) = &r.updates {
            let (b, m) = split_updates(updates, compromised);
            benign.extend(b);
            malicious.extend(m);
        }
    }
    // Cap the pool to keep O(n²) pairwise work bounded.
    benign.truncate(200);
    malicious.truncate(200);
    (
        mean_pairwise_angle(&benign).map(f64::to_degrees),
        mean_pairwise_angle(&malicious).map(f64::to_degrees),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, updates: Vec<ClientUpdate>) -> RoundRecord {
        RoundRecord {
            round,
            updates: Some(updates),
            ..Default::default()
        }
    }

    #[test]
    fn split_separates_by_id() {
        let updates = vec![
            ClientUpdate::new(0, vec![1.0, 0.0], 1),
            ClientUpdate::new(1, vec![0.0, 1.0], 1),
            ClientUpdate::new(2, vec![1.0, 1.0], 1),
        ];
        let (b, m) = split_updates(&updates, &[1]);
        assert_eq!(b.len(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0], &[0.0, 1.0]);
    }

    #[test]
    fn round_angles_computes_both_groups() {
        let updates = vec![
            ClientUpdate::new(0, vec![1.0, 0.0], 1),
            ClientUpdate::new(1, vec![0.0, 1.0], 1),
            ClientUpdate::new(2, vec![1.0, 0.0], 1),
            ClientUpdate::new(3, vec![1.0, 0.0], 1),
        ];
        let angles = round_angles(&[record(0, updates)], &[2, 3]);
        assert_eq!(angles.len(), 1);
        // Benign: 0 and 1 at right angles.
        assert!((angles[0].benign.unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        // Malicious: identical → angle 0.
        assert!(angles[0].malicious.unwrap().abs() < 1e-3);
    }

    #[test]
    fn rounds_without_updates_are_skipped() {
        let empty = RoundRecord::default();
        assert!(round_angles(&[empty], &[]).is_empty());
    }

    #[test]
    fn pooled_angles_aggregate_across_rounds() {
        let r1 = record(
            0,
            vec![
                ClientUpdate::new(0, vec![1.0, 0.0], 1),
                ClientUpdate::new(9, vec![1.0, 0.0], 1),
            ],
        );
        let r2 = record(
            1,
            vec![
                ClientUpdate::new(1, vec![0.0, 1.0], 1),
                ClientUpdate::new(9, vec![1.0, 0.0], 1),
            ],
        );
        let (benign, malicious) = pooled_mean_angles_deg(&[r1, r2], &[9]);
        assert!((benign.unwrap() - 90.0).abs() < 1e-6);
        assert!(malicious.unwrap().abs() < 1e-3);
    }
}
