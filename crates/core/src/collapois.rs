//! The CollaPois attack (Algorithm 1).
//!
//! Every compromised client sampled in round `t` submits the malicious delta
//!
//! `Δθ_c^t = ψ_c^t · (X − θ^t)`,  `ψ_c^t ~ U[a, b]`  (Eq. 4)
//!
//! pulling the global model toward the shared Trojaned model X. Because the
//! malicious deltas are perfectly aligned with each other while benign
//! deltas scatter under non-IID data (Fig. 3), a handful of compromised
//! clients dominates aggregation (Theorem 1) and the global model converges
//! into a low-loss region around X (Theorem 2).
//!
//! Two stealth controls from §IV-D:
//! * a shared l2 **clipping bound `A`** keeps malicious magnitudes inside the
//!   benign range;
//! * a **minimum-norm τ upscale** keeps the server's X-estimation error
//!   bounded away from zero (Theorem 3 discussion, Fig. 7).

use collapois_fl::server::Adversary;
use collapois_stats::geometry::{clip_to_norm, l2_norm, rescale_to_norm};
use rand::rngs::StdRng;
use rand::Rng;

/// CollaPois hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollaPoisConfig {
    /// Lower end `a` of the dynamic-rate range (0 < a).
    pub psi_low: f64,
    /// Upper end `b` of the dynamic-rate range (a < b ≤ 1).
    pub psi_high: f64,
    /// Shared l2 clipping bound `A` for malicious deltas (None = no clip).
    pub clip_bound: Option<f64>,
    /// Minimum l2 norm τ: deltas below it are upscaled (None = no upscale).
    pub min_norm: Option<f64>,
}

impl CollaPoisConfig {
    /// The paper's configuration: `ψ ~ U[0.9, 1]`, no clipping, no upscale.
    pub fn paper() -> Self {
        Self {
            psi_low: 0.9,
            psi_high: 1.0,
            clip_bound: None,
            min_norm: None,
        }
    }

    /// Validates the ψ range and bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.psi_low.is_finite() && self.psi_low > 0.0) {
            return Err("psi_low must satisfy 0 < a".into());
        }
        if !(self.psi_low < self.psi_high && self.psi_high <= 1.0) {
            return Err("psi range must satisfy a < b <= 1".into());
        }
        if let Some(a) = self.clip_bound {
            if !(a.is_finite() && a > 0.0) {
                return Err("clip bound must be positive".into());
            }
        }
        if let Some(t) = self.min_norm {
            if !(t.is_finite() && t > 0.0) {
                return Err("min norm must be positive".into());
            }
        }
        Ok(())
    }
}

impl Default for CollaPoisConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The CollaPois adversary: a coordinated set of compromised clients sharing
/// one Trojaned model X.
#[derive(Debug, Clone)]
pub struct CollaPois {
    compromised: Vec<usize>,
    trojan: Vec<f32>,
    cfg: CollaPoisConfig,
    /// ψ values actually drawn, kept for stealth analysis.
    psi_history: Vec<f64>,
}

impl CollaPois {
    /// Creates the adversary.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `compromised` is empty.
    pub fn new(compromised: Vec<usize>, trojan: Vec<f32>, cfg: CollaPoisConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid CollaPoisConfig: {e}"));
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        Self {
            compromised,
            trojan,
            cfg,
            psi_history: Vec::new(),
        }
    }

    /// The Trojaned model X.
    pub fn trojan(&self) -> &[f32] {
        &self.trojan
    }

    /// The configuration.
    pub fn config(&self) -> &CollaPoisConfig {
        &self.cfg
    }

    /// ψ values drawn so far (for the stealth analysis of Fig. 6).
    pub fn psi_history(&self) -> &[f64] {
        &self.psi_history
    }

    /// Crafts the malicious delta for the current global model — exposed so
    /// the theory/stealth analyses can generate updates without a server.
    pub fn craft(&mut self, global: &[f32], rng: &mut StdRng) -> Vec<f32> {
        assert_eq!(
            global.len(),
            self.trojan.len(),
            "global/trojan dimension mismatch"
        );
        let psi = rng.gen_range(self.cfg.psi_low..self.cfg.psi_high) as f32;
        self.psi_history.push(psi as f64);
        let mut delta: Vec<f32> = self
            .trojan
            .iter()
            .zip(global)
            .map(|(x, g)| psi * (x - g))
            .collect();
        if let Some(bound) = self.cfg.clip_bound {
            clip_to_norm(&mut delta, bound);
        }
        if let Some(tau) = self.cfg.min_norm {
            if l2_norm(&delta) < tau {
                rescale_to_norm(&mut delta, tau);
            }
        }
        delta
    }
}

impl Adversary for CollaPois {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        _client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        self.craft(global, rng)
    }

    fn name(&self) -> &'static str {
        "collapois"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_stats::geometry::cosine_similarity;
    use rand::SeedableRng;

    fn adversary() -> CollaPois {
        CollaPois::new(vec![0, 1], vec![1.0; 8], CollaPoisConfig::paper())
    }

    #[test]
    fn delta_points_toward_trojan() {
        let mut adv = adversary();
        let mut rng = StdRng::seed_from_u64(0);
        let global = vec![0.0f32; 8];
        let delta = adv.craft(&global, &mut rng);
        let toward: Vec<f32> = vec![1.0; 8];
        let cs = cosine_similarity(&delta, &toward).unwrap();
        assert!((cs - 1.0).abs() < 1e-6, "delta must align with X − θ");
        // ψ ∈ [0.9, 1): per-coordinate value in [0.9, 1).
        assert!(delta.iter().all(|&d| (0.9..1.0).contains(&d)));
    }

    #[test]
    fn psi_is_recorded_and_within_range() {
        let mut adv = adversary();
        let mut rng = StdRng::seed_from_u64(1);
        let global = vec![0.0f32; 8];
        for _ in 0..50 {
            let _ = adv.craft(&global, &mut rng);
        }
        assert_eq!(adv.psi_history().len(), 50);
        assert!(adv.psi_history().iter().all(|&p| (0.9..1.0).contains(&p)));
    }

    #[test]
    fn clipping_bounds_the_norm() {
        let cfg = CollaPoisConfig {
            clip_bound: Some(0.5),
            ..CollaPoisConfig::paper()
        };
        let mut adv = CollaPois::new(vec![0], vec![10.0; 16], cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let delta = adv.craft(&[0.0; 16], &mut rng);
        assert!(l2_norm(&delta) <= 0.5 + 1e-6);
    }

    #[test]
    fn tau_upscales_tiny_deltas() {
        let cfg = CollaPoisConfig {
            min_norm: Some(2.0),
            ..CollaPoisConfig::paper()
        };
        let mut adv = CollaPois::new(vec![0], vec![1e-4; 16], cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let delta = adv.craft(&[0.0; 16], &mut rng);
        assert!((l2_norm(&delta) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn converges_to_trojan_under_repeated_application() {
        // θ ← θ + mean(ψ(X−θ)) with only malicious clients: geometric decay
        // toward X (the mechanism behind Theorem 2).
        let mut adv = adversary();
        let mut rng = StdRng::seed_from_u64(4);
        let mut theta = vec![0.0f32; 8];
        for _ in 0..50 {
            let delta = adv.craft(&theta, &mut rng);
            for (t, d) in theta.iter_mut().zip(&delta) {
                *t += d;
            }
        }
        let dist = collapois_stats::geometry::l2_distance(&theta, adv.trojan());
        assert!(dist < 1e-3, "theta must converge to X: dist={dist}");
    }

    #[test]
    #[should_panic(expected = "invalid CollaPoisConfig")]
    fn rejects_bad_psi_range() {
        let cfg = CollaPoisConfig {
            psi_low: 0.9,
            psi_high: 0.8,
            ..CollaPoisConfig::paper()
        };
        let _ = CollaPois::new(vec![0], vec![0.0; 4], cfg);
    }

    #[test]
    fn validate_catches_all_constraints() {
        assert!(CollaPoisConfig::paper().validate().is_ok());
        let bad_clip = CollaPoisConfig {
            clip_bound: Some(0.0),
            ..CollaPoisConfig::paper()
        };
        assert!(bad_clip.validate().is_err());
        let bad_tau = CollaPoisConfig {
            min_norm: Some(-1.0),
            ..CollaPoisConfig::paper()
        };
        assert!(bad_tau.validate().is_err());
        let bad_low = CollaPoisConfig {
            psi_low: 0.0,
            ..CollaPoisConfig::paper()
        };
        assert!(bad_low.validate().is_err());
    }
}
