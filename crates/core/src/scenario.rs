//! The experiment driver: dataset × non-IID level × attack × defense ×
//! FL algorithm.
//!
//! A [`Scenario`] reproduces one cell of the paper's evaluation grid
//! (Figs. 1, 8–13, 15–25): it generates the synthetic dataset, partitions it
//! with Dirichlet(α), compromises a fraction of clients, trains the Trojaned
//! model X where the attack needs one, runs `T` federated rounds under the
//! chosen defense/personalization, and reports population-, cluster- and
//! client-level metrics.

use crate::baselines::{DPois, DbaAttack, LabelFlip, LocalTrainConfig, MRepl, SemanticAttack};
use crate::collapois::{CollaPois, CollaPoisConfig};
use crate::trojan::{train_trojan, TrojanConfig, TrojanedModel};
use collapois_data::federated::FederatedDataset;
use collapois_data::poison::{BackdoorEval, TriggerBackdoor};
use collapois_data::sample::Dataset;
use collapois_data::semantic::SemanticRegion;
use collapois_data::shard::{ShardSource, ShardSpec, ShardStats};
use collapois_data::synthetic::{
    SyntheticImage, SyntheticImageConfig, SyntheticText, SyntheticTextConfig,
};
use collapois_data::trigger::{DbaTrigger, TextTrigger, Trigger, WaNetTrigger};
use collapois_fl::aggregate::{
    Aggregator, CoordinateMedian, Crfl, DpAggregator, FedAvg, Flare, Krum, NormBound,
    RobustLearningRate, SignSgd, StatFilter, TrimmedMean, UserLevelDp,
};
use collapois_fl::config::FlConfig;
use collapois_fl::metrics::{
    cluster_analysis, population, top_k_percent, ClientMetrics, ClusterReport, PopulationMetrics,
};
use collapois_fl::monitor::ShiftDetector;
use collapois_fl::personalize::{
    Clustered, Ditto, FedDc, MetaFed, NoPersonalization, Personalization, Scaffold,
};
use collapois_fl::profile::PhaseProfile;
pub use collapois_fl::quant::Quantization;
use collapois_fl::server::round_records_from_events;
use collapois_fl::server::{Adversary, FlServer, RoundRecord};
use collapois_nn::zoo::ModelSpec;
use collapois_runtime::fault::FaultPlan;
use collapois_runtime::sim::{ArrivalProcess, ChurnPlan, SimPlan};
use collapois_runtime::trace::hash_canonical_events;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::PathBuf;

/// Which synthetic corpus to use (stand-ins for FEMNIST / Sentiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// FEMNIST-sim: grayscale images, WaNet warping trigger.
    Image,
    /// Sentiment-sim: embedding vectors, fixed-term trigger.
    Text,
}

/// Which attack to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Clean training (control).
    None,
    /// The paper's contribution (Algorithm 1).
    CollaPois,
    /// Classical data poisoning.
    DPois,
    /// Model replacement with boosting.
    MRepl,
    /// Distributed backdoor attack.
    Dba,
    /// Untargeted label flipping (classic Byzantine baseline; no trigger,
    /// so Attack SR stays at chance — the signal is Benign AC damage).
    LabelFlip,
    /// Semantic backdoor: a natural feature-space region of the source
    /// class is relabelled to the target class — no trigger stamping, so
    /// inference-phase trigger detectors have nothing to find. Attack SR is
    /// measured on clean in-region test samples.
    Semantic,
}

impl AttackKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "clean",
            Self::CollaPois => "collapois",
            Self::DPois => "dpois",
            Self::MRepl => "mrepl",
            Self::Dba => "dba",
            Self::LabelFlip => "label-flip",
            Self::Semantic => "semantic",
        }
    }
}

/// Which server-side defense (robust aggregation) to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKind {
    /// Plain FedAvg (no defense).
    None,
    /// DP-optimizer (clip + noise).
    Dp,
    /// Norm bounding.
    NormBound,
    /// Krum.
    Krum,
    /// Robust learning rate.
    Rlr,
    /// Coordinate-wise median.
    Median,
    /// α-trimmed mean.
    TrimmedMean,
    /// SignSGD majority vote.
    SignSgd,
    /// FLARE trust scores.
    Flare,
    /// CRFL model clipping + noising.
    Crfl,
    /// MESAS-style 3-sigma statistical screening of updates.
    StatFilter,
    /// User-level DP with zCDP accounting.
    UserDp,
    /// In-training Fine-Pruning: every `fp_every` rounds the server prunes
    /// the `fp_fraction` least-activated hidden units of the global model
    /// against its held-out clean split (aggregation itself is plain
    /// FedAvg). Single-hidden-layer MLP models only.
    FinePrune,
}

impl DefenseKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Dp => "dp",
            Self::NormBound => "norm-bound",
            Self::Krum => "krum",
            Self::Rlr => "rlr",
            Self::Median => "median",
            Self::TrimmedMean => "trimmed-mean",
            Self::SignSgd => "signsgd",
            Self::Flare => "flare",
            Self::Crfl => "crfl",
            Self::StatFilter => "stat-filter",
            Self::UserDp => "user-dp",
            Self::FinePrune => "fine-prune",
        }
    }

    /// All defenses evaluated by the paper's Table I battery.
    pub fn all() -> &'static [DefenseKind] {
        &[
            Self::None,
            Self::Dp,
            Self::NormBound,
            Self::Krum,
            Self::Rlr,
            Self::Median,
            Self::TrimmedMean,
            Self::SignSgd,
            Self::Flare,
            Self::Crfl,
            Self::StatFilter,
            Self::UserDp,
            Self::FinePrune,
        ]
    }
}

/// Which (personalized) FL algorithm the clients run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlAlgo {
    /// FedAvg (no personalization).
    FedAvg,
    /// FedDC drift decoupling & correction.
    FedDc,
    /// MetaFed cyclic knowledge distillation.
    MetaFed,
    /// Ditto personalization.
    Ditto,
    /// IFCA-style clustered FL.
    Clustered,
    /// SCAFFOLD variance-reduced aggregation (control variates).
    Scaffold,
}

impl FlAlgo {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FedAvg => "fedavg",
            Self::FedDc => "feddc",
            Self::MetaFed => "metafed",
            Self::Ditto => "ditto",
            Self::Clustered => "clustered",
            Self::Scaffold => "scaffold",
        }
    }
}

/// Which model family the image scenario trains (the paper uses a
/// LeNet-style CNN; the MLP is the fast default at simulation scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioModel {
    /// Single-hidden-layer MLP (fast default).
    #[default]
    Mlp,
    /// Small LeNet-style CNN (2 conv + 2 FC, the paper's architecture
    /// family).
    Cnn,
}

impl ScenarioModel {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mlp => "mlp",
            Self::Cnn => "cnn",
        }
    }
}

/// How client data is materialized for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CohortMode {
    /// Lazy at and above [`LAZY_COHORT_THRESHOLD`] clients, eager below.
    #[default]
    Auto,
    /// Always pool, partition and split every client up front.
    Eager,
    /// Always generate per-client shards on first touch and keep them
    /// resident under the shard byte budget (the paper-scale cohort
    /// engine).
    Lazy,
}

impl CohortMode {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Eager => "eager",
            Self::Lazy => "lazy",
        }
    }
}

/// Client count at which [`CohortMode::Auto`] switches to lazy shards.
/// Below this the eager pooled-then-partitioned path (whose draw sequence
/// the quick-scale golden hashes pin) always runs.
pub const LAZY_COHORT_THRESHOLD: usize = 1024;

/// Default resident-shard byte budget when `shard_budget_mb` is 0.
pub const DEFAULT_SHARD_BUDGET_MB: usize = 256;

/// Defense hyper-parameters (sensible defaults for the synthetic scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseParams {
    /// DP clip bound.
    pub dp_clip: f64,
    /// DP noise multiplier.
    pub dp_noise: f64,
    /// NormBound clip bound.
    pub nb_bound: f64,
    /// NormBound added noise std.
    pub nb_noise: f64,
    /// Trimmed-mean β.
    pub trim_beta: f64,
    /// RLR threshold as a fraction of the expected cohort.
    pub rlr_frac: f64,
    /// SignSGD per-coordinate step.
    pub sign_step: f64,
    /// FLARE sharpness.
    pub flare_sharpness: f64,
    /// CRFL global-parameter norm bound.
    pub crfl_bound: f64,
    /// CRFL noise std.
    pub crfl_noise: f64,
    /// Fine-Pruning: fraction of hidden units pruned per pass.
    pub fp_fraction: f64,
    /// Fine-Pruning: pruning cadence in completed rounds.
    pub fp_every: usize,
}

impl Default for DefenseParams {
    fn default() -> Self {
        Self {
            dp_clip: 3.0,
            dp_noise: 0.1,
            nb_bound: 2.0,
            nb_noise: 0.01,
            trim_beta: 0.2,
            rlr_frac: 0.4,
            sign_step: 0.01,
            flare_sharpness: 4.0,
            crfl_bound: 30.0,
            crfl_noise: 0.002,
            fp_fraction: 0.25,
            fp_every: 2,
        }
    }
}

/// Full configuration of one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Number of clients `|N|`.
    pub num_clients: usize,
    /// Average samples per client.
    pub samples_per_client: usize,
    /// Dirichlet concentration α (smaller = more non-IID).
    pub alpha: f64,
    /// Fraction of clients the attacker compromises (0 disables attacks).
    pub compromised_frac: f64,
    /// The attack.
    pub attack: AttackKind,
    /// The defense (aggregation rule).
    pub defense: DefenseKind,
    /// The FL algorithm (personalization).
    pub algo: FlAlgo,
    /// Model family for the image dataset (text always uses the MLP head).
    pub model_kind: ScenarioModel,
    /// Federated rounds `T`.
    pub rounds: usize,
    /// Local steps `K`.
    pub local_steps: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Clients' learning rate γ.
    pub client_lr: f64,
    /// Server learning rate λ.
    pub server_lr: f64,
    /// Client sampling probability q.
    pub sample_rate: f64,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
    /// Transport codec for client update deltas (simulated encode/decode
    /// round-trip before the finite-norm gate; `F32` is the exact no-op).
    pub quantization: Quantization,
    /// Keep raw updates for gradient-angle analysis.
    pub collect_updates: bool,
    /// Master seed.
    pub seed: u64,
    /// Trojan training hyper-parameters.
    pub trojan: TrojanConfig,
    /// CollaPois attack parameters.
    pub collapois: CollaPoisConfig,
    /// Defense hyper-parameters.
    pub defense_params: DefenseParams,
    /// DPois/MRepl/DBA poisoned-data fraction.
    pub poison_fraction: f64,
    /// Client-data materialization strategy (see [`CohortMode`]).
    pub cohort: CohortMode,
    /// Resident-shard byte budget in MiB for the lazy backing
    /// (`0` = [`DEFAULT_SHARD_BUDGET_MB`]).
    pub shard_budget_mb: usize,
}

impl ScenarioConfig {
    /// A fast image-dataset configuration (FEMNIST-sim) suited to tests and
    /// the `quick` benchmark scale.
    pub fn quick_image(alpha: f64, compromised_frac: f64) -> Self {
        Self {
            dataset: DatasetKind::Image,
            num_clients: 60,
            samples_per_client: 40,
            alpha,
            compromised_frac,
            attack: AttackKind::CollaPois,
            defense: DefenseKind::None,
            algo: FlAlgo::FedAvg,
            model_kind: ScenarioModel::Mlp,
            rounds: 40,
            local_steps: 4,
            batch_size: 16,
            client_lr: 0.1,
            server_lr: 1.0,
            sample_rate: 0.25,
            eval_every: 10,
            quantization: Quantization::F32,
            collect_updates: false,
            seed: 42,
            trojan: TrojanConfig::default(),
            collapois: CollaPoisConfig::paper(),
            defense_params: DefenseParams::default(),
            poison_fraction: 0.5,
            cohort: CohortMode::Auto,
            shard_budget_mb: 0,
        }
    }

    /// A fast text-dataset configuration (Sentiment-sim).
    pub fn quick_text(alpha: f64, compromised_frac: f64) -> Self {
        Self {
            dataset: DatasetKind::Text,
            num_clients: 60,
            samples_per_client: 40,
            ..Self::quick_image(alpha, compromised_frac)
        }
    }

    /// Model architecture for the dataset.
    pub fn model_spec(&self) -> ModelSpec {
        match (self.dataset, self.model_kind) {
            (DatasetKind::Image, ScenarioModel::Mlp) => {
                ModelSpec::mlp(IMAGE_SIDE * IMAGE_SIDE, &[48], IMAGE_CLASSES)
            }
            (DatasetKind::Image, ScenarioModel::Cnn) => {
                ModelSpec::small_cnn(IMAGE_SIDE, IMAGE_CLASSES)
            }
            (DatasetKind::Text, _) => ModelSpec::mlp(TEXT_DIM, &[16], TEXT_CLASSES),
        }
    }

    /// Number of compromised clients: `round(frac·N)` floored at 4 below
    /// [`LAZY_COHORT_THRESHOLD`] clients and at 1 above it, 0 when the
    /// fraction is 0 or the attack is `None`. (The quick-scale floor of 4
    /// mirrors the paper's smallest cohorts — 4–28 clients — where fewer
    /// compromised validation splits cover too few classes to train a
    /// meaningful Trojan. At paper scale each client is one of thousands,
    /// so even a handful of compromised clients pools enough auxiliary
    /// data and the floor is no longer needed.)
    pub fn num_compromised(&self) -> usize {
        if self.compromised_frac <= 0.0 || self.attack == AttackKind::None {
            return 0;
        }
        let floor = if self.num_clients >= LAZY_COHORT_THRESHOLD {
            1
        } else {
            4
        };
        ((self.num_clients as f64 * self.compromised_frac).round() as usize)
            .clamp(floor, (self.num_clients / 2).max(floor))
    }

    /// Whether this configuration serves client data through lazy resident
    /// shards.
    pub fn uses_lazy_cohort(&self) -> bool {
        match self.cohort {
            CohortMode::Eager => false,
            CohortMode::Lazy => true,
            CohortMode::Auto => self.num_clients >= LAZY_COHORT_THRESHOLD,
        }
    }

    /// Resident-shard byte budget for the lazy backing.
    pub fn shard_budget_bytes(&self) -> usize {
        let mb = if self.shard_budget_mb == 0 {
            DEFAULT_SHARD_BUDGET_MB
        } else {
            self.shard_budget_mb
        };
        mb << 20
    }

    /// The per-client shard generator for the lazy backing: the same
    /// synthetic source as [`Scenario::generate_dataset`] (identical
    /// prototypes/centers for a given seed — the `samples` field does not
    /// shape them), rendered per client from the derived shard RNG stream.
    pub fn shard_spec(&self) -> ShardSpec {
        let source = match self.dataset {
            DatasetKind::Image => ShardSource::Image(SyntheticImage::new(SyntheticImageConfig {
                side: IMAGE_SIDE,
                classes: IMAGE_CLASSES,
                samples: self.samples_per_client,
                noise: 0.05,
                max_shift: 1,
                seed: self.seed,
            })),
            DatasetKind::Text => ShardSource::Text(SyntheticText::new(SyntheticTextConfig {
                dim: TEXT_DIM,
                classes: TEXT_CLASSES,
                clusters_per_class: 3,
                samples: self.samples_per_client,
                noise: 0.6,
                seed: self.seed,
            })),
        };
        ShardSpec::new(source, self.samples_per_client, self.alpha, self.seed)
    }

    /// The trigger for this dataset family.
    pub fn build_trigger(&self) -> Box<dyn Trigger> {
        match self.dataset {
            DatasetKind::Image => {
                Box::new(WaNetTrigger::new(IMAGE_SIDE, 4, 3.0, self.seed ^ 0x7716))
            }
            DatasetKind::Text => Box::new(TextTrigger::new(TEXT_DIM, 2.0, 0.6, self.seed ^ 0x7716)),
        }
    }
}

/// Image side length of the FEMNIST-sim scenario models.
pub const IMAGE_SIDE: usize = 12;
/// Class count of the FEMNIST-sim scenario.
pub const IMAGE_CLASSES: usize = 4;
/// Embedding dimension of the Sentiment-sim scenario.
pub const TEXT_DIM: usize = 32;
/// Class count of the Sentiment-sim scenario.
pub const TEXT_CLASSES: usize = 2;

/// Execution-engine options for a scenario run (`collapois-runtime` knobs).
/// The engine knobs never change the numerical result — `workers = N` is
/// bit-identical to `workers = 1`, and a resumed run converges to the same
/// final model as an uninterrupted one. The one deliberate exception is
/// `fault`: an active fault plan changes *which clients contribute* each
/// round (that is its purpose), but the faulted run itself is still fully
/// deterministic and worker-count-invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Worker threads for benign-client training fan-out (`0`/`1` =
    /// sequential).
    pub workers: usize,
    /// Mirror the structured JSONL run trace to this file.
    pub trace_path: Option<PathBuf>,
    /// Directory for periodic snapshots (`None` disables checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot every this many completed rounds (`0` = a default of 5
    /// when `checkpoint_dir` is set).
    pub checkpoint_every: usize,
    /// Resume from the newest snapshot in `checkpoint_dir`, if any.
    pub resume: bool,
    /// Attach the round-to-round shift monitor; alerts land in the trace.
    pub monitor: bool,
    /// Report the per-phase round-loop breakdown (the report's `profile`
    /// field is always populated; this flag asks callers such as the CLI to
    /// print it).
    pub profile_rounds: bool,
    /// Deterministic fault-injection plan (dropout, stragglers, corrupted
    /// updates, checkpoint-write failures). The default plan injects
    /// nothing.
    pub fault: FaultPlan,
    /// Run the buffered-async discrete-event simulator instead of the
    /// synchronous round loop (`None` = synchronous). Each buffer flush
    /// plays a round; the scenario's `rounds` becomes the flush target.
    /// Checkpointing is disabled in sim mode — the same-seed bitwise
    /// replay is its resume story.
    pub sim: Option<SimKnobs>,
}

/// Discrete-event simulator knobs for a scenario run (the `--sim-*` CLI
/// flags). These parameterize [`SimPlan`]; the population comes from the
/// scenario config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimKnobs {
    /// Mean virtual inter-arrival gap per client in ms (Poisson).
    pub arrival_mean_ms: f64,
    /// Mean virtual training duration in ms.
    pub train_mean_ms: f64,
    /// Buffer size `K`: aggregate after this many buffered completions.
    pub buffer_k: usize,
    /// Virtual flush deadline in ms (`0` = no deadline: flush only on a
    /// full buffer).
    pub flush_deadline_ms: f64,
    /// FedBuff staleness exponent: weight `(1+s)^-decay`.
    pub staleness_decay: f64,
    /// Mean virtual up-time in ms for availability churn (`0` disables
    /// churn: clients are always available).
    pub churn_up_ms: f64,
    /// Mean virtual down-time in ms for availability churn.
    pub churn_down_ms: f64,
    /// Max clients training concurrently (bounds live model snapshots).
    pub max_concurrency: usize,
}

impl Default for SimKnobs {
    fn default() -> Self {
        let d = SimPlan::default();
        Self {
            arrival_mean_ms: match d.arrival {
                ArrivalProcess::Poisson { mean_ms } => mean_ms,
                ArrivalProcess::Trace(_) => 50.0,
            },
            train_mean_ms: d.train_mean_ms,
            buffer_k: d.buffer_k,
            flush_deadline_ms: d.flush_deadline_ms,
            staleness_decay: d.staleness_decay,
            churn_up_ms: 0.0,
            churn_down_ms: 0.0,
            max_concurrency: d.max_concurrency,
        }
    }
}

impl SimKnobs {
    /// The driver plan for a `num_clients` population.
    pub fn to_plan(&self, num_clients: usize) -> SimPlan {
        SimPlan {
            num_clients,
            arrival: ArrivalProcess::Poisson {
                mean_ms: self.arrival_mean_ms,
            },
            train_mean_ms: self.train_mean_ms,
            buffer_k: self.buffer_k,
            flush_deadline_ms: self.flush_deadline_ms,
            staleness_decay: self.staleness_decay,
            churn: if self.churn_up_ms > 0.0 && self.churn_down_ms > 0.0 {
                Some(ChurnPlan {
                    mean_up_ms: self.churn_up_ms,
                    mean_down_ms: self.churn_down_ms,
                })
            } else {
                None
            },
            max_concurrency: self.max_concurrency,
            ..SimPlan::default()
        }
    }
}

impl RunOptions {
    /// Effective checkpoint cadence.
    fn effective_checkpoint_every(&self) -> usize {
        if self.checkpoint_every == 0 {
            5
        } else {
            self.checkpoint_every
        }
    }
}

/// Population metrics at one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundMetrics {
    /// Round index (1-based: after this many completed rounds).
    pub round: usize,
    /// Mean Benign AC across benign clients.
    pub benign_accuracy: f64,
    /// Mean Attack SR across benign clients.
    pub attack_success_rate: f64,
}

/// Everything a scenario run produces.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The configuration that produced this report.
    pub config: ScenarioConfig,
    /// Ids of the compromised clients.
    pub compromised: Vec<usize>,
    /// Population metrics at each evaluation point.
    pub rounds: Vec<RoundMetrics>,
    /// Final per-client metrics (benign clients only).
    pub clients: Vec<ClientMetrics>,
    /// Fig. 12-style cluster analysis (empty when no attack ran).
    pub clusters: Vec<ClusterReport>,
    /// Per-round records (updates kept when `collect_updates`).
    pub records: Vec<RoundRecord>,
    /// The Trojaned model X, when the attack trained one.
    pub trojan: Option<TrojanedModel>,
    /// Final global model parameters.
    pub final_global: Vec<f32>,
    /// Per-phase wall-clock breakdown of the run's round loop.
    pub profile: PhaseProfile,
    /// FNV-1a over the run's canonical (wall-clock- and worker-count-
    /// invariant) trace-event JSON lines — the digest the grid
    /// conformance harness pins against golden fixtures.
    pub event_hash: u64,
    /// Number of trace events folded into `event_hash`.
    pub event_count: u64,
    /// Residency counters of the lazy cohort backing (`None` on eager
    /// runs). Hit/miss/eviction tallies depend on access order only, so
    /// they are as deterministic as the run itself; `resident_bytes` is
    /// what the cohort-scale budget test asserts against.
    pub shard_stats: Option<ShardStats>,
}

impl ScenarioReport {
    /// The last evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran zero evaluation points (rounds = 0).
    pub fn final_round(&self) -> &RoundMetrics {
        self.rounds
            .last()
            .expect("scenario ran at least one evaluation")
    }

    /// Population metrics over all benign clients at the end.
    pub fn population(&self) -> PopulationMetrics {
        population(&self.clients)
    }

    /// Population metrics over the top-k% most affected clients (Eq. 8).
    pub fn top_k(&self, k: f64) -> PopulationMetrics {
        population(&top_k_percent(&self.clients, k))
    }
}

/// Mean ± std of final metrics over repeated seeded runs (the paper runs
/// each experiment 5 times and reports the small variance).
#[derive(Debug, Clone)]
pub struct RepeatedReport {
    /// One full report per seed.
    pub runs: Vec<ScenarioReport>,
    /// Mean final Benign AC.
    pub benign_ac_mean: f64,
    /// Std of final Benign AC.
    pub benign_ac_std: f64,
    /// Mean final Attack SR.
    pub attack_sr_mean: f64,
    /// Std of final Attack SR.
    pub attack_sr_std: f64,
}

/// One experiment cell, ready to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    cfg: ScenarioConfig,
}

impl Scenario {
    /// Creates the scenario.
    pub fn new(cfg: ScenarioConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Runs the scenario `repeats` times with derived seeds and aggregates
    /// the final population metrics (the paper's 5-repetition protocol).
    ///
    /// # Panics
    ///
    /// Panics if `repeats == 0`.
    pub fn run_repeated(&self, repeats: usize) -> RepeatedReport {
        assert!(repeats > 0, "need at least one repeat");
        let runs: Vec<ScenarioReport> = (0..repeats)
            .map(|r| {
                let mut cfg = self.cfg.clone();
                cfg.seed = self.cfg.seed.wrapping_add(1_000_003 * r as u64);
                Scenario::new(cfg).run()
            })
            .collect();
        let acs: Vec<f64> = runs
            .iter()
            .map(|r| r.final_round().benign_accuracy)
            .collect();
        let srs: Vec<f64> = runs
            .iter()
            .map(|r| r.final_round().attack_success_rate)
            .collect();
        RepeatedReport {
            benign_ac_mean: collapois_stats::descriptive::mean(&acs),
            benign_ac_std: collapois_stats::descriptive::std_dev(&acs),
            attack_sr_mean: collapois_stats::descriptive::mean(&srs),
            attack_sr_std: collapois_stats::descriptive::std_dev(&srs),
            runs,
        }
    }

    /// Generates the raw (un-partitioned) dataset for this configuration.
    pub fn generate_dataset(&self) -> Dataset {
        let samples = self.cfg.num_clients * self.cfg.samples_per_client;
        match self.cfg.dataset {
            DatasetKind::Image => SyntheticImage::new(SyntheticImageConfig {
                side: IMAGE_SIDE,
                classes: IMAGE_CLASSES,
                samples,
                noise: 0.05,
                max_shift: 1,
                seed: self.cfg.seed,
            })
            .generate(),
            DatasetKind::Text => SyntheticText::new(SyntheticTextConfig {
                dim: TEXT_DIM,
                classes: TEXT_CLASSES,
                clusters_per_class: 3,
                samples,
                noise: 0.6,
                seed: self.cfg.seed,
            })
            .generate(),
        }
    }

    /// Runs the scenario end to end with default execution options
    /// (sequential, no trace file, no checkpoints).
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (zero rounds, bad rates — see
    /// [`FlConfig::validate`]).
    pub fn run(&self) -> ScenarioReport {
        self.run_with(&RunOptions::default())
    }

    /// Runs the scenario end to end under the given execution options.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations, on trace/checkpoint I/O errors,
    /// and when `opts.resume` finds a snapshot from a different
    /// configuration.
    pub fn run_with(&self, opts: &RunOptions) -> ScenarioReport {
        let cfg = &self.cfg;
        let spec = cfg.model_spec();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5CE0);

        // 1. Data. The lazy path never pools a global dataset: shards are
        // a pure function of (seed, client_id), so the cohort engine
        // materializes clients on first touch under the byte budget. It
        // consumes no draws from `rng` here, which puts the compromised
        // shuffle below on a different stream position than the eager
        // path — lazy cohorts are a new scenario family at new scales,
        // not a re-expression of a pinned eager one.
        let fed = if cfg.uses_lazy_cohort() {
            FederatedDataset::lazy(cfg.shard_spec(), cfg.num_clients, cfg.shard_budget_bytes())
        } else {
            let dataset = self.generate_dataset();
            FederatedDataset::build(&mut rng, &dataset, cfg.num_clients, cfg.alpha)
        };

        // 2. Compromised clients (uniformly random, per the paper).
        let n_comp = cfg.num_compromised();
        let mut ids: Vec<usize> = (0..cfg.num_clients).collect();
        ids.shuffle(&mut rng);
        let mut compromised: Vec<usize> = ids.into_iter().take(n_comp).collect();
        compromised.sort_unstable();

        // 3. Trigger + auxiliary data + Trojaned model X where needed.
        let trigger = cfg.build_trigger();
        let aux = auxiliary_data(&fed, &compromised);
        let trojan = match cfg.attack {
            AttackKind::CollaPois if !compromised.is_empty() => {
                Some(train_trojan(&spec, &aux, trigger.as_ref(), &cfg.trojan))
            }
            _ => None,
        };
        // The semantic backdoor's region is fit once on the attacker's
        // auxiliary data; it doubles as the Attack-SR evaluator (clean
        // in-region samples). Every other attack evaluates through the
        // trigger. With no compromised clients `aux` is empty, there is
        // nothing to fit, and the trigger evaluator is used unchanged.
        let semantic = match cfg.attack {
            AttackKind::Semantic if !aux.is_empty() => Some(SemanticRegion::fit(
                &aux,
                semantic_source_class(cfg.trojan.target_class, aux.num_classes()),
                cfg.trojan.target_class,
                0.5,
                cfg.seed ^ 0x5E3A,
            )),
            _ => None,
        };
        let trigger_eval = TriggerBackdoor(trigger.as_ref());
        let backdoor: &dyn BackdoorEval = match &semantic {
            Some(region) => region,
            None => &trigger_eval,
        };

        // 4. Adversary.
        let mut adversary: Option<Box<dyn Adversary>> = self.build_adversary(
            &fed,
            &compromised,
            trigger.as_ref(),
            trojan.as_ref(),
            semantic.as_ref(),
            &spec,
        );

        // 5. Server with defense + personalization.
        let fl_cfg = FlConfig {
            model: spec.clone(),
            rounds: cfg.rounds,
            local_steps: cfg.local_steps,
            batch_size: cfg.batch_size,
            client_lr: cfg.client_lr,
            server_lr: cfg.server_lr,
            sample_rate: cfg.sample_rate,
            seed: cfg.seed,
            eval_every: cfg.eval_every,
            quantization: cfg.quantization,
        };
        let aggregator = self.build_aggregator(&compromised);
        let personalization = self.build_personalization();
        let mut server = FlServer::new(fl_cfg, fed, aggregator, personalization);
        server.collect_updates(cfg.collect_updates);
        // Fine-Pruning runs inside the synchronous round loop; the
        // buffered-async simulator has no post-aggregation hook, so the
        // defense is inert there (documented limitation shared by the
        // monitor and checkpointing).
        if cfg.defense == DefenseKind::FinePrune && opts.sim.is_none() {
            let p = &cfg.defense_params;
            server.enable_fine_pruning(p.fp_fraction, p.fp_every);
        }
        if opts.workers > 1 {
            server.set_workers(opts.workers);
        }
        if let Some(path) = &opts.trace_path {
            server
                .trace_to_file(path)
                .unwrap_or_else(|e| panic!("cannot open trace file {path:?}: {e}"));
        }
        if opts.monitor {
            server.enable_monitor(ShiftDetector::default_paper());
        }
        // The fault plan participates in the config hash, so it must be
        // installed before any resume attempt.
        server.set_fault_plan(opts.fault);
        if let Some(dir) = &opts.checkpoint_dir {
            if opts.sim.is_none() {
                server.enable_checkpoints(dir, opts.effective_checkpoint_every());
                if opts.resume {
                    server
                        .resume_latest(dir)
                        .unwrap_or_else(|e| panic!("cannot resume from {dir:?}: {e}"));
                }
            }
        }

        // 6. Round loop with periodic evaluation (starting past any
        // checkpointed rounds when resuming), or the buffered-async
        // simulator with one final evaluation point.
        let start_round = server.rounds_done();
        let mut records = Vec::with_capacity(cfg.rounds.saturating_sub(start_round));
        let mut round_metrics = Vec::new();
        if let Some(knobs) = &opts.sim {
            let plan = knobs.to_plan(cfg.num_clients);
            let adv = adversary.as_deref_mut();
            server.run_sim(&plan, cfg.rounds, adv);
            records = round_records_from_events(server.trace_events());
            let metrics = self.evaluate(&mut server, backdoor, &compromised);
            let pop = population(&metrics);
            round_metrics.push(RoundMetrics {
                round: server.rounds_done(),
                benign_accuracy: pop.benign_ac,
                attack_success_rate: pop.attack_sr,
            });
        } else {
            for t in start_round..cfg.rounds {
                let adv = adversary.as_deref_mut();
                records.push(server.run_round(adv));
                let at_eval = (t + 1) % cfg.eval_every == 0 || t + 1 == cfg.rounds;
                if at_eval {
                    let metrics = self.evaluate(&mut server, backdoor, &compromised);
                    let pop = population(&metrics);
                    round_metrics.push(RoundMetrics {
                        round: t + 1,
                        benign_accuracy: pop.benign_ac,
                        attack_success_rate: pop.attack_sr,
                    });
                }
            }
        }

        server.finish_run();

        // A resume that finds the run already complete executes no rounds;
        // still report one evaluation point so downstream consumers see
        // final metrics.
        if round_metrics.is_empty() {
            let metrics = self.evaluate(&mut server, backdoor, &compromised);
            let pop = population(&metrics);
            round_metrics.push(RoundMetrics {
                round: server.rounds_done(),
                benign_accuracy: pop.benign_ac,
                attack_success_rate: pop.attack_sr,
            });
        }

        // 7. Final client-level metrics and cluster analysis.
        let clients = self.evaluate(&mut server, backdoor, &compromised);
        let clusters = if compromised.is_empty() {
            Vec::new()
        } else {
            cluster_analysis(server.dataset(), &clients, &aux)
        };

        let (event_hash, event_count) = hash_canonical_events(server.trace_events());
        let shard_stats = server.dataset().shard_stats();
        ScenarioReport {
            config: cfg.clone(),
            compromised,
            rounds: round_metrics,
            clients,
            clusters,
            records,
            trojan,
            final_global: server.global().to_vec(),
            profile: server.take_profile(),
            event_hash,
            event_count,
            shard_stats,
        }
    }

    fn evaluate(
        &self,
        server: &mut FlServer,
        backdoor: &dyn BackdoorEval,
        compromised: &[usize],
    ) -> Vec<ClientMetrics> {
        let spec = self.cfg.model_spec();
        server.evaluate_clients(&spec, backdoor, self.cfg.trojan.target_class, compromised)
    }

    fn build_personalization(&self) -> Box<dyn Personalization> {
        match self.cfg.algo {
            FlAlgo::FedAvg => Box::new(NoPersonalization::new()),
            FlAlgo::FedDc => Box::new(FedDc::new(1.0)),
            FlAlgo::MetaFed => Box::new(MetaFed::new(2.0, 2)),
            FlAlgo::Ditto => Box::new(Ditto::new(0.5)),
            FlAlgo::Clustered => Box::new(Clustered::new(3)),
            FlAlgo::Scaffold => Box::new(Scaffold::new()),
        }
    }

    fn build_aggregator(&self, compromised: &[usize]) -> Box<dyn Aggregator> {
        let p = &self.cfg.defense_params;
        let expected_cohort =
            ((self.cfg.num_clients as f64 * self.cfg.sample_rate).round() as usize).max(1);
        match self.cfg.defense {
            DefenseKind::None => Box::new(FedAvg::new()),
            DefenseKind::Dp => Box::new(DpAggregator::new(p.dp_clip, p.dp_noise)),
            DefenseKind::NormBound => Box::new(NormBound::new(p.nb_bound).with_noise(p.nb_noise)),
            DefenseKind::Krum => Box::new(Krum::new(compromised.len().max(1))),
            DefenseKind::Rlr => Box::new(RobustLearningRate::new(
                ((expected_cohort as f64 * p.rlr_frac).round() as usize).max(1),
            )),
            DefenseKind::Median => Box::new(CoordinateMedian::new()),
            DefenseKind::TrimmedMean => Box::new(TrimmedMean::new(p.trim_beta)),
            DefenseKind::SignSgd => Box::new(SignSgd::new(p.sign_step)),
            DefenseKind::Flare => Box::new(Flare::new(p.flare_sharpness)),
            DefenseKind::Crfl => Box::new(Crfl::new(p.crfl_bound, p.crfl_noise)),
            DefenseKind::StatFilter => Box::new(StatFilter::new()),
            DefenseKind::UserDp => Box::new(UserLevelDp::new(p.dp_clip, 0.05)),
            // Fine-Pruning aggregates like FedAvg; the pruning itself is an
            // in-training server hook (see `FlServer::enable_fine_pruning`).
            DefenseKind::FinePrune => Box::new(FedAvg::new()),
        }
    }

    fn build_adversary(
        &self,
        fed: &FederatedDataset,
        compromised: &[usize],
        trigger: &dyn Trigger,
        trojan: Option<&TrojanedModel>,
        semantic: Option<&SemanticRegion>,
        spec: &ModelSpec,
    ) -> Option<Box<dyn Adversary>> {
        if compromised.is_empty() {
            return None;
        }
        let cfg = &self.cfg;
        let local_cfg = LocalTrainConfig {
            steps: cfg.local_steps,
            batch_size: cfg.batch_size,
            lr: cfg.client_lr,
        };
        let local_data: Vec<Dataset> = compromised
            .iter()
            .map(|&c| fed.client(c).train.clone())
            .collect();
        match cfg.attack {
            AttackKind::None => None,
            AttackKind::CollaPois => {
                let x = trojan
                    .expect("CollaPois requires a Trojaned model")
                    .params
                    .clone();
                Some(Box::new(CollaPois::new(
                    compromised.to_vec(),
                    x,
                    cfg.collapois,
                )))
            }
            AttackKind::DPois => Some(Box::new(DPois::new(
                compromised.to_vec(),
                &local_data,
                trigger,
                cfg.trojan.target_class,
                cfg.poison_fraction,
                spec,
                local_cfg,
                cfg.seed ^ 0xD901,
            ))),
            AttackKind::LabelFlip => Some(Box::new(LabelFlip::new(
                compromised.to_vec(),
                &local_data,
                spec,
                local_cfg,
                cfg.seed ^ 0x1F11,
            ))),
            AttackKind::Semantic => Some(Box::new(SemanticAttack::new(
                compromised.to_vec(),
                &local_data,
                semantic.expect("semantic attack requires a fitted region"),
                spec,
                local_cfg,
                cfg.seed ^ 0x5E3A,
            ))),
            AttackKind::MRepl => {
                let expected_cohort = (cfg.num_clients as f64 * cfg.sample_rate).round().max(1.0);
                let expected_malicious = (compromised.len() as f64 * cfg.sample_rate)
                    .round()
                    .max(1.0);
                let boost =
                    (expected_cohort / (cfg.server_lr * expected_malicious)).clamp(1.0, 50.0);
                Some(Box::new(MRepl::new(
                    compromised.to_vec(),
                    &local_data,
                    trigger,
                    cfg.trojan.target_class,
                    cfg.poison_fraction,
                    spec,
                    local_cfg,
                    boost,
                    cfg.seed ^ 0x39E1,
                )))
            }
            AttackKind::Dba => {
                let dba = match cfg.dataset {
                    DatasetKind::Image => DbaTrigger::new(IMAGE_SIDE, 2, 1.0),
                    // DBA is image-specific; for text we fall back to the
                    // shared term trigger by giving every client the same
                    // "sub-pattern" via a 1-part decomposition equivalent.
                    DatasetKind::Text => DbaTrigger::new(IMAGE_SIDE, 2, 1.0),
                };
                if cfg.dataset == DatasetKind::Text {
                    // Text has no spatial decomposition: DBA degenerates to
                    // DPois with the term trigger (documented limitation).
                    return Some(Box::new(DPois::new(
                        compromised.to_vec(),
                        &local_data,
                        trigger,
                        cfg.trojan.target_class,
                        cfg.poison_fraction,
                        spec,
                        local_cfg,
                        cfg.seed ^ 0xDBA,
                    )));
                }
                Some(Box::new(DbaAttack::new(
                    compromised.to_vec(),
                    &local_data,
                    &dba,
                    cfg.trojan.target_class,
                    cfg.poison_fraction,
                    spec,
                    local_cfg,
                    cfg.seed ^ 0xDBA,
                )))
            }
        }
    }
}

/// Source class the semantic backdoor hijacks: the class after the attack's
/// target, wrapping — the two must differ and both must exist in the
/// scenario's label space.
pub fn semantic_source_class(target_class: usize, num_classes: usize) -> usize {
    assert!(num_classes >= 2, "semantic backdoor needs two classes");
    (target_class + 1) % num_classes
}

/// The attacker's auxiliary data at this simulation scale: the compromised
/// clients' full local data (the paper pools validation splits of thousands
/// of clients; with tens of clients the validation splits alone are too
/// small to train X — documented in DESIGN.md §1).
pub fn auxiliary_data(fed: &FederatedDataset, compromised: &[usize]) -> Dataset {
    let mut aux = Dataset::empty(fed.sample_shape(), fed.num_classes());
    for &c in compromised {
        aux.extend_from(&fed.client(c).all());
    }
    aux
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(attack: AttackKind, defense: DefenseKind, algo: FlAlgo) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
        cfg.num_clients = 12;
        cfg.samples_per_client = 25;
        cfg.rounds = 6;
        cfg.eval_every = 3;
        cfg.sample_rate = 0.5;
        cfg.trojan.epochs = 10;
        cfg.attack = attack;
        cfg.defense = defense;
        cfg.algo = algo;
        cfg
    }

    #[test]
    fn clean_scenario_learns() {
        let mut cfg = tiny(AttackKind::None, DefenseKind::None, FlAlgo::FedAvg);
        cfg.rounds = 15;
        let report = Scenario::new(cfg).run();
        assert!(report.compromised.is_empty());
        assert!(report.trojan.is_none());
        assert!(report.clusters.is_empty());
        let last = report.final_round();
        assert!(
            last.benign_accuracy > 0.5,
            "clean FL should learn: AC={}",
            last.benign_accuracy
        );
    }

    #[test]
    fn collapois_scenario_produces_full_report() {
        let report = Scenario::new(tiny(
            AttackKind::CollaPois,
            DefenseKind::None,
            FlAlgo::FedAvg,
        ))
        .run();
        assert_eq!(report.compromised.len(), 4); // floor of 4
        let x = report.trojan.as_ref().expect("X trained");
        assert!(
            x.trigger_success > 0.5,
            "X trigger success {}",
            x.trigger_success
        );
        assert_eq!(report.clients.len(), 12 - 4);
        assert!(!report.clusters.is_empty());
        assert_eq!(report.rounds.len(), 2); // evals at rounds 3 and 6
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = tiny(AttackKind::CollaPois, DefenseKind::None, FlAlgo::FedAvg);
        let a = Scenario::new(cfg.clone()).run();
        let b = Scenario::new(cfg).run();
        assert_eq!(a.final_global, b.final_global);
        assert_eq!(a.compromised, b.compromised);
        assert_eq!((a.event_hash, a.event_count), (b.event_hash, b.event_count));
        assert!(a.event_count > 0, "trace must carry events");
    }

    #[test]
    fn num_compromised_has_floor_and_cap() {
        let mut cfg = ScenarioConfig::quick_image(1.0, 0.001);
        assert_eq!(cfg.num_compromised(), 4); // floor
        cfg.compromised_frac = 0.9;
        assert_eq!(cfg.num_compromised(), cfg.num_clients / 2); // cap
        cfg.compromised_frac = 0.0;
        assert_eq!(cfg.num_compromised(), 0);
        cfg.compromised_frac = 0.1;
        cfg.attack = AttackKind::None;
        assert_eq!(cfg.num_compromised(), 0);
    }

    #[test]
    fn baseline_attacks_run() {
        for attack in [
            AttackKind::DPois,
            AttackKind::MRepl,
            AttackKind::Dba,
            AttackKind::LabelFlip,
        ] {
            let report = Scenario::new(tiny(attack, DefenseKind::None, FlAlgo::FedAvg)).run();
            assert!(!report.compromised.is_empty(), "{:?}", attack);
            assert!(report.trojan.is_none());
        }
    }

    #[test]
    fn defenses_and_algos_run() {
        for defense in [DefenseKind::Krum, DefenseKind::Dp] {
            let report = Scenario::new(tiny(AttackKind::CollaPois, defense, FlAlgo::FedAvg)).run();
            assert_eq!(report.rounds.len(), 2);
        }
        for algo in [FlAlgo::FedDc, FlAlgo::MetaFed, FlAlgo::Ditto] {
            let report = Scenario::new(tiny(AttackKind::CollaPois, DefenseKind::None, algo)).run();
            assert_eq!(report.rounds.len(), 2, "{:?}", algo);
        }
    }

    #[test]
    fn semantic_fine_prune_and_scaffold_arms_run() {
        // Semantic backdoor: no Trojan, no trigger; Attack SR is measured
        // on clean in-region samples and must stay a valid rate.
        let report = Scenario::new(tiny(
            AttackKind::Semantic,
            DefenseKind::None,
            FlAlgo::FedAvg,
        ))
        .run();
        assert!(!report.compromised.is_empty());
        assert!(report.trojan.is_none());
        let sr = report.final_round().attack_success_rate;
        assert!((0.0..=1.0).contains(&sr), "semantic SR {sr}");
        // In-training fine-pruning: FedAvg aggregation + the pruning hook
        // (fp_every = 2 fires at rounds 2, 4 and 6 here).
        let report = Scenario::new(tiny(
            AttackKind::Semantic,
            DefenseKind::FinePrune,
            FlAlgo::FedAvg,
        ))
        .run();
        assert_eq!(report.rounds.len(), 2);
        assert!(report.final_global.iter().all(|v| v.is_finite()));
        // SCAFFOLD trains through the corrected local step.
        let report = Scenario::new(tiny(
            AttackKind::CollaPois,
            DefenseKind::None,
            FlAlgo::Scaffold,
        ))
        .run();
        assert_eq!(report.rounds.len(), 2);
    }

    #[test]
    fn text_scenario_runs() {
        let mut cfg = tiny(AttackKind::CollaPois, DefenseKind::None, FlAlgo::FedAvg);
        cfg.dataset = DatasetKind::Text;
        let report = Scenario::new(cfg).run();
        assert!(report.final_round().benign_accuracy > 0.0);
    }

    #[test]
    fn cnn_scenario_runs() {
        let mut cfg = tiny(AttackKind::CollaPois, DefenseKind::None, FlAlgo::FedAvg);
        cfg.model_kind = ScenarioModel::Cnn;
        cfg.rounds = 4;
        cfg.eval_every = 4;
        let report = Scenario::new(cfg).run();
        assert!(report.final_global.iter().all(|v| v.is_finite()));
        assert_eq!(report.rounds.len(), 1);
    }

    #[test]
    fn repeated_runs_aggregate_metrics() {
        let cfg = tiny(AttackKind::CollaPois, DefenseKind::None, FlAlgo::FedAvg);
        let rep = Scenario::new(cfg).run_repeated(3);
        assert_eq!(rep.runs.len(), 3);
        assert!((0.0..=1.0).contains(&rep.benign_ac_mean));
        assert!((0.0..=1.0).contains(&rep.attack_sr_mean));
        assert!(rep.benign_ac_std >= 0.0 && rep.attack_sr_std >= 0.0);
        // Distinct seeds: the runs differ.
        assert_ne!(rep.runs[0].final_global, rep.runs[1].final_global);
    }

    #[test]
    fn sim_mode_runs_and_is_deterministic() {
        let mut cfg = tiny(AttackKind::CollaPois, DefenseKind::None, FlAlgo::FedAvg);
        cfg.rounds = 4; // flush target in sim mode
        let opts = RunOptions {
            sim: Some(SimKnobs {
                arrival_mean_ms: 20.0,
                train_mean_ms: 30.0,
                buffer_k: 4,
                max_concurrency: 8,
                ..SimKnobs::default()
            }),
            ..RunOptions::default()
        };
        let a = Scenario::new(cfg.clone()).run_with(&opts);
        assert_eq!(a.records.len(), 4, "each flush plays a round");
        assert!(a.final_global.iter().all(|v| v.is_finite()));
        assert_eq!(a.rounds.len(), 1, "sim mode evaluates once, at the end");
        let b = Scenario::new(cfg).run_with(&opts);
        assert_eq!(a.final_global, b.final_global);
    }

    #[test]
    fn top_k_at_least_population_sr() {
        let report = Scenario::new(tiny(
            AttackKind::CollaPois,
            DefenseKind::None,
            FlAlgo::FedAvg,
        ))
        .run();
        let all = report.population();
        let top = report.top_k(25.0);
        assert!(top.attack_sr + 1e-9 >= all.attack_sr);
    }
}
