//! Attack stealthiness analysis (§IV-D and §V "Bypassing Defenses").
//!
//! The paper's stealth argument: with a suitable ψ range and clipping bound,
//! malicious gradients blend into the background of benign gradients in
//! angle, variance and magnitude. The server-side statistical battery —
//! two-tailed t-test on mean angles, Levene's test on variances, the
//! two-sample KS test on the distributions, and the 3σ outlier rule on
//! magnitudes — fails to separate them (the paper reports only a 3.5 %
//! chance a malicious gradient is flagged).

use collapois_stats::descriptive::Summary;
use collapois_stats::geometry::{angles_to_reference, l2_norm, mean_vector};
use collapois_stats::hypothesis::{
    ks_two_sample, levene_test, t_test_welch, three_sigma_outliers, TestResult,
};

/// Angle/magnitude features of a set of gradient vectors against a common
/// reference direction (the "data background" of §IV-D).
#[derive(Debug, Clone, PartialEq)]
pub struct GradientFeatures {
    /// Angles (radians) to the reference direction.
    pub angles: Vec<f64>,
    /// l2 magnitudes.
    pub magnitudes: Vec<f64>,
}

/// Computes features for `gradients` against the mean of `background`
/// (sampled clean gradients — in practice derived from the compromised
/// clients' clean data, keeping the black-box threat model).
///
/// Returns `None` if `background` is empty or its mean is a zero vector.
pub fn gradient_features(gradients: &[&[f32]], background: &[&[f32]]) -> Option<GradientFeatures> {
    let reference = mean_vector(background)?;
    if l2_norm(&reference) <= f64::EPSILON {
        return None;
    }
    Some(GradientFeatures {
        angles: angles_to_reference(gradients, &reference),
        magnitudes: gradients.iter().map(|g| l2_norm(g)).collect(),
    })
}

/// Outcome of the full §V statistical battery comparing malicious gradients
/// to benign ones.
#[derive(Debug, Clone, PartialEq)]
pub struct StealthReport {
    /// Welch t-test on the mean angle.
    pub angle_t_test: TestResult,
    /// Levene (Brown–Forsythe) test on the angle variances.
    pub angle_levene: TestResult,
    /// Two-sample KS test on the angle distributions.
    pub angle_ks: TestResult,
    /// Welch t-test on the magnitudes.
    pub magnitude_t_test: TestResult,
    /// Fraction of malicious gradients flagged by the 3σ rule on magnitude.
    pub three_sigma_rate: f64,
    /// Angle summary of the benign set.
    pub benign_angles: Summary,
    /// Angle summary of the malicious set.
    pub malicious_angles: Summary,
}

impl StealthReport {
    /// Whether every test fails to separate malicious from benign at the
    /// given significance level and the 3σ flag rate stays below
    /// `max_outlier_rate` (the paper's criterion).
    pub fn is_stealthy(&self, significance: f64, max_outlier_rate: f64) -> bool {
        !self.angle_t_test.rejects_at(significance)
            && !self.angle_levene.rejects_at(significance)
            && !self.angle_ks.rejects_at(significance)
            && !self.magnitude_t_test.rejects_at(significance)
            && self.three_sigma_rate <= max_outlier_rate
    }
}

/// Error from the stealth battery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StealthError {
    /// A feature set was too small for the tests.
    TooFewGradients,
    /// The background reference could not be formed.
    DegenerateBackground,
}

impl std::fmt::Display for StealthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewGradients => write!(f, "need at least 2 gradients per group"),
            Self::DegenerateBackground => write!(f, "background gradients are degenerate"),
        }
    }
}

impl std::error::Error for StealthError {}

/// Runs the full battery: benign vs malicious gradients, both featurized
/// against the sampled `background` gradients.
///
/// # Errors
///
/// Returns [`StealthError`] when a group has fewer than two usable gradients
/// or the background is degenerate.
pub fn stealth_battery(
    benign: &[&[f32]],
    malicious: &[&[f32]],
    background: &[&[f32]],
) -> Result<StealthReport, StealthError> {
    let bf = gradient_features(benign, background).ok_or(StealthError::DegenerateBackground)?;
    let mf = gradient_features(malicious, background).ok_or(StealthError::DegenerateBackground)?;
    if bf.angles.len() < 2 || mf.angles.len() < 2 {
        return Err(StealthError::TooFewGradients);
    }
    let angle_t_test =
        t_test_welch(&mf.angles, &bf.angles).map_err(|_| StealthError::TooFewGradients)?;
    let angle_levene =
        levene_test(&mf.angles, &bf.angles).map_err(|_| StealthError::TooFewGradients)?;
    let angle_ks =
        ks_two_sample(&mf.angles, &bf.angles).map_err(|_| StealthError::TooFewGradients)?;
    let magnitude_t_test =
        t_test_welch(&mf.magnitudes, &bf.magnitudes).map_err(|_| StealthError::TooFewGradients)?;
    let flagged = three_sigma_outliers(&bf.magnitudes, &mf.magnitudes);
    let three_sigma_rate = flagged.len() as f64 / mf.magnitudes.len().max(1) as f64;
    Ok(StealthReport {
        angle_t_test,
        angle_levene,
        angle_ks,
        magnitude_t_test,
        three_sigma_rate,
        benign_angles: Summary::of(&bf.angles),
        malicious_angles: Summary::of(&mf.angles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_stats::distribution::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Random vectors around a base direction with controllable scatter.
    fn cloud(rng: &mut StdRng, n: usize, dim: usize, scatter: f64, scale: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|d| {
                        let base = if d == 0 { 1.0 } else { 0.0 };
                        scale * (base + (scatter * standard_normal(rng)) as f32)
                    })
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn identically_distributed_groups_pass_the_battery() {
        let mut rng = StdRng::seed_from_u64(0);
        let benign = cloud(&mut rng, 60, 16, 0.5, 1.0);
        let malicious = cloud(&mut rng, 60, 16, 0.5, 1.0);
        let background = cloud(&mut rng, 30, 16, 0.5, 1.0);
        let report =
            stealth_battery(&refs(&benign), &refs(&malicious), &refs(&background)).unwrap();
        assert!(report.is_stealthy(0.01, 0.05), "{report:?}");
    }

    #[test]
    fn blatant_attack_is_caught() {
        let mut rng = StdRng::seed_from_u64(1);
        let benign = cloud(&mut rng, 60, 16, 0.5, 1.0);
        // Malicious: perfectly aligned and 100x larger (MRepl-style boost).
        let malicious = cloud(&mut rng, 60, 16, 0.001, 100.0);
        let background = cloud(&mut rng, 30, 16, 0.5, 1.0);
        let report =
            stealth_battery(&refs(&benign), &refs(&malicious), &refs(&background)).unwrap();
        assert!(
            !report.is_stealthy(0.01, 0.05),
            "boosted attack must be detectable"
        );
        assert!(report.three_sigma_rate > 0.5 || report.magnitude_t_test.rejects_at(0.01));
    }

    #[test]
    fn features_against_zero_background_is_none() {
        let zero = vec![vec![0.0f32; 4]; 3];
        let grads = vec![vec![1.0f32; 4]];
        assert!(gradient_features(&refs(&grads), &refs(&zero)).is_none());
        assert!(gradient_features(&refs(&grads), &[]).is_none());
    }

    #[test]
    fn too_few_gradients_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let one = cloud(&mut rng, 1, 8, 0.1, 1.0);
        let many = cloud(&mut rng, 10, 8, 0.1, 1.0);
        let bg = cloud(&mut rng, 5, 8, 0.1, 1.0);
        let err = stealth_battery(&refs(&many), &refs(&one), &refs(&bg)).unwrap_err();
        assert_eq!(err, StealthError::TooFewGradients);
        assert!(!format!("{err}").is_empty());
    }
}
