//! Targeted CollaPois — the paper's Discussion-section escalation (§VI,
//! "Attack Perspective").
//!
//! Instead of poisoning continuously, the attacker designates *high-value*
//! clients (in practice: those whose data the auxiliary set approximates
//! best, since Fig. 12 shows they are the most susceptible) and keeps the
//! Trojaned model "semi-ready": compromised clients behave benignly until
//! the attacker believes a high-value client is participating, and only then
//! send the `ψ(X − θ)` pull. This trades attack speed for an even smaller
//! detection surface.
//!
//! The server does not reveal the sampled cohort, so the attacker uses the
//! black-box signal available to its own clients: rounds are attacked with a
//! configured duty cycle, modelling the paper's "activates after updates
//! from these clients" trigger with the information actually available.

use crate::collapois::{CollaPois, CollaPoisConfig};
use collapois_fl::server::Adversary;
use rand::rngs::StdRng;

/// When the targeted variant sends malicious updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationPolicy {
    /// Attack every `period`-th round (duty-cycled poisoning).
    EveryNth {
        /// Attack period in rounds (1 = plain CollaPois).
        period: usize,
    },
    /// Stay dormant until `start`, then attack every round ("semi-ready"
    /// model released at a chosen moment).
    After {
        /// First attacking round.
        start: usize,
    },
}

/// CollaPois with an activation policy; benign-looking updates (zero delta —
/// i.e. "no change requested") are sent in dormant rounds.
#[derive(Debug, Clone)]
pub struct TargetedCollaPois {
    inner: CollaPois,
    policy: ActivationPolicy,
    attacked_rounds: Vec<usize>,
}

impl TargetedCollaPois {
    /// Creates the targeted variant.
    ///
    /// # Panics
    ///
    /// Panics on an invalid CollaPois configuration, empty compromised set,
    /// or `EveryNth { period: 0 }`.
    pub fn new(
        compromised: Vec<usize>,
        trojan: Vec<f32>,
        cfg: CollaPoisConfig,
        policy: ActivationPolicy,
    ) -> Self {
        if let ActivationPolicy::EveryNth { period } = policy {
            assert!(period > 0, "period must be positive");
        }
        Self {
            inner: CollaPois::new(compromised, trojan, cfg),
            policy,
            attacked_rounds: Vec::new(),
        }
    }

    /// Whether the policy activates in `round`.
    pub fn is_active(&self, round: usize) -> bool {
        match self.policy {
            ActivationPolicy::EveryNth { period } => round.is_multiple_of(period),
            ActivationPolicy::After { start } => round >= start,
        }
    }

    /// Rounds in which malicious updates were actually sent.
    pub fn attacked_rounds(&self) -> &[usize] {
        &self.attacked_rounds
    }

    /// The underlying CollaPois adversary.
    pub fn inner(&self) -> &CollaPois {
        &self.inner
    }
}

impl Adversary for TargetedCollaPois {
    fn compromised(&self) -> &[usize] {
        self.inner.compromised()
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        if self.is_active(round) {
            if self.attacked_rounds.last() != Some(&round) {
                self.attacked_rounds.push(round);
            }
            self.inner.craft_update(client_id, global, round, rng)
        } else {
            // Dormant: indistinguishable from a client whose local training
            // converged (zero update).
            vec![0.0; global.len()]
        }
    }

    fn name(&self) -> &'static str {
        "collapois-targeted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn adv(policy: ActivationPolicy) -> TargetedCollaPois {
        TargetedCollaPois::new(vec![0], vec![1.0; 8], CollaPoisConfig::paper(), policy)
    }

    #[test]
    fn every_nth_duty_cycle() {
        let mut a = adv(ActivationPolicy::EveryNth { period: 3 });
        let mut rng = StdRng::seed_from_u64(0);
        let global = vec![0.0f32; 8];
        for round in 0..9 {
            let d = a.craft_update(0, &global, round, &mut rng);
            let active = d.iter().any(|&v| v != 0.0);
            assert_eq!(active, round % 3 == 0, "round {round}");
        }
        assert_eq!(a.attacked_rounds(), &[0, 3, 6]);
    }

    #[test]
    fn after_policy_stays_dormant_then_fires() {
        let mut a = adv(ActivationPolicy::After { start: 5 });
        let mut rng = StdRng::seed_from_u64(1);
        let global = vec![0.0f32; 8];
        assert!(a
            .craft_update(0, &global, 4, &mut rng)
            .iter()
            .all(|&v| v == 0.0));
        assert!(a
            .craft_update(0, &global, 5, &mut rng)
            .iter()
            .any(|&v| v != 0.0));
        assert!(!a.is_active(0));
        assert!(a.is_active(99));
    }

    #[test]
    fn period_one_equals_plain_collapois() {
        let mut targeted = adv(ActivationPolicy::EveryNth { period: 1 });
        let mut plain = CollaPois::new(vec![0], vec![1.0; 8], CollaPoisConfig::paper());
        let global = vec![0.0f32; 8];
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let d1 = targeted.craft_update(0, &global, 2, &mut r1);
        let d2 = plain.craft_update(0, &global, 2, &mut r2);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = adv(ActivationPolicy::EveryNth { period: 0 });
    }
}
