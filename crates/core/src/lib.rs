//! CollaPois — the paper's primary contribution.
//!
//! This crate implements the collaborative backdoor poisoning attack of
//! *"A Client-level Assessment of Collaborative Backdoor Poisoning in
//! Non-IID Federated Learning"* (ICDCS 2025) on top of the `collapois-fl`
//! substrate, together with everything the paper's evaluation compares it
//! against:
//!
//! * [`trojan`] — training the Trojaned model X on the attacker's auxiliary
//!   data (Eq. 1 / Algorithm 1 line 3).
//! * [`collapois`] — the attack itself: every compromised client submits
//!   `Δθ_c = ψ_c·(X − θ^t)` with the dynamic rate `ψ_c ~ U[a,b]` (Eq. 4),
//!   optional l2 clipping to a shared bound `A` and optional τ-upscaling
//!   (Theorem 3's lower-bound control).
//! * [`baselines`] — DPois (local training on poisoned data), MRepl
//!   (model replacement with boosting) and DBA (distributed sub-triggers).
//! * [`theory`] — Theorems 1–3: the lower bound on `|C|`, the convergence
//!   bound `‖θ − X‖₂`, and the server's X-estimation error bounds.
//! * [`stealth`] — the §IV-D / §V "bypassing defenses" analysis: blending
//!   malicious gradient angles/magnitudes into the benign background and the
//!   t-test/Levene/KS/3σ battery.
//! * [`analysis`] — gradient-scatter measurements (Figs. 3 and 6).
//! * [`scenario`] — the experiment driver combining dataset × α × attack ×
//!   defense × FL algorithm, producing per-round and per-client reports.
//! * [`targeted`] — the Discussion-section (§VI) escalation: a "semi-ready"
//!   Trojaned model released on an activation policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
pub mod collapois;
pub mod scenario;
pub mod stealth;
pub mod targeted;
pub mod theory;
pub mod trojan;

pub use collapois::{CollaPois, CollaPoisConfig};
pub use scenario::{RunOptions, Scenario, ScenarioConfig, ScenarioReport, SimKnobs};
pub use trojan::TrojanConfig;
