//! The paper's theoretical results.
//!
//! * [`theorem1`] — lower bound on the number of compromised clients `|C|`
//!   as a function of the benign-angle statistics `(μ_α, σ)` and the ψ range
//!   `[a, b]` (Eq. 5), plus the attacker-side estimation procedure and its
//!   Hoeffding-bounded approximation error (Fig. 4).
//! * [`theorem2`] — the convergence bound `‖θ^t − X‖₂ ≤ (1/a − 1)·‖Δθ_c^{t'}‖₂ + ‖ζ‖₂`
//!   (Eq. 6) and a checker that validates it against measured trajectories.
//! * [`theorem3`] — the server's X-estimation error bounds (Eq. 7): the
//!   closed-form lower bound and a sampled estimate of the subset-max upper
//!   bound.

pub mod theorem1;
pub mod theorem2;
pub mod theorem3;

pub use theorem1::{estimate_angle_stats, theorem1_bound, AngleStats};
pub use theorem2::theorem2_bound;
pub use theorem3::{estimation_error, lower_bound as theorem3_lower_bound, upper_bound_sampled};
