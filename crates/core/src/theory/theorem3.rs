//! Theorem 3: the server cannot accurately estimate the Trojaned model X.
//!
//! If the server flags compromised clients with precision `p` and averages
//! the flagged clients' models into an estimate `X'`, the l2 estimation
//! error `‖X' − X‖₂` is bounded by (Eq. 7):
//!
//! `‖Σ_{c∈Ĉ} Δθ_c / (p·|C|·b)‖₂  ≤  Error  ≤  max_{L⊆N, |L|=|C|} ‖Σ_{i∈L} θ_i/|L| − X‖₂`
//!
//! The exact upper bound is a combinatorial max; [`upper_bound_sampled`]
//! estimates it by random-subset sampling (documented substitution,
//! DESIGN.md §1). Fig. 7 plots the measured error with `p = 1` stabilizing
//! at the τ-controlled lower bound.

use collapois_stats::geometry::{l2_distance, l2_norm};
use rand::seq::SliceRandom;
use rand::Rng;

/// The server's measured estimation error: `‖mean(flagged models) − X‖₂`.
///
/// # Panics
///
/// Panics if `flagged_models` is empty or dimensions mismatch.
pub fn estimation_error(flagged_models: &[&[f32]], x: &[f32]) -> f64 {
    assert!(
        !flagged_models.is_empty(),
        "need at least one flagged model"
    );
    let dim = x.len();
    let mut mean = vec![0.0f64; dim];
    for m in flagged_models {
        assert_eq!(m.len(), dim, "model dimension mismatch");
        for (acc, &v) in mean.iter_mut().zip(m.iter()) {
            *acc += v as f64;
        }
    }
    let n = flagged_models.len() as f64;
    let mean_f32: Vec<f32> = mean.into_iter().map(|v| (v / n) as f32).collect();
    l2_distance(&mean_f32, x)
}

/// Eq. 7's closed-form lower bound: `‖Σ_{c∈Ĉ} Δθ_c‖₂ / (p·|C|·b)`.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`, `0 < b ≤ 1`, `c_total > 0`, and the deltas are
/// non-empty with equal dimensions.
pub fn lower_bound(malicious_deltas: &[&[f32]], p: f64, c_total: usize, b: f64) -> f64 {
    assert!(0.0 < p && p <= 1.0, "precision must be in (0, 1]");
    assert!(0.0 < b && b <= 1.0, "psi upper bound must be in (0, 1]");
    assert!(c_total > 0, "need at least one compromised client");
    assert!(
        !malicious_deltas.is_empty(),
        "need at least one malicious delta"
    );
    let dim = malicious_deltas[0].len();
    let mut sum = vec![0.0f64; dim];
    for d in malicious_deltas {
        assert_eq!(d.len(), dim, "delta dimension mismatch");
        for (acc, &v) in sum.iter_mut().zip(d.iter()) {
            *acc += v as f64;
        }
    }
    let sum_f32: Vec<f32> = sum.into_iter().map(|v| v as f32).collect();
    l2_norm(&sum_f32) / (p * c_total as f64 * b)
}

/// Sampled estimate of Eq. 7's upper bound: the max over `trials` random
/// subsets `L ⊆ N` with `|L| = c_total` of `‖mean_{i∈L} θ_i − X‖₂`.
///
/// # Panics
///
/// Panics if `client_models` has fewer than `c_total` entries or
/// `c_total == 0`.
pub fn upper_bound_sampled<R: Rng + ?Sized>(
    rng: &mut R,
    client_models: &[&[f32]],
    x: &[f32],
    c_total: usize,
    trials: usize,
) -> f64 {
    assert!(c_total > 0, "subset size must be positive");
    assert!(
        client_models.len() >= c_total,
        "need at least {c_total} client models, got {}",
        client_models.len()
    );
    let mut indices: Vec<usize> = (0..client_models.len()).collect();
    let mut best: f64 = 0.0;
    for _ in 0..trials.max(1) {
        indices.shuffle(rng);
        let subset: Vec<&[f32]> = indices[..c_total]
            .iter()
            .map(|&i| client_models[i])
            .collect();
        best = best.max(estimation_error(&subset, x));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_flagging_of_identical_models_measures_distance() {
        let x = vec![1.0f32, 1.0];
        let model = vec![0.0f32, 0.0];
        let err = estimation_error(&[&model, &model], &x);
        assert!((err - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_scales_with_parameters() {
        let d1 = vec![1.0f32, 0.0];
        let d2 = vec![1.0f32, 0.0];
        let deltas: Vec<&[f32]> = vec![&d1, &d2];
        // ‖Σ‖ = 2; p=1, |C|=2, b=1 → 1.0
        let lb = lower_bound(&deltas, 1.0, 2, 1.0);
        assert!((lb - 1.0).abs() < 1e-9);
        // Lower precision p increases the bound.
        assert!(lower_bound(&deltas, 0.5, 2, 1.0) > lb);
        // Smaller b increases the bound (paper observation 2).
        assert!(lower_bound(&deltas, 1.0, 2, 0.9) > lb);
    }

    #[test]
    fn sandwich_holds_in_a_synthetic_setting() {
        // Models scattered around X; flagged set = the two closest.
        let x = vec![0.0f32; 4];
        let m1 = vec![0.1f32; 4];
        let m2 = vec![-0.1f32; 4];
        let m3 = vec![5.0f32; 4];
        let m4 = vec![-5.0f32; 4];
        let all: Vec<&[f32]> = vec![&m1, &m2, &m3, &m4];
        let err = estimation_error(&[&m1, &m2], &x);
        let mut rng = StdRng::seed_from_u64(0);
        let ub = upper_bound_sampled(&mut rng, &all, &x, 2, 200);
        assert!(err <= ub + 1e-9, "err={err} ub={ub}");
    }

    #[test]
    fn upper_bound_grows_with_trials() {
        let x = vec![0.0f32; 2];
        let models: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, -(i as f32)]).collect();
        let refs: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let few = upper_bound_sampled(&mut rng, &refs, &x, 3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let many = upper_bound_sampled(&mut rng, &refs, &x, 3, 500);
        assert!(many >= few);
    }

    #[test]
    #[should_panic(expected = "precision must be")]
    fn rejects_bad_precision() {
        let d = vec![1.0f32];
        let _ = lower_bound(&[&d], 0.0, 1, 1.0);
    }
}
