//! Theorem 2: the global model converges into a bounded region around X.
//!
//! For a compromised client `c` participating at round `t'` with delta
//! `Δθ_c^{t'} = ψ_c^{t'}(X − θ^{t'})`:
//!
//! `‖θ^t − X‖₂ ≤ (1/a − 1)·‖Δθ_c^{t'}‖₂ + ‖ζ‖₂`   (Eq. 6)
//!
//! As training converges, `‖Δθ_c^{t'}‖₂` shrinks and the global model is
//! pinned inside a small low-loss region around the Trojaned model — the
//! longevity property of Fig. 13.

use collapois_stats::geometry::{l2_distance, l2_norm};

/// Eq. 6's right-hand side: the bound on `‖θ^t − X‖₂`.
///
/// # Panics
///
/// Panics unless `0 < a ≤ 1` and `zeta_norm ≥ 0`.
pub fn theorem2_bound(malicious_delta_norm: f64, a: f64, zeta_norm: f64) -> f64 {
    assert!(0.0 < a && a <= 1.0, "a must be in (0, 1]");
    assert!(zeta_norm >= 0.0, "zeta norm must be non-negative");
    (1.0 / a - 1.0) * malicious_delta_norm + zeta_norm
}

/// One point of a measured trajectory check: the actual distance, the bound
/// and whether the bound holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundCheck {
    /// Measured `‖θ^t − X‖₂`.
    pub distance: f64,
    /// Theorem 2 bound computed from the last malicious delta.
    pub bound: f64,
    /// Whether `distance ≤ bound` (within a numerical slack).
    pub holds: bool,
}

/// Checks Theorem 2 against a measured state: `theta` (current global), `x`
/// (Trojaned model), the most recent malicious delta from a compromised
/// client, the rate floor `a`, and the residual `zeta` (the benign drift
/// accumulated since that client last participated).
///
/// # Panics
///
/// Panics on dimension mismatch or invalid `a`.
pub fn check_bound(
    theta: &[f32],
    x: &[f32],
    last_malicious_delta: &[f32],
    a: f64,
    zeta: &[f32],
) -> BoundCheck {
    let distance = l2_distance(theta, x);
    let bound = theorem2_bound(l2_norm(last_malicious_delta), a, l2_norm(zeta));
    BoundCheck {
        distance,
        bound,
        holds: distance <= bound * (1.0 + 1e-9) + 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_shrinks_with_larger_a() {
        let b_small_a = theorem2_bound(1.0, 0.5, 0.0);
        let b_large_a = theorem2_bound(1.0, 0.9, 0.0);
        assert!(b_large_a < b_small_a);
        // a = 1 (ψ deterministic 1): distance bounded purely by ζ.
        assert_eq!(theorem2_bound(5.0, 1.0, 0.25), 0.25);
    }

    #[test]
    fn bound_holds_for_exact_dynamics() {
        // One-shot dynamics: θ^{t} = θ^{t'} + Δ, Δ = ψ(X − θ^{t'}), ζ = 0.
        // Then ‖θ − X‖ = (1 − ψ)‖X − θ^{t'}‖ = (1/ψ − 1)‖Δ‖ ≤ (1/a − 1)‖Δ‖.
        let theta_prev = vec![0.0f32; 4];
        let x = vec![1.0f32; 4];
        let psi = 0.93f32;
        let a = 0.9;
        let delta: Vec<f32> = x
            .iter()
            .zip(&theta_prev)
            .map(|(xv, tv)| psi * (xv - tv))
            .collect();
        let theta: Vec<f32> = theta_prev.iter().zip(&delta).map(|(t, d)| t + d).collect();
        let check = check_bound(&theta, &x, &delta, a, &[0.0; 4]);
        assert!(
            check.holds,
            "distance {} bound {}",
            check.distance, check.bound
        );
        // The bound is tight when ψ = a.
        let delta_a: Vec<f32> = x
            .iter()
            .zip(&theta_prev)
            .map(|(xv, tv)| (a as f32) * (xv - tv))
            .collect();
        let theta_a: Vec<f32> = theta_prev
            .iter()
            .zip(&delta_a)
            .map(|(t, d)| t + d)
            .collect();
        let check = check_bound(&theta_a, &x, &delta_a, a, &[0.0; 4]);
        assert!((check.distance - check.bound).abs() < 1e-6);
    }

    #[test]
    fn violated_bound_is_reported() {
        let theta = vec![10.0f32; 4];
        let x = vec![0.0f32; 4];
        let check = check_bound(&theta, &x, &[0.01; 4], 0.9, &[0.0; 4]);
        assert!(!check.holds);
    }

    #[test]
    #[should_panic(expected = "a must be in")]
    fn rejects_bad_a() {
        let _ = theorem2_bound(1.0, 0.0, 0.0);
    }
}
