//! Theorem 1: minimum number of compromised clients.
//!
//! With benign-gradient angles `β_i ~ N(μ_α, σ²)` against the aggregated
//! malicious direction and dynamic rates `ψ_c ~ U[a, b]`, poisoning succeeds
//! in a round (worst case) when
//!
//! `|C| ≥ (2 − σ² − μ_α²) / (a + b + 2 − σ² − μ_α²) · |N|`   (Eq. 5)
//!
//! Larger `μ_α`/`σ` (more diverse local data ⇒ more scattered benign
//! gradients) shrink the requirement — the paper's central connection
//! between non-IIDness, attack cost and stealth (Fig. 5).

use collapois_stats::descriptive::{mean, std_dev};
use collapois_stats::hoeffding;

/// Estimated angle statistics `(μ_α, σ)` in radians.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AngleStats {
    /// Mean angle μ_α between benign gradients and the aggregated malicious
    /// direction.
    pub mu: f64,
    /// Standard deviation σ of those angles.
    pub sigma: f64,
    /// Number of angle samples used.
    pub n: usize,
}

/// Estimates `(μ_α, σ)` from angle samples (radians).
pub fn estimate_angle_stats(angles: &[f64]) -> AngleStats {
    AngleStats {
        mu: mean(angles),
        sigma: std_dev(angles),
        n: angles.len(),
    }
}

/// Eq. 5: the lower bound on `|C|` (as a real number of clients; callers
/// typically `ceil()` it). Returns 0 when `2 − σ² − μ² ≤ 0` — gradients so
/// scattered that any coordinated set succeeds in the worst-case model.
///
/// # Panics
///
/// Panics unless `0 < a < b ≤ 1` and `n > 0`.
pub fn theorem1_bound(mu: f64, sigma: f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(
        0.0 < a && a < b && b <= 1.0,
        "psi range must satisfy 0 < a < b <= 1"
    );
    assert!(n > 0, "need at least one client");
    let num = 2.0 - sigma * sigma - mu * mu;
    if num <= 0.0 {
        return 0.0;
    }
    num / (a + b + num) * n as f64
}

/// The attacker's estimate of the bound from its own angle samples, with
/// the Hoeffding-style confidence band used for Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundEstimate {
    /// Point estimate of the `|C|` lower bound.
    pub bound: f64,
    /// Bound recomputed at the Hoeffding-perturbed `(μ+ε, σ)` (lower β²).
    pub bound_low: f64,
    /// Bound recomputed at the Hoeffding-perturbed `(μ−ε, σ)` (higher β²).
    pub bound_high: f64,
    /// Relative approximation error `|Ĉ − C| / C` against a reference
    /// computed from `reference` angle statistics.
    pub relative_error: f64,
}

/// Estimates the `|C|` bound from the attacker's `sampled` angles and
/// reports the relative approximation error against the `reference` (ground
/// truth) angles, with confidence `1 − delta`.
///
/// # Panics
///
/// Panics on the same conditions as [`theorem1_bound`], or if either sample
/// is empty.
pub fn estimate_bound(
    sampled: &[f64],
    reference: &[f64],
    a: f64,
    b: f64,
    n: usize,
    delta: f64,
) -> BoundEstimate {
    assert!(
        !sampled.is_empty() && !reference.is_empty(),
        "need angle samples"
    );
    let s = estimate_angle_stats(sampled);
    let r = estimate_angle_stats(reference);
    let bound = theorem1_bound(s.mu, s.sigma, a, b, n);
    let truth = theorem1_bound(r.mu, r.sigma, a, b, n);
    // Hoeffding deviation of the mean angle (angles live in [0, π]).
    let eps = hoeffding::deviation(sampled.len(), 0.0, std::f64::consts::PI, delta);
    let bound_low = theorem1_bound((s.mu + eps).min(std::f64::consts::PI), s.sigma, a, b, n);
    let bound_high = theorem1_bound((s.mu - eps).max(0.0), s.sigma, a, b, n);
    let relative_error = if truth.abs() < 1e-12 {
        (bound - truth).abs()
    } else {
        ((bound - truth) / truth).abs()
    };
    BoundEstimate {
        bound,
        bound_low,
        bound_high,
        relative_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_with_scatter() {
        let n = 1000;
        let tight = theorem1_bound(0.1, 0.1, 0.9, 1.0, n);
        let loose = theorem1_bound(1.0, 0.5, 0.9, 1.0, n);
        assert!(
            loose < tight,
            "more scatter must need fewer clients: {loose} vs {tight}"
        );
    }

    #[test]
    fn bound_is_monotone_in_mu_and_sigma() {
        let n = 100;
        let mut prev = f64::INFINITY;
        for mu in [0.1, 0.4, 0.8, 1.2] {
            let b = theorem1_bound(mu, 0.2, 0.9, 1.0, n);
            assert!(b <= prev);
            prev = b;
        }
        let mut prev = f64::INFINITY;
        for sigma in [0.05, 0.2, 0.5, 1.0] {
            let b = theorem1_bound(0.5, sigma, 0.9, 1.0, n);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn bound_within_zero_and_n() {
        for mu in [0.0, 0.5, 1.0, 1.5] {
            for sigma in [0.0, 0.3, 0.8] {
                let b = theorem1_bound(mu, sigma, 0.9, 1.0, 500);
                assert!((0.0..=500.0).contains(&b), "mu={mu} sigma={sigma}: {b}");
            }
        }
    }

    #[test]
    fn extreme_scatter_needs_no_clients() {
        // 2 − σ² − μ² ≤ 0.
        assert_eq!(theorem1_bound(1.5, 0.5, 0.9, 1.0, 100), 0.0);
    }

    #[test]
    fn iid_limit_approaches_half() {
        // μ = σ = 0 (perfectly aligned benign gradients): bound → 2/(a+b+2),
        // with a=b=1 that's 1/2 of N — a majority-style requirement.
        let b = theorem1_bound(0.0, 0.0, 0.999, 1.0, 1000);
        assert!((b - 2.0 / (0.999 + 1.0 + 2.0) * 1000.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_matches_reference_for_identical_samples() {
        let angles: Vec<f64> = (0..200).map(|i| 0.5 + 0.001 * (i % 10) as f64).collect();
        let est = estimate_bound(&angles, &angles, 0.9, 1.0, 100, 0.05);
        assert!(est.relative_error < 1e-12);
        assert!(est.bound_low <= est.bound && est.bound <= est.bound_high);
    }

    #[test]
    fn estimation_error_small_for_close_samples() {
        // Attacker sees a slightly shifted sample of the same distribution.
        let reference: Vec<f64> = (0..500)
            .map(|i| 0.8 + 0.1 * ((i % 20) as f64 / 20.0))
            .collect();
        let sampled: Vec<f64> = reference.iter().map(|a| a + 0.01).collect();
        let est = estimate_bound(&sampled, &reference, 0.9, 1.0, 1000, 0.05);
        assert!(est.relative_error < 0.05, "error {}", est.relative_error);
    }

    #[test]
    fn angle_stats_basics() {
        let s = estimate_angle_stats(&[1.0, 1.0, 1.0]);
        assert_eq!(s.mu, 1.0);
        assert_eq!(s.sigma, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    #[should_panic(expected = "psi range")]
    fn rejects_bad_psi() {
        let _ = theorem1_bound(0.5, 0.1, 1.0, 0.9, 10);
    }
}
