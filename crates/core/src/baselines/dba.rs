//! DBA — distributed backdoor attack [Xie et al., ICLR 2020].
//!
//! The global trigger is decomposed into four sub-patterns; compromised
//! client `i` poisons its local data with sub-pattern `i mod 4` only. At
//! inference time the attacker stamps the *composed* pattern. Like DPois,
//! each client still trains on its own non-IID data, so malicious deltas
//! scatter.

use super::{poisoned_local_delta, LocalTrainConfig};
use collapois_data::poison::with_poisoned_fraction;
use collapois_data::sample::Dataset;
use collapois_data::trigger::DbaTrigger;
use collapois_fl::server::Adversary;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DBA adversary.
#[derive(Debug)]
pub struct DbaAttack {
    compromised: Vec<usize>,
    poisoned_data: Vec<Dataset>,
    scratch: Sequential,
    cfg: LocalTrainConfig,
}

impl DbaAttack {
    /// Builds the adversary: compromised client `k` (by position) poisons
    /// with sub-pattern `k mod 4` of `trigger`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or any dataset is empty.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's attack parameterization
    pub fn new(
        compromised: Vec<usize>,
        local_data: &[Dataset],
        trigger: &DbaTrigger,
        target_class: usize,
        poison_fraction: f64,
        spec: &ModelSpec,
        cfg: LocalTrainConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            compromised.len(),
            local_data.len(),
            "one dataset per compromised client"
        );
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let poisoned_data: Vec<Dataset> = local_data
            .iter()
            .enumerate()
            .map(|(k, d)| {
                assert!(!d.is_empty(), "compromised client has no data");
                let sub = trigger.part(k);
                with_poisoned_fraction(&mut rng, d, sub, target_class, poison_fraction)
            })
            .collect();
        let scratch = spec.build(&mut rng);
        Self {
            compromised,
            poisoned_data,
            scratch,
            cfg,
        }
    }
}

impl Adversary for DbaAttack {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let idx = self
            .compromised
            .iter()
            .position(|&c| c == client_id)
            .unwrap_or_else(|| panic!("client {client_id} is not compromised"));
        let data = &self.poisoned_data[idx];
        poisoned_local_delta(&mut self.scratch, global, data, &self.cfg, rng)
    }

    fn name(&self) -> &'static str {
        "dba"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};

    #[test]
    fn clients_poison_with_distinct_subpatterns() {
        let data = SyntheticImage::new(SyntheticImageConfig {
            side: 12,
            classes: 3,
            samples: 30,
            noise: 0.0,
            max_shift: 0,
            ..Default::default()
        })
        .generate();
        let trigger = DbaTrigger::new(12, 2, 1.0);
        let spec = ModelSpec::mlp(144, &[8], 3);
        let adv = DbaAttack::new(
            vec![0, 1],
            &[data.clone(), data.clone()],
            &trigger,
            0,
            1.0,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        // The two clients' poisoned sets must contain different patterns:
        // compare the poisoned halves (appended after the 30 clean samples).
        let p0 = adv.poisoned_data[0].features_of(30);
        let p1 = adv.poisoned_data[1].features_of(30);
        assert_ne!(p0, p1, "sub-patterns must differ between clients");
        // Poisoned labels are the target class.
        assert_eq!(adv.poisoned_data[0].label_of(30), 0);
    }

    #[test]
    fn crafts_updates() {
        let data = SyntheticImage::new(SyntheticImageConfig {
            side: 12,
            classes: 3,
            samples: 30,
            ..Default::default()
        })
        .generate();
        let trigger = DbaTrigger::new(12, 2, 1.0);
        let spec = ModelSpec::mlp(144, &[8], 3);
        let mut adv = DbaAttack::new(
            vec![5],
            &[data],
            &trigger,
            0,
            0.5,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let global = {
            let mut r = StdRng::seed_from_u64(3);
            spec.build(&mut r).params()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let delta = adv.craft_update(5, &global, 0, &mut rng);
        assert_eq!(delta.len(), global.len());
        assert!(delta.iter().any(|&d| d != 0.0));
        assert_eq!(adv.name(), "dba");
    }
}
