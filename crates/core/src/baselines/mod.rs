//! Baseline attacks the paper compares CollaPois against (§II-B, §V).

mod dba;
mod dpois;
mod lflip;
mod mrepl;
mod semantic;

pub use dba::DbaAttack;
pub use dpois::DPois;
pub use lflip::LabelFlip;
pub use mrepl::MRepl;
pub use semantic::SemanticAttack;

use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_nn::optim::Sgd;
use rand::rngs::StdRng;

/// Hyper-parameters for the local training steps malicious clients run in
/// the DPois / MRepl / DBA baselines (these attacks, unlike CollaPois, must
/// train on poisoned data every round — the paper's *Efficiency* argument).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTrainConfig {
    /// Minibatch-SGD steps per round.
    pub steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        Self {
            steps: 4,
            batch_size: 16,
            lr: 0.05,
        }
    }
}

/// Trains `model` from `global` on `data` and returns `θ_local − θ_global`.
pub(crate) fn poisoned_local_delta(
    model: &mut Sequential,
    global: &[f32],
    data: &Dataset,
    cfg: &LocalTrainConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    assert!(!data.is_empty(), "malicious client has no data");
    model.set_params(global);
    let mut opt = Sgd::new(cfg.lr);
    for _ in 0..cfg.steps {
        let (x, y) = data.minibatch(rng, cfg.batch_size);
        model.train_batch(&x, &y, &mut opt);
    }
    model
        .params()
        .iter()
        .zip(global)
        .map(|(l, g)| l - g)
        .collect()
}
