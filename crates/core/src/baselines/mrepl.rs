//! MRepl — model replacement [Bagdasaryan et al., AISTATS 2020].
//!
//! The attacker trains a Trojaned model locally and submits a **boosted**
//! delta so that, after averaging, the aggregated model is (approximately)
//! replaced by the Trojaned one in a single round:
//!
//! `Δθ_c = boost · (X_local − θ^t)`, `boost ≈ |S_t| / (λ·m)`.
//!
//! The boost causes the abrupt utility shifts the paper uses to tell MRepl
//! apart from CollaPois (Fig. 13: "Benign AC raises from 39.21 % to 74.11 %
//! in one round").

use super::{poisoned_local_delta, LocalTrainConfig};
use collapois_data::poison::with_poisoned_fraction;
use collapois_data::sample::Dataset;
use collapois_data::trigger::Trigger;
use collapois_fl::server::Adversary;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The MRepl adversary.
#[derive(Debug)]
pub struct MRepl {
    compromised: Vec<usize>,
    poisoned_data: Vec<Dataset>,
    scratch: Sequential,
    cfg: LocalTrainConfig,
    boost: f64,
}

impl MRepl {
    /// Builds the adversary. `boost` is the replacement scaling factor
    /// (`expected sampled clients / (server_lr · expected malicious)` for
    /// full replacement).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, any dataset is empty, or `boost <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        compromised: Vec<usize>,
        local_data: &[Dataset],
        trigger: &dyn Trigger,
        target_class: usize,
        poison_fraction: f64,
        spec: &ModelSpec,
        cfg: LocalTrainConfig,
        boost: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(
            compromised.len(),
            local_data.len(),
            "one dataset per compromised client"
        );
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        assert!(boost > 0.0, "boost must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let poisoned_data: Vec<Dataset> = local_data
            .iter()
            .map(|d| {
                assert!(!d.is_empty(), "compromised client has no data");
                with_poisoned_fraction(&mut rng, d, trigger, target_class, poison_fraction)
            })
            .collect();
        let scratch = spec.build(&mut rng);
        Self {
            compromised,
            poisoned_data,
            scratch,
            cfg,
            boost,
        }
    }

    /// The boost factor.
    pub fn boost(&self) -> f64 {
        self.boost
    }
}

impl Adversary for MRepl {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let idx = self
            .compromised
            .iter()
            .position(|&c| c == client_id)
            .unwrap_or_else(|| panic!("client {client_id} is not compromised"));
        let data = &self.poisoned_data[idx];
        let mut delta = poisoned_local_delta(&mut self.scratch, global, data, &self.cfg, rng);
        let boost = self.boost as f32;
        for d in &mut delta {
            *d *= boost;
        }
        delta
    }

    fn name(&self) -> &'static str {
        "mrepl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_data::trigger::PatchTrigger;
    use collapois_stats::geometry::l2_norm;

    #[test]
    fn boost_scales_the_update() {
        let data = SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 60,
            ..Default::default()
        })
        .generate();
        let spec = ModelSpec::mlp(64, &[16], 3);
        let trigger = PatchTrigger::badnets(8);
        let global = {
            let mut r = StdRng::seed_from_u64(5);
            spec.build(&mut r).params()
        };
        let make = |boost: f64| {
            MRepl::new(
                vec![0],
                std::slice::from_ref(&data),
                &trigger,
                0,
                0.5,
                &spec,
                LocalTrainConfig::default(),
                boost,
                7,
            )
        };
        let mut small = make(1.0);
        let mut big = make(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let d1 = small.craft_update(0, &global, 0, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let d10 = big.craft_update(0, &global, 0, &mut rng);
        assert!((l2_norm(&d10) / l2_norm(&d1) - 10.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "boost must be positive")]
    fn rejects_bad_boost() {
        let data = SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 30,
            ..Default::default()
        })
        .generate();
        let spec = ModelSpec::mlp(64, &[16], 3);
        let trigger = PatchTrigger::badnets(8);
        let _ = MRepl::new(
            vec![0],
            &[data],
            &trigger,
            0,
            0.5,
            &spec,
            LocalTrainConfig::default(),
            0.0,
            7,
        );
    }
}
