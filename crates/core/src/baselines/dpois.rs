//! DPois — classical data poisoning [Suciu et al. 2018; Li et al. 2016].
//!
//! Each compromised client trains locally on its own data augmented with
//! trigger-stamped, target-relabelled copies, and submits the resulting
//! delta. Because each local Trojaned model depends on the client's own
//! (non-IID) data, the malicious deltas scatter just like benign ones
//! (Fig. 3b) — the weakness CollaPois removes.

use super::{poisoned_local_delta, LocalTrainConfig};
use collapois_data::poison::with_poisoned_fraction;
use collapois_data::sample::Dataset;
use collapois_data::trigger::Trigger;
use collapois_fl::server::Adversary;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DPois adversary.
#[derive(Debug)]
pub struct DPois {
    compromised: Vec<usize>,
    poisoned_data: Vec<Dataset>,
    scratch: Sequential,
    cfg: LocalTrainConfig,
}

impl DPois {
    /// Builds the adversary: each compromised client's training set is
    /// augmented with `poison_fraction` trigger-stamped samples relabelled
    /// to `target_class`.
    ///
    /// # Panics
    ///
    /// Panics if `compromised` and `local_data` lengths differ, or any
    /// client's data is empty.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's attack parameterization
    pub fn new(
        compromised: Vec<usize>,
        local_data: &[Dataset],
        trigger: &dyn Trigger,
        target_class: usize,
        poison_fraction: f64,
        spec: &ModelSpec,
        cfg: LocalTrainConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            compromised.len(),
            local_data.len(),
            "one dataset per compromised client"
        );
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let poisoned_data: Vec<Dataset> = local_data
            .iter()
            .map(|d| {
                assert!(!d.is_empty(), "compromised client has no data");
                with_poisoned_fraction(&mut rng, d, trigger, target_class, poison_fraction)
            })
            .collect();
        let scratch = spec.build(&mut rng);
        Self {
            compromised,
            poisoned_data,
            scratch,
            cfg,
        }
    }

    fn index_of(&self, client_id: usize) -> usize {
        self.compromised
            .iter()
            .position(|&c| c == client_id)
            .unwrap_or_else(|| panic!("client {client_id} is not compromised"))
    }
}

impl Adversary for DPois {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let idx = self.index_of(client_id);
        let data = &self.poisoned_data[idx];
        poisoned_local_delta(&mut self.scratch, global, data, &self.cfg, rng)
    }

    fn name(&self) -> &'static str {
        "dpois"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_data::trigger::PatchTrigger;

    fn local_data() -> Dataset {
        let cfg = SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 60,
            ..Default::default()
        };
        SyntheticImage::new(cfg).generate()
    }

    #[test]
    fn crafts_nonzero_updates() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let trigger = PatchTrigger::badnets(8);
        let data = local_data();
        let mut adv = DPois::new(
            vec![3],
            &[data],
            &trigger,
            0,
            0.5,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let global = {
            let mut r = StdRng::seed_from_u64(2);
            spec.build(&mut r).params()
        };
        let delta = adv.craft_update(3, &global, 0, &mut rng);
        assert_eq!(delta.len(), global.len());
        assert!(delta.iter().any(|&d| d != 0.0));
        assert_eq!(adv.compromised(), &[3]);
        assert_eq!(adv.name(), "dpois");
    }

    #[test]
    #[should_panic(expected = "is not compromised")]
    fn rejects_unknown_client() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let trigger = PatchTrigger::badnets(8);
        let mut adv = DPois::new(
            vec![3],
            &[local_data()],
            &trigger,
            0,
            0.5,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let _ = adv.craft_update(7, &[0.0; 10], 0, &mut rng);
    }
}
