//! Semantic backdoor — relabelling a natural feature-space region
//! [Bagdasaryan et al., AISTATS 2020's "green cars" family].
//!
//! Each compromised client trains on a copy of its own shard in which every
//! source-class sample inside the attacker's fitted [`SemanticRegion`] is
//! relabelled to the target class. No feature is ever perturbed: the
//! backdoor key is a naturally-occurring property of the data, so
//! inference-phase trigger detectors (which look for stamped patterns) have
//! nothing to find, and Attack SR is measured on *clean* in-region test
//! samples.

use super::{poisoned_local_delta, LocalTrainConfig};
use collapois_data::sample::Dataset;
use collapois_data::semantic::SemanticRegion;
use collapois_fl::server::Adversary;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The semantic-backdoor adversary.
#[derive(Debug)]
pub struct SemanticAttack {
    compromised: Vec<usize>,
    poisoned_data: Vec<Dataset>,
    scratch: Sequential,
    cfg: LocalTrainConfig,
}

impl SemanticAttack {
    /// Builds the adversary: each compromised client's training set is its
    /// local shard with in-region source-class samples relabelled via
    /// [`SemanticRegion::relabel`].
    ///
    /// # Panics
    ///
    /// Panics if `compromised` and `local_data` lengths differ, the
    /// compromised set is empty, or any client's data is empty.
    pub fn new(
        compromised: Vec<usize>,
        local_data: &[Dataset],
        region: &SemanticRegion,
        spec: &ModelSpec,
        cfg: LocalTrainConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            compromised.len(),
            local_data.len(),
            "one dataset per compromised client"
        );
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        let poisoned_data: Vec<Dataset> = local_data
            .iter()
            .map(|d| {
                assert!(!d.is_empty(), "compromised client has no data");
                region.relabel(d).0
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let scratch = spec.build(&mut rng);
        Self {
            compromised,
            poisoned_data,
            scratch,
            cfg,
        }
    }

    fn index_of(&self, client_id: usize) -> usize {
        self.compromised
            .iter()
            .position(|&c| c == client_id)
            .unwrap_or_else(|| panic!("client {client_id} is not compromised"))
    }
}

impl Adversary for SemanticAttack {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let idx = self.index_of(client_id);
        let data = &self.poisoned_data[idx];
        poisoned_local_delta(&mut self.scratch, global, data, &self.cfg, rng)
    }

    fn name(&self) -> &'static str {
        "semantic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};

    fn local_data() -> Dataset {
        SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 90,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn crafts_nonzero_updates_without_touching_features() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let data = local_data();
        let region = SemanticRegion::fit(&data, 1, 0, 0.5, 7);
        let (poisoned, flipped) = region.relabel(&data);
        assert!(flipped > 0, "the fitted region must capture samples");
        for i in 0..data.len() {
            assert_eq!(poisoned.features_of(i), data.features_of(i));
        }
        let mut adv = SemanticAttack::new(
            vec![3],
            &[data],
            &region,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let global = {
            let mut r = StdRng::seed_from_u64(2);
            spec.build(&mut r).params()
        };
        let delta = adv.craft_update(3, &global, 0, &mut rng);
        assert_eq!(delta.len(), global.len());
        assert!(delta.iter().any(|&d| d != 0.0));
        assert_eq!(adv.name(), "semantic");
    }

    #[test]
    #[should_panic(expected = "is not compromised")]
    fn rejects_unknown_client() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let data = local_data();
        let region = SemanticRegion::fit(&data, 1, 0, 0.5, 7);
        let mut adv = SemanticAttack::new(
            vec![3],
            &[data],
            &region,
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let _ = adv.craft_update(9, &[0.0; 10], 0, &mut rng);
    }
}
