//! Label flipping — the classic untargeted Byzantine data-poisoning
//! baseline [Biggio et al. 2012; Fang et al. 2020].
//!
//! Each compromised client trains on its own local data with every label
//! `y` flipped to `classes − 1 − y` and submits the resulting delta. The
//! attack carries no trigger and no target class: its goal is indiscriminate
//! accuracy damage, which makes it the canonical workload for exercising
//! Byzantine-robust aggregators (Krum, trimmed mean, median) in the grid
//! matrix — a defense that survives CollaPois but folds under plain label
//! flipping has a screening rule, not a robustness guarantee.

use super::{poisoned_local_delta, LocalTrainConfig};
use collapois_data::poison::flip_labels;
use collapois_data::sample::Dataset;
use collapois_fl::server::Adversary;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The label-flipping adversary.
#[derive(Debug)]
pub struct LabelFlip {
    compromised: Vec<usize>,
    flipped_data: Vec<Dataset>,
    scratch: Sequential,
    cfg: LocalTrainConfig,
}

impl LabelFlip {
    /// Builds the adversary: each compromised client's training set is a
    /// fully label-flipped copy of its local data.
    ///
    /// # Panics
    ///
    /// Panics if `compromised` and `local_data` lengths differ, the
    /// compromised set is empty, or any client's data is empty.
    pub fn new(
        compromised: Vec<usize>,
        local_data: &[Dataset],
        spec: &ModelSpec,
        cfg: LocalTrainConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            compromised.len(),
            local_data.len(),
            "one dataset per compromised client"
        );
        assert!(
            !compromised.is_empty(),
            "need at least one compromised client"
        );
        let flipped_data: Vec<Dataset> = local_data
            .iter()
            .map(|d| {
                assert!(!d.is_empty(), "compromised client has no data");
                flip_labels(d)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let scratch = spec.build(&mut rng);
        Self {
            compromised,
            flipped_data,
            scratch,
            cfg,
        }
    }

    fn index_of(&self, client_id: usize) -> usize {
        self.compromised
            .iter()
            .position(|&c| c == client_id)
            .unwrap_or_else(|| panic!("client {client_id} is not compromised"))
    }
}

impl Adversary for LabelFlip {
    fn compromised(&self) -> &[usize] {
        &self.compromised
    }

    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        _round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let idx = self.index_of(client_id);
        let data = &self.flipped_data[idx];
        poisoned_local_delta(&mut self.scratch, global, data, &self.cfg, rng)
    }

    fn name(&self) -> &'static str {
        "label-flip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};

    fn local_data() -> Dataset {
        SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 60,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn crafts_nonzero_updates() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let data = local_data();
        let mut adv = LabelFlip::new(vec![5], &[data], &spec, LocalTrainConfig::default(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        let global = {
            let mut r = StdRng::seed_from_u64(2);
            spec.build(&mut r).params()
        };
        let delta = adv.craft_update(5, &global, 0, &mut rng);
        assert_eq!(delta.len(), global.len());
        assert!(delta.iter().any(|&d| d != 0.0));
        assert_eq!(adv.compromised(), &[5]);
        assert_eq!(adv.name(), "label-flip");
    }

    #[test]
    #[should_panic(expected = "is not compromised")]
    fn rejects_unknown_client() {
        let spec = ModelSpec::mlp(64, &[16], 3);
        let mut adv = LabelFlip::new(
            vec![5],
            &[local_data()],
            &spec,
            LocalTrainConfig::default(),
            0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let _ = adv.craft_update(2, &[0.0; 10], 0, &mut rng);
    }
}
