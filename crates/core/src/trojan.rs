//! Training the Trojaned model X (Eq. 1, Algorithm 1 line 3).
//!
//! The attacker pools the compromised clients' data into the auxiliary set
//! `D_a`, stamps the trigger onto a copy with labels flipped to the target
//! class (`D_a^Troj`), and trains X centrally on `D_a ∪ D_a^Troj`:
//!
//! `X = argmin_θ L(θ, D_a ∪ D_a^Troj)`
//!
//! X behaves like a clean model on legitimate inputs (high utility — the
//! stealth property of §IV-D) while classifying triggered inputs as the
//! target class.

use collapois_data::poison::poison_all;
use collapois_data::sample::Dataset;
use collapois_data::trigger::Trigger;
use collapois_nn::optim::Sgd;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters for centrally training the Trojaned model X.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrojanConfig {
    /// Training epochs over `D_a ∪ D_a^Troj`.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// The attacker's target class `y^Troj` (the paper uses class 0).
    pub target_class: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrojanConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 32,
            lr: 0.1,
            target_class: 0,
            seed: 0xA77AC,
        }
    }
}

/// Outcome of Trojan training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrojanedModel {
    /// Flat parameters of X.
    pub params: Vec<f32>,
    /// Accuracy of X on the clean auxiliary data.
    pub clean_accuracy: f64,
    /// Backdoor success rate of X on the poisoned auxiliary data.
    pub trigger_success: f64,
}

/// Trains the Trojaned model X on `aux ∪ poison(aux)` (Eq. 1).
///
/// # Panics
///
/// Panics if `aux` is empty or the target class is out of range.
pub fn train_trojan(
    spec: &ModelSpec,
    aux: &Dataset,
    trigger: &dyn Trigger,
    cfg: &TrojanConfig,
) -> TrojanedModel {
    assert!(!aux.is_empty(), "auxiliary dataset is empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = spec.build(&mut rng);
    let poisoned = poison_all(aux, trigger, cfg.target_class);
    let mut train = aux.clone();
    train.extend_from(&poisoned);

    let mut opt = Sgd::new(cfg.lr).with_momentum(0.9);
    let steps_per_epoch = train.len().div_ceil(cfg.batch_size).max(1);
    for _ in 0..cfg.epochs {
        for _ in 0..steps_per_epoch {
            let (x, y) = train.minibatch(&mut rng, cfg.batch_size);
            model.train_batch(&x, &y, &mut opt);
        }
    }

    let (cx, cy) = aux.as_batch();
    let clean_accuracy = model.evaluate(&cx, &cy);
    let (px, py) = poisoned.as_batch();
    let trigger_success = model.evaluate(&px, &py);
    TrojanedModel {
        params: model.params(),
        clean_accuracy,
        trigger_success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_data::trigger::WaNetTrigger;

    #[test]
    fn trojan_learns_both_tasks() {
        let img_cfg = SyntheticImageConfig {
            side: 12,
            classes: 4,
            samples: 240,
            noise: 0.05,
            max_shift: 1,
            seed: 1,
        };
        let aux = SyntheticImage::new(img_cfg).generate();
        let trigger = WaNetTrigger::new(12, 4, 3.0, 99);
        let spec = ModelSpec::mlp(144, &[48], 4);
        let cfg = TrojanConfig {
            epochs: 40,
            ..Default::default()
        };
        let x = train_trojan(&spec, &aux, &trigger, &cfg);
        assert!(
            x.clean_accuracy > 0.85,
            "X must stay accurate on clean data: {}",
            x.clean_accuracy
        );
        assert!(
            x.trigger_success > 0.85,
            "X must learn the trigger: {}",
            x.trigger_success
        );
    }

    #[test]
    fn trojan_training_is_deterministic() {
        let img_cfg = SyntheticImageConfig {
            side: 8,
            classes: 3,
            samples: 60,
            ..Default::default()
        };
        let aux = SyntheticImage::new(img_cfg).generate();
        let trigger = WaNetTrigger::new(8, 4, 3.0, 1);
        let spec = ModelSpec::mlp(64, &[16], 3);
        let cfg = TrojanConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = train_trojan(&spec, &aux, &trigger, &cfg);
        let b = train_trojan(&spec, &aux, &trigger, &cfg);
        assert_eq!(a.params, b.params);
    }

    #[test]
    #[should_panic(expected = "auxiliary dataset is empty")]
    fn rejects_empty_aux() {
        let aux = Dataset::empty(&[1, 8, 8], 3);
        let trigger = WaNetTrigger::new(8, 4, 3.0, 1);
        let spec = ModelSpec::mlp(64, &[16], 3);
        let _ = train_trojan(&spec, &aux, &trigger, &TrojanConfig::default());
    }
}
