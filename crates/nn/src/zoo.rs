//! Model architectures used by the paper's experiments.
//!
//! The paper adopts the configuration of Shamsian et al. [4]: a LeNet-based
//! network (two convolution + two fully connected layers) for image clients
//! and a small fully connected head over frozen BERT embeddings for the
//! Sentiment dataset. [`ModelSpec`] captures an architecture as data so that
//! hundreds of simulated clients can instantiate identical models cheaply
//! and deterministically.

use crate::layer::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
use crate::model::Sequential;
use rand::Rng;

/// A serializable description of a model architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// Multi-layer perceptron over flat feature vectors.
    Mlp {
        /// Input feature dimension.
        input: usize,
        /// Hidden layer widths (ReLU between all layers).
        hidden: Vec<usize>,
        /// Number of output classes.
        classes: usize,
    },
    /// LeNet-style CNN: conv(k) → ReLU → pool2 → conv(k) → ReLU → pool2 →
    /// flatten → dense → ReLU → dense.
    LeNet {
        /// Input channels (1 for grayscale).
        channels: usize,
        /// Square input side length (e.g. 28).
        side: usize,
        /// Channels of the first and second conv layers.
        conv_channels: (usize, usize),
        /// Square convolution kernel size (LeNet uses 5).
        kernel: usize,
        /// Width of the penultimate dense layer.
        hidden: usize,
        /// Number of output classes.
        classes: usize,
    },
}

impl ModelSpec {
    /// Convenience constructor for an MLP.
    pub fn mlp(input: usize, hidden: &[usize], classes: usize) -> Self {
        Self::Mlp {
            input,
            hidden: hidden.to_vec(),
            classes,
        }
    }

    /// The paper's LeNet configuration for `side`×`side` grayscale images.
    pub fn lenet(side: usize, classes: usize) -> Self {
        Self::LeNet {
            channels: 1,
            side,
            conv_channels: (6, 16),
            kernel: 5,
            hidden: 64,
            classes,
        }
    }

    /// A small CNN (k = 3) usable on sides as small as 10 — the conv-path
    /// variant of the scenario models.
    pub fn small_cnn(side: usize, classes: usize) -> Self {
        Self::LeNet {
            channels: 1,
            side,
            conv_channels: (4, 8),
            kernel: 3,
            hidden: 32,
            classes,
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            Self::Mlp { classes, .. } | Self::LeNet { classes, .. } => *classes,
        }
    }

    /// Shape of a single (un-batched) input sample.
    pub fn input_shape(&self) -> Vec<usize> {
        match self {
            Self::Mlp { input, .. } => vec![*input],
            Self::LeNet { channels, side, .. } => vec![*channels, *side, *side],
        }
    }

    /// Instantiates the model with freshly initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if the LeNet geometry does not survive two conv+pool stages
    /// (side too small).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Sequential {
        match self {
            Self::Mlp {
                input,
                hidden,
                classes,
            } => {
                let mut m = Sequential::new();
                let mut prev = *input;
                for &h in hidden {
                    m = m
                        .push(Box::new(Dense::new(rng, prev, h)))
                        .push(Box::new(ReLU::new()));
                    prev = h;
                }
                m.push(Box::new(Dense::new(rng, prev, *classes)))
            }
            Self::LeNet {
                channels,
                side,
                conv_channels,
                kernel,
                hidden,
                classes,
            } => {
                let (c1, c2) = *conv_channels;
                let k = *kernel;
                let after_conv1 = side.checked_sub(k - 1).expect("lenet: side too small");
                let after_pool1 = after_conv1 / 2;
                let after_conv2 = after_pool1
                    .checked_sub(k - 1)
                    .expect("lenet: side too small");
                let after_pool2 = after_conv2 / 2;
                assert!(
                    after_pool2 > 0,
                    "lenet: side {side} too small for two conv+pool stages"
                );
                let flat = c2 * after_pool2 * after_pool2;
                Sequential::new()
                    .push(Box::new(Conv2d::new(rng, *channels, c1, k)))
                    .push(Box::new(ReLU::new()))
                    .push(Box::new(MaxPool2d::new(2)))
                    .push(Box::new(Conv2d::new(rng, c1, c2, k)))
                    .push(Box::new(ReLU::new()))
                    .push(Box::new(MaxPool2d::new(2)))
                    .push(Box::new(Flatten::new()))
                    .push(Box::new(Dense::new(rng, flat, *hidden)))
                    .push(Box::new(ReLU::new()))
                    .push(Box::new(Dense::new(rng, *hidden, *classes)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = ModelSpec::mlp(10, &[16, 8], 4);
        let mut m = spec.build(&mut rng);
        let out = m.forward(&Tensor::zeros(&[3, 10]), false);
        assert_eq!(out.shape(), &[3, 4]);
        assert_eq!(spec.classes(), 4);
        assert_eq!(spec.input_shape(), vec![10]);
    }

    #[test]
    fn lenet_shapes_28() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = ModelSpec::lenet(28, 10);
        let mut m = spec.build(&mut rng);
        let out = m.forward(&Tensor::zeros(&[2, 1, 28, 28]), false);
        assert_eq!(out.shape(), &[2, 10]);
        assert_eq!(spec.input_shape(), vec![1, 28, 28]);
    }

    #[test]
    fn identical_seeds_build_identical_models() {
        let spec = ModelSpec::mlp(6, &[5], 3);
        let a = spec.build(&mut StdRng::seed_from_u64(9)).params();
        let b = spec.build(&mut StdRng::seed_from_u64(9)).params();
        assert_eq!(a, b);
        let c = spec.build(&mut StdRng::seed_from_u64(10)).params();
        assert_ne!(a, c);
    }

    #[test]
    fn lenet_trains_on_tiny_task() {
        // Two trivially separable image classes: bright vs dark.
        let mut rng = StdRng::seed_from_u64(2);
        let spec = ModelSpec::LeNet {
            channels: 1,
            side: 16,
            conv_channels: (4, 8),
            kernel: 5,
            hidden: 16,
            classes: 2,
        };
        let mut m = spec.build(&mut rng);
        let n = 16;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let bright = i % 2 == 0;
            data.extend(std::iter::repeat_n(
                if bright { 0.9f32 } else { 0.1 },
                16 * 16,
            ));
            labels.push(if bright { 1usize } else { 0 });
        }
        let x = Tensor::from_vec(data, &[n, 1, 16, 16]);
        let mut opt = crate::optim::Sgd::new(0.05);
        for _ in 0..30 {
            m.train_batch(&x, &labels, &mut opt);
        }
        assert!(m.evaluate(&x, &labels) > 0.9);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn lenet_rejects_tiny_side() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = ModelSpec::lenet(8, 10).build(&mut rng);
    }
}
