//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer exposes its parameters and accumulated gradients through the
//! flat read/write interface used by [`crate::model::Sequential`] — the
//! representation all federated-learning aggregation in this workspace
//! operates on.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;

pub use activation::{ReLU, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::MaxPool2d;

use crate::tensor::Tensor;

/// A differentiable layer.
///
/// `forward` caches whatever the subsequent `backward` needs; `backward`
/// consumes the cache, **accumulates** parameter gradients internally, and
/// returns the gradient with respect to the layer input.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Forward pass. `train` controls caching (inference can skip it).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass; returns the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a `forward(_, train=true)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Copies the parameters into `out` (length must be `param_count()`).
    fn write_params(&self, _out: &mut [f32]) {}

    /// Loads parameters from `src` (length must be `param_count()`).
    fn read_params(&mut self, _src: &[f32]) {}

    /// Copies accumulated gradients into `out`.
    fn write_grads(&self, _out: &mut [f32]) {}

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {}

    /// Clones the layer (parameters included, caches excluded).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
