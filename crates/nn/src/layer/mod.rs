//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer exposes its parameters and accumulated gradients through the
//! flat read/write interface used by [`crate::model::Sequential`] — the
//! representation all federated-learning aggregation in this workspace
//! operates on.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;

pub use activation::{ReLU, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::MaxPool2d;

use crate::tensor::Tensor;

/// A differentiable layer.
///
/// `forward` caches whatever the subsequent `backward` needs; `backward`
/// consumes the cache, **accumulates** parameter gradients internally, and
/// returns the gradient with respect to the layer input.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Forward pass. `train` controls caching (inference can skip it).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass; returns the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a `forward(_, train=true)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// In-place forward pass: writes the layer output into `out`, resizing
    /// it as needed so its heap buffer is reused across minibatches.
    ///
    /// The default delegates to the allocating [`Layer::forward`]; layers on
    /// the zero-allocation training path override it (and implement
    /// `forward` in terms of it, so both entry points share one code path
    /// and stay bitwise identical).
    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        *out = self.forward(input, train);
    }

    /// In-place backward pass: writes the gradient w.r.t. the forward input
    /// into `grad_in`, resizing it as needed. Same caching contract and
    /// panics as [`Layer::backward`], which the default delegates to.
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        *grad_in = self.backward(grad_out);
    }

    /// Backward pass for the bottom-most layer of a network: accumulates
    /// this layer's parameter gradients exactly like
    /// [`Layer::backward_into`] but is allowed to skip the input-gradient
    /// computation, since no layer below exists to consume it. `scratch` is
    /// working space; its contents after the call are unspecified.
    ///
    /// The default computes the input gradient anyway (into `scratch`);
    /// layers whose input gradient is a significant cost (Dense) override
    /// it. Parameter gradients are identical either way, so skipping is
    /// invisible to training results.
    fn backward_head_into(&mut self, grad_out: &Tensor, scratch: &mut Tensor) {
        self.backward_into(grad_out, scratch);
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Copies the parameters into `out` (length must be `param_count()`).
    fn write_params(&self, _out: &mut [f32]) {}

    /// Loads parameters from `src` (length must be `param_count()`).
    fn read_params(&mut self, _src: &[f32]) {}

    /// Copies accumulated gradients into `out`.
    fn write_grads(&self, _out: &mut [f32]) {}

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {}

    /// Clones the layer (parameters included, caches excluded).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
