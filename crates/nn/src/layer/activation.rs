//! Element-wise activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)` element-wise.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    // Persistent mask buffer: `have_mask` gates validity so the heap
    // allocation is reused across training minibatches.
    mask: Vec<bool>,
    have_mask: bool,
    shape: Vec<usize>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::default();
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        out.copy_from(input);
        if train {
            self.mask.clear();
            self.shape.clear();
            self.shape.extend_from_slice(input.shape());
        }
        for v in out.data_mut() {
            let active = *v > 0.0;
            if !active {
                *v = 0.0;
            }
            if train {
                self.mask.push(active);
            }
        }
        if train {
            self.have_mask = true;
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert!(
            self.have_mask,
            "relu backward called without a training forward"
        );
        self.have_mask = false;
        assert_eq!(grad_out.len(), self.mask.len(), "relu grad shape mismatch");
        grad_in.resize_to(&self.shape);
        grad_in.data_mut().copy_from_slice(grad_out.data());
        for (v, &active) in grad_in.data_mut().iter_mut().zip(&self.mask) {
            if !active {
                *v = 0.0;
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    // Persistent cache buffer, validity gated by `cached`.
    cached_output: Tensor,
    cached: bool,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::default();
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        out.copy_from(input);
        for v in out.data_mut() {
            *v = v.tanh();
        }
        if train {
            self.cached_output.copy_from(out);
            self.cached = true;
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert!(
            self.cached,
            "tanh backward called without a training forward"
        );
        self.cached = false;
        let y = &self.cached_output;
        assert_eq!(grad_out.len(), y.len(), "tanh grad shape mismatch");
        grad_in.resize_to(y.shape());
        grad_in.data_mut().copy_from_slice(grad_out.data());
        for (gv, &yv) in grad_in.data_mut().iter_mut().zip(y.data()) {
            *gv *= 1.0 - yv * yv;
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], &[1, 4]);
        let out = relu.forward(&x, true);
        assert_eq!(out.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]);
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_matches_derivative() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]);
        let out = tanh.forward(&x, true);
        assert!((out.data()[0] - 0.5f32.tanh()).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let gx = tanh.backward(&g);
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert!((gx.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn relu_has_no_params() {
        let relu = ReLU::new();
        assert_eq!(relu.param_count(), 0);
    }

    #[test]
    fn relu_into_reuses_buffers_and_matches() {
        let mut a = ReLU::new();
        let mut b = ReLU::new();
        let mut out = Tensor::default();
        let mut gin = Tensor::default();
        for scale in [1.0f32, -2.0, 0.5] {
            let x = Tensor::from_vec(vec![-scale, 0.0, 2.0 * scale], &[1, 3]);
            a.forward_into(&x, &mut out, true);
            let expect = b.forward(&x, true);
            assert_eq!(out, expect);
            let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
            a.backward_into(&g, &mut gin);
            assert_eq!(gin, b.backward(&g));
        }
    }
}
