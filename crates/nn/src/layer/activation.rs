//! Element-wise activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)` element-wise.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
    shape: Vec<usize>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        let mut mask = if train {
            Vec::with_capacity(input.len())
        } else {
            Vec::new()
        };
        for v in out.data_mut() {
            let active = *v > 0.0;
            if !active {
                *v = 0.0;
            }
            if train {
                mask.push(active);
            }
        }
        if train {
            self.mask = Some(mask);
            self.shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("relu backward called without a training forward");
        assert_eq!(grad_out.len(), mask.len(), "relu grad shape mismatch");
        let mut g = grad_out.clone().reshaped(&self.shape);
        for (v, &active) in g.data_mut().iter_mut().zip(&mask) {
            if !active {
                *v = 0.0;
            }
        }
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = v.tanh();
        }
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("tanh backward called without a training forward");
        assert_eq!(grad_out.len(), y.len(), "tanh grad shape mismatch");
        let mut g = grad_out.clone().reshaped(y.shape());
        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
            *gv *= 1.0 - yv * yv;
        }
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], &[1, 4]);
        let out = relu.forward(&x, true);
        assert_eq!(out.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]);
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_matches_derivative() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]);
        let out = tanh.forward(&x, true);
        assert!((out.data()[0] - 0.5f32.tanh()).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let gx = tanh.backward(&g);
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert!((gx.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn relu_has_no_params() {
        let relu = ReLU::new();
        assert_eq!(relu.param_count(), 0);
    }
}
