//! Flattening layer: `[N, ...]` → `[N, prod(...)]`.

use super::Layer;
use crate::tensor::Tensor;

/// Flattens all non-batch dimensions.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::default();
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        let n = input.batch();
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.in_shape.clear();
            self.in_shape.extend_from_slice(input.shape());
        }
        out.resize_to(&[n, rest]);
        out.data_mut().copy_from_slice(input.data());
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert!(
            !self.in_shape.is_empty(),
            "flatten backward called without a training forward"
        );
        grad_in.resize_to(&self.in_shape);
        grad_in.data_mut().copy_from_slice(grad_out.data());
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let out = f.forward(&x, true);
        assert_eq!(out.shape(), &[2, 48]);
        let back = f.backward(&out);
        assert_eq!(back.shape(), &[2, 3, 4, 4]);
    }
}
