//! Flattening layer: `[N, ...]` → `[N, prod(...)]`.

use super::Layer;
use crate::tensor::Tensor;

/// Flattens all non-batch dimensions.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.batch();
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.in_shape = input.shape().to_vec();
        }
        input.clone().reshaped(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.in_shape.is_empty(),
            "flatten backward called without a training forward"
        );
        grad_out.clone().reshaped(&self.in_shape.clone())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let out = f.forward(&x, true);
        assert_eq!(out.shape(), &[2, 48]);
        let back = f.backward(&out);
        assert_eq!(back.shape(), &[2, 3, 4, 4]);
    }
}
