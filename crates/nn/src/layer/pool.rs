//! 2-D max pooling.

use super::Layer;
use crate::tensor::Tensor;

/// Max pooling over `[N, C, H, W]` with a square window and equal stride
/// (the LeNet-style `2×2 / stride 2`).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    size: usize,
    /// Argmax indices (into the input data buffer) cached for backward.
    cached: Option<(Vec<usize>, Vec<usize>)>, // (input_shape, argmax)
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window size (= stride).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        Self { size, cached: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "pool expects [N, C, H, W], got {shape:?}");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let s = self.size;
        assert!(
            h >= s && w >= s,
            "pool input {h}x{w} smaller than window {s}"
        );
        let oh = h / s;
        let ow = w / s;
        let x = input.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for bc in 0..n * c {
            let x_plane = &x[bc * h * w..(bc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..s {
                        for kx in 0..s {
                            let idx = (oy * s + ky) * w + ox * s + kx;
                            if x_plane[idx] > best {
                                best = x_plane[idx];
                                best_idx = bc * h * w + idx;
                            }
                        }
                    }
                    let o_idx = bc * oh * ow + oy * ow + ox;
                    out[o_idx] = best;
                    argmax[o_idx] = best_idx;
                }
            }
        }
        if train {
            self.cached = Some((shape.to_vec(), argmax));
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (in_shape, argmax) = self
            .cached
            .take()
            .expect("pool backward called without a training forward");
        let mut grad_in = vec![0.0f32; in_shape.iter().product()];
        for (o_idx, &in_idx) in argmax.iter().enumerate() {
            grad_in[in_idx] += grad_out.data()[o_idx];
        }
        Tensor::from_vec(grad_in, &in_shape)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Self {
            size: self.size,
            cached: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_max() {
        let mut pool = MaxPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 1.0, 2.0, 3.0,
            4.0, 5.0, 6.0, 7.0,
        ], &[1, 1, 4, 4]);
        let out = pool.forward(&x, false);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 2.0,
            3.0, 0.5,
        ], &[1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let gx = pool.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 10.0, 0.0]);
    }

    #[test]
    fn truncates_ragged_edges() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let out = pool.forward(&x, false);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
    }
}
