//! Fully connected (affine) layer.

use super::Layer;
use crate::init::Init;
use crate::kernels;
use crate::tensor::Tensor;
use rand::Rng;

/// Fully connected layer: `y = x Wᵀ + b`, weights stored `[out, in]`
/// row-major.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f32>, // [out, in]
    bias: Vec<f32>,   // [out]
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    // Persistent cache buffer: `cached` gates validity so the heap
    // allocation survives (and is reused by) every training forward.
    cached_input: Tensor,
    cached: bool,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Self::with_init(rng, in_dim, out_dim, Init::HeNormal)
    }

    /// Creates a dense layer with the given weight initialization.
    pub fn with_init<R: Rng + ?Sized>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        init: Init,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        let mut weight = vec![0.0; in_dim * out_dim];
        init.fill(rng, &mut weight, in_dim, out_dim);
        Self {
            in_dim,
            out_dim,
            weight,
            bias: vec![0.0; out_dim],
            grad_weight: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
            cached_input: Tensor::default(),
            cached: false,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(input, &mut out, train);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::default();
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn forward_into(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        let n = input.batch();
        assert_eq!(
            input.len(),
            n * self.in_dim,
            "dense expected [{n}, {}], got shape {:?}",
            self.in_dim,
            input.shape()
        );
        let x = input.data();
        // y = x Wᵀ, then add the bias per row. The matmul kernel fully
        // overwrites `out`, so stale contents from a previous minibatch are
        // harmless.
        out.resize_to(&[n, self.out_dim]);
        kernels::matmul_transb(
            x,
            &self.weight,
            out.data_mut(),
            n,
            self.in_dim,
            self.out_dim,
        );
        for oi in out.data_mut().chunks_exact_mut(self.out_dim) {
            for (o, b) in oi.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
        if train {
            self.cached_input.resize_to(&[n, self.in_dim]);
            self.cached_input.data_mut().copy_from_slice(x);
            self.cached = true;
        }
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert!(
            self.cached,
            "dense backward called without a training forward"
        );
        self.cached = false;
        // Move the cache out so its data can be read while parameter
        // gradients are mutated; restored below to keep its buffer alive.
        let input = std::mem::take(&mut self.cached_input);
        let n = input.batch();
        assert_eq!(
            grad_out.len(),
            n * self.out_dim,
            "dense grad shape mismatch"
        );
        let x = input.data();
        let g = grad_out.data();
        // dW += gᵀ x ; db[o] += Σ_batch g[o].
        kernels::matmul_transa_acc(g, x, &mut self.grad_weight, n, self.out_dim, self.in_dim);
        for gb in g.chunks_exact(self.out_dim) {
            for (db, &go) in self.grad_bias.iter_mut().zip(gb) {
                *db += go;
            }
        }
        // dX = g W.
        grad_in.resize_to(&[n, self.in_dim]);
        kernels::matmul(
            g,
            &self.weight,
            grad_in.data_mut(),
            n,
            self.out_dim,
            self.in_dim,
        );
        self.cached_input = input;
    }

    fn backward_head_into(&mut self, grad_out: &Tensor, _scratch: &mut Tensor) {
        assert!(
            self.cached,
            "dense backward called without a training forward"
        );
        self.cached = false;
        let input = std::mem::take(&mut self.cached_input);
        let n = input.batch();
        assert_eq!(
            grad_out.len(),
            n * self.out_dim,
            "dense grad shape mismatch"
        );
        let x = input.data();
        let g = grad_out.data();
        // Parameter gradients only — identical ops to `backward_into`; the
        // dX matmul (the single largest matmul of a first-layer backward)
        // is skipped because nothing consumes it.
        kernels::matmul_transa_acc(g, x, &mut self.grad_weight, n, self.out_dim, self.in_dim);
        for gb in g.chunks_exact(self.out_dim) {
            for (db, &go) in self.grad_bias.iter_mut().zip(gb) {
                *db += go;
            }
        }
        self.cached_input = input;
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.weight.len());
        w.copy_from_slice(&self.weight);
        b.copy_from_slice(&self.bias);
    }

    fn read_params(&mut self, src: &[f32]) {
        let (w, b) = src.split_at(self.weight.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn write_grads(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.grad_weight.len());
        w.copy_from_slice(&self.grad_weight);
        b.copy_from_slice(&self.grad_bias);
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.cached_input = Tensor::default();
        c.cached = false;
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(0);
        Dense::new(&mut rng, 3, 2)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        // Zero the weights, set bias: output must equal the bias per row.
        l.read_params(&[0.0; 8]);
        let mut p = vec![0.0; 8];
        p[6] = 1.5;
        p[7] = -0.5;
        l.read_params(&p);
        let out = l.forward(&Tensor::zeros(&[4, 3]), false);
        assert_eq!(out.shape(), &[4, 2]);
        for i in 0..4 {
            assert_eq!(out.row(i), &[1.5, -0.5]);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::new(&mut rng, 4, 3);
        let x = Tensor::from_vec((0..8).map(|i| 0.1 * i as f32).collect(), &[2, 4]);
        // Loss = sum(outputs); dL/dout = 1.
        let out = l.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape());
        let gx = l.backward(&ones);
        let mut grads = vec![0.0; l.param_count()];
        l.write_grads(&mut grads);

        let mut params = vec![0.0; l.param_count()];
        l.write_params(&mut params);
        let eps = 1e-3;
        for idx in [0usize, 5, 11, 12, 14] {
            let mut p_hi = params.clone();
            p_hi[idx] += eps;
            l.read_params(&p_hi);
            let hi: f32 = l.forward(&x, false).data().iter().sum();
            let mut p_lo = params.clone();
            p_lo[idx] -= eps;
            l.read_params(&p_lo);
            let lo: f32 = l.forward(&x, false).data().iter().sum();
            let fd = (hi - lo) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 1e-2,
                "param {idx}: fd={fd} analytic={}",
                grads[idx]
            );
        }
        // Input gradient via finite differences on one coordinate.
        l.read_params(&params);
        let mut x_hi = x.clone();
        x_hi.data_mut()[2] += eps;
        let hi: f32 = l.forward(&x_hi, false).data().iter().sum();
        let mut x_lo = x.clone();
        x_lo.data_mut()[2] -= eps;
        let lo: f32 = l.forward(&x_lo, false).data().iter().sum();
        let fd = (hi - lo) / (2.0 * eps);
        assert!((fd - gx.data()[2]).abs() < 1e-2);
    }

    #[test]
    fn param_roundtrip() {
        let mut l = layer();
        let mut before = vec![0.0; l.param_count()];
        l.write_params(&mut before);
        let incremented: Vec<f32> = before.iter().map(|p| p + 1.0).collect();
        l.read_params(&incremented);
        let mut after = vec![0.0; l.param_count()];
        l.write_params(&mut after);
        assert_eq!(after, incremented);
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = layer();
        let x = Tensor::from_vec(vec![1.0; 3], &[1, 3]);
        let out = l.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0; out.len()], out.shape());
        l.backward(&g);
        let mut grads = vec![0.0; l.param_count()];
        l.write_grads(&mut grads);
        assert!(grads.iter().any(|&g| g != 0.0));
        l.zero_grad();
        l.write_grads(&mut grads);
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn head_backward_matches_full_backward_param_grads() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut full = Dense::new(&mut rng, 5, 3);
        let mut head = full.clone();
        let x = Tensor::from_vec((0..10).map(|i| 0.3 * i as f32 - 1.0).collect(), &[2, 5]);
        let g = Tensor::from_vec((0..6).map(|i| 0.1 * i as f32 - 0.2).collect(), &[2, 3]);
        let mut scratch = Tensor::default();

        full.forward_into(&x, &mut scratch, true);
        let mut grad_in = Tensor::default();
        full.backward_into(&g, &mut grad_in);
        head.forward_into(&x, &mut scratch, true);
        head.backward_head_into(&g, &mut scratch);

        let mut gf = vec![0.0; full.param_count()];
        let mut gh = vec![0.0; head.param_count()];
        full.write_grads(&mut gf);
        head.write_grads(&mut gh);
        assert_eq!(
            gf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            gh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "head backward must accumulate bitwise-identical parameter grads"
        );
    }

    #[test]
    #[should_panic(expected = "without a training forward")]
    fn backward_requires_forward() {
        let mut l = layer();
        let g = Tensor::zeros(&[1, 2]);
        let _ = l.backward(&g);
    }
}
