//! 2-D convolution (valid padding, stride 1) — the LeNet building block.

use super::Layer;
use crate::init::Init;
use crate::tensor::Tensor;
use rand::Rng;

/// 2-D convolution over `[N, C, H, W]` inputs with `valid` padding and
/// stride 1. Weights are stored `[out_c, in_c, kh, kw]` row-major.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_c: usize, out_c: usize, kernel: usize) -> Self {
        assert!(
            in_c > 0 && out_c > 0 && kernel > 0,
            "conv dims must be positive"
        );
        let fan_in = in_c * kernel * kernel;
        let mut weight = vec![0.0; out_c * fan_in];
        Init::HeNormal.fill(rng, &mut weight, fan_in, out_c * kernel * kernel);
        Self {
            in_c,
            out_c,
            kh: kernel,
            kw: kernel,
            weight,
            bias: vec![0.0; out_c],
            grad_weight: vec![0.0; out_c * fan_in],
            grad_bias: vec![0.0; out_c],
            cached_input: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kh && w >= self.kw,
            "conv input {h}x{w} smaller than kernel {}x{}",
            self.kh,
            self.kw
        );
        (h - self.kh + 1, w - self.kw + 1)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "conv expects [N, C, H, W], got {shape:?}");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_c, "conv channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let x = input.data();
        let mut out = vec![0.0f32; n * self.out_c * oh * ow];
        let in_plane = h * w;
        let out_plane = oh * ow;
        let k_plane = self.kh * self.kw;
        for b in 0..n {
            let xb = &x[b * c * in_plane..(b + 1) * c * in_plane];
            let ob = &mut out[b * self.out_c * out_plane..(b + 1) * self.out_c * out_plane];
            for oc in 0..self.out_c {
                let w_oc = &self.weight[oc * self.in_c * k_plane..(oc + 1) * self.in_c * k_plane];
                let bias = self.bias[oc];
                let o_plane = &mut ob[oc * out_plane..(oc + 1) * out_plane];
                o_plane.fill(bias);
                for ic in 0..self.in_c {
                    let x_plane = &xb[ic * in_plane..(ic + 1) * in_plane];
                    let w_k = &w_oc[ic * k_plane..(ic + 1) * k_plane];
                    for ky in 0..self.kh {
                        for kx in 0..self.kw {
                            let wv = w_k[ky * self.kw + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let x_row = &x_plane[(oy + ky) * w + kx..(oy + ky) * w + kx + ow];
                                let o_row = &mut o_plane[oy * ow..(oy + 1) * ow];
                                for (o, &xv) in o_row.iter_mut().zip(x_row) {
                                    *o += wv * xv;
                                }
                            }
                        }
                    }
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        Tensor::from_vec(out, &[n, self.out_c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("conv backward called without a training forward");
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_c, oh, ow],
            "conv grad shape mismatch"
        );
        let x = input.data();
        let g = grad_out.data();
        let in_plane = h * w;
        let out_plane = oh * ow;
        let k_plane = self.kh * self.kw;
        let mut grad_in = vec![0.0f32; x.len()];
        for b in 0..n {
            let xb = &x[b * c * in_plane..(b + 1) * c * in_plane];
            let gb = &g[b * self.out_c * out_plane..(b + 1) * self.out_c * out_plane];
            let gib = &mut grad_in[b * c * in_plane..(b + 1) * c * in_plane];
            for oc in 0..self.out_c {
                let g_plane = &gb[oc * out_plane..(oc + 1) * out_plane];
                self.grad_bias[oc] += g_plane.iter().sum::<f32>();
                let w_oc = &self.weight[oc * self.in_c * k_plane..(oc + 1) * self.in_c * k_plane];
                let gw_oc =
                    &mut self.grad_weight[oc * self.in_c * k_plane..(oc + 1) * self.in_c * k_plane];
                for ic in 0..self.in_c {
                    let x_plane = &xb[ic * in_plane..(ic + 1) * in_plane];
                    let gi_plane = &mut gib[ic * in_plane..(ic + 1) * in_plane];
                    let w_k = &w_oc[ic * k_plane..(ic + 1) * k_plane];
                    let gw_k = &mut gw_oc[ic * k_plane..(ic + 1) * k_plane];
                    for ky in 0..self.kh {
                        for kx in 0..self.kw {
                            let mut acc = 0.0f32;
                            let wv = w_k[ky * self.kw + kx];
                            for oy in 0..oh {
                                let g_row = &g_plane[oy * ow..(oy + 1) * ow];
                                let x_row = &x_plane[(oy + ky) * w + kx..(oy + ky) * w + kx + ow];
                                let gi_row =
                                    &mut gi_plane[(oy + ky) * w + kx..(oy + ky) * w + kx + ow];
                                for ((&gv, &xv), giv) in g_row.iter().zip(x_row).zip(gi_row) {
                                    acc += gv * xv;
                                    *giv += gv * wv;
                                }
                            }
                            gw_k[ky * self.kw + kx] += acc;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(grad_in, &[n, c, h, w])
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.weight.len());
        w.copy_from_slice(&self.weight);
        b.copy_from_slice(&self.bias);
    }

    fn read_params(&mut self, src: &[f32]) {
        let (w, b) = src.split_at(self.weight.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
    }

    fn write_grads(&self, out: &mut [f32]) {
        let (w, b) = out.split_at_mut(self.grad_weight.len());
        w.copy_from_slice(&self.grad_weight);
        b.copy_from_slice(&self.grad_bias);
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.cached_input = None;
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive reference convolution for cross-checking.
    fn reference_conv(
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        (n, c, h, ww): (usize, usize, usize, usize),
        (oc, k): (usize, usize),
    ) -> Vec<f32> {
        let oh = h - k + 1;
        let ow = ww - k + 1;
        let mut out = vec![0.0f32; n * oc * oh * ow];
        for b in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[o];
                        for ic in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let xv = x[((b * c + ic) * h + oy + ky) * ww + ox + kx];
                                    let wv = w[((o * c + ic) * k + ky) * k + kx];
                                    acc += xv * wv;
                                }
                            }
                        }
                        out[((b * oc + o) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, 2, 3, 3);
        let x: Vec<f32> = (0..2 * 2 * 6 * 6)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1)
            .collect();
        let t = Tensor::from_vec(x.clone(), &[2, 2, 6, 6]);
        let out = conv.forward(&t, false);
        let mut params = vec![0.0; conv.param_count()];
        conv.write_params(&mut params);
        let (w, b) = params.split_at(2 * 3 * 9);
        let reference = reference_conv(&x, w, b, (2, 2, 6, 6), (3, 3));
        assert_eq!(out.shape(), &[2, 3, 4, 4]);
        for (a, r) in out.data().iter().zip(&reference) {
            assert!((a - r).abs() < 1e-4, "{a} vs {r}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(&mut rng, 1, 2, 2);
        let x = Tensor::from_vec((0..16).map(|i| 0.05 * i as f32).collect(), &[1, 1, 4, 4]);
        let out = conv.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape());
        let gx = conv.backward(&ones);
        let mut grads = vec![0.0; conv.param_count()];
        conv.write_grads(&mut grads);

        let mut params = vec![0.0; conv.param_count()];
        conv.write_params(&mut params);
        let eps = 1e-3;
        for idx in 0..conv.param_count() {
            let mut hi = params.clone();
            hi[idx] += eps;
            conv.read_params(&hi);
            let s_hi: f32 = conv.forward(&x, false).data().iter().sum();
            let mut lo = params.clone();
            lo[idx] -= eps;
            conv.read_params(&lo);
            let s_lo: f32 = conv.forward(&x, false).data().iter().sum();
            let fd = (s_hi - s_lo) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 1e-2,
                "param {idx}: fd={fd} vs {}",
                grads[idx]
            );
        }
        // Spot-check an input gradient.
        conv.read_params(&params);
        let mut x_hi = x.clone();
        x_hi.data_mut()[5] += eps;
        let s_hi: f32 = conv.forward(&x_hi, false).data().iter().sum();
        let mut x_lo = x.clone();
        x_lo.data_mut()[5] -= eps;
        let s_lo: f32 = conv.forward(&x_lo, false).data().iter().sum();
        let fd = (s_hi - s_lo) / (2.0 * eps);
        assert!((fd - gx.data()[5]).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn rejects_too_small_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 5);
        let _ = conv.forward(&Tensor::zeros(&[1, 1, 3, 3]), false);
    }
}
