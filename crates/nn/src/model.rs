//! Sequential model with a flat-parameter view.
//!
//! Federated learning in this workspace treats a model as a point
//! `θ ∈ R^m`: aggregation rules, Krum distances, CollaPois' `ψ(X − θ)`
//! update, and Theorem 2's `‖θ − X‖₂` all operate on the flat vector
//! returned by [`Sequential::params`].

use crate::layer::Layer;
use crate::loss::{argmax, cross_entropy, cross_entropy_into, distillation, softmax, LossOutput};
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A stack of layers applied in order.
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Per-batch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchStats {
    /// Mean loss over the batch.
    pub loss: f64,
    /// Fraction of correct predictions in the batch.
    pub accuracy: f64,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass; feeds `grad` (w.r.t. the final output) through the
    /// layers in reverse, accumulating parameter gradients.
    pub fn backward(&mut self, grad: &Tensor) {
        let _ = self.backward_with_input_grad(grad);
    }

    /// Backward pass that also returns the gradient with respect to the
    /// network *input* — the quantity trigger-reconstruction defenses like
    /// Neural Cleanse optimize over.
    pub fn backward_with_input_grad(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Gradient of the cross-entropy loss with respect to the input batch
    /// (parameter gradients are also accumulated; call
    /// [`Sequential::zero_grad`] if they matter). Returns `(input_grad,
    /// stats)`.
    pub fn input_gradient(&mut self, x: &Tensor, labels: &[usize]) -> (Tensor, BatchStats) {
        self.zero_grad();
        let logits = self.forward(x, true);
        let LossOutput {
            loss,
            grad,
            correct,
        } = cross_entropy(&logits, labels);
        let gx = self.backward_with_input_grad(&grad);
        (
            gx,
            BatchStats {
                loss,
                accuracy: correct as f64 / labels.len().max(1) as f64,
            },
        )
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// The model parameters as one flat vector (layer order, weights then
    /// biases within each layer).
    pub fn params(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count()];
        let mut offset = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.write_params(&mut out[offset..offset + n]);
            offset += n;
        }
        out
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.param_count()`.
    pub fn set_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.param_count(), "set_params length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.param_count();
            layer.read_params(&src[offset..offset + n]);
            offset += n;
        }
    }

    /// The accumulated gradients as one flat vector.
    pub fn grads(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.param_count()];
        let mut offset = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.write_grads(&mut out[offset..offset + n]);
            offset += n;
        }
        out
    }

    /// Writes the flat parameter vector into `out` (resized as needed) —
    /// the in-place counterpart of [`Sequential::params`], reusing `out`'s
    /// heap buffer across calls.
    pub fn store_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.param_count(), 0.0);
        let mut offset = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.write_params(&mut out[offset..offset + n]);
            offset += n;
        }
    }

    /// Writes the flat accumulated-gradient vector into `out` (resized as
    /// needed) — the in-place counterpart of [`Sequential::grads`].
    pub fn store_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.param_count(), 0.0);
        let mut offset = 0;
        for layer in &self.layers {
            let n = layer.param_count();
            layer.write_grads(&mut out[offset..offset + n]);
            offset += n;
        }
    }

    /// Loads parameters from a borrowed flat slice. Identical to
    /// [`Sequential::set_params`] (which is already in-place); named for
    /// symmetry with [`Sequential::store_params_into`] on the
    /// zero-allocation training path.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.param_count()`.
    pub fn load_params_into(&mut self, src: &[f32]) {
        self.set_params(src);
    }

    /// Forward pass writing every layer activation into the workspace's
    /// persistent buffers; returns the final output by reference.
    ///
    /// Shares the per-layer `forward_into` code path with
    /// [`Sequential::forward`], so both produce bitwise-identical values.
    ///
    /// # Panics
    ///
    /// Panics on an empty model.
    pub fn forward_ws<'w>(
        &mut self,
        input: &Tensor,
        ws: &'w mut Workspace,
        train: bool,
    ) -> &'w Tensor {
        let depth = self.layers.len();
        assert!(depth > 0, "forward_ws on an empty model");
        if ws.acts.len() != depth {
            ws.acts.resize_with(depth, Tensor::default);
        }
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if i == 0 {
                layer.forward_into(input, &mut ws.acts[0], train);
            } else {
                let (prev, rest) = ws.acts.split_at_mut(i);
                layer.forward_into(&prev[i - 1], &mut rest[0], train);
            }
        }
        &ws.acts[depth - 1]
    }

    /// Mean cross-entropy loss and correct count on a labelled batch,
    /// evaluated through the workspace (no allocation after warm-up, no
    /// gradient accumulation). Bitwise identical to `forward` +
    /// [`crate::loss::cross_entropy`].
    pub fn loss_ws(&mut self, x: &Tensor, labels: &[usize], ws: &mut Workspace) -> (f64, usize) {
        self.forward_ws(x, ws, false);
        let depth = self.layers.len();
        cross_entropy_into(&ws.acts[depth - 1], labels, &mut ws.loss_grad)
    }

    /// One SGD step on a labelled batch using the persistent workspace:
    /// allocation-free after warm-up and bitwise identical to
    /// [`Sequential::train_batch`] (same kernels in the same order — the
    /// only difference is where the buffers live).
    pub fn train_batch_ws(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        ws: &mut Workspace,
    ) -> BatchStats {
        self.zero_grad();
        self.forward_ws(x, ws, true);
        let depth = self.layers.len();
        let (loss, correct) = cross_entropy_into(&ws.acts[depth - 1], labels, &mut ws.loss_grad);
        // Backward: ping-pong between the two persistent gradient buffers,
        // starting from the loss gradient. The bottom layer uses the
        // head variant, which may skip the (discarded) input gradient —
        // parameter gradients are identical either way.
        let mut src_is_a = false;
        for i in (0..depth).rev() {
            let layer = &mut self.layers[i];
            if i == depth - 1 && i == 0 {
                layer.backward_head_into(&ws.loss_grad, &mut ws.grad_a);
            } else if i == depth - 1 {
                layer.backward_into(&ws.loss_grad, &mut ws.grad_a);
                src_is_a = true;
            } else if i == 0 {
                if src_is_a {
                    layer.backward_head_into(&ws.grad_a, &mut ws.grad_b);
                } else {
                    layer.backward_head_into(&ws.grad_b, &mut ws.grad_a);
                }
            } else if src_is_a {
                layer.backward_into(&ws.grad_a, &mut ws.grad_b);
                src_is_a = false;
            } else {
                layer.backward_into(&ws.grad_b, &mut ws.grad_a);
                src_is_a = true;
            }
        }
        self.store_params_into(&mut ws.params);
        self.store_grads_into(&mut ws.grads);
        optimizer.step(&mut ws.params, &ws.grads);
        self.set_params(&ws.params);
        BatchStats {
            loss,
            accuracy: correct as f64 / labels.len().max(1) as f64,
        }
    }

    /// One SGD step on a labelled batch: forward, cross-entropy backward,
    /// optimizer update. Returns loss/accuracy for the batch.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> BatchStats {
        self.zero_grad();
        let logits = self.forward(x, true);
        let LossOutput {
            loss,
            grad,
            correct,
        } = cross_entropy(&logits, labels);
        self.backward(&grad);
        let mut params = self.params();
        let grads = self.grads();
        optimizer.step(&mut params, &grads);
        self.set_params(&params);
        BatchStats {
            loss,
            accuracy: correct as f64 / labels.len().max(1) as f64,
        }
    }

    /// One SGD step distilling toward soft targets (MetaFed's KD step).
    pub fn distill_batch(
        &mut self,
        x: &Tensor,
        soft_targets: &Tensor,
        temperature: f64,
        optimizer: &mut dyn Optimizer,
    ) -> BatchStats {
        self.zero_grad();
        let logits = self.forward(x, true);
        let LossOutput {
            loss,
            grad,
            correct,
        } = distillation(&logits, soft_targets, temperature);
        self.backward(&grad);
        let mut params = self.params();
        let grads = self.grads();
        optimizer.step(&mut params, &grads);
        self.set_params(&params);
        BatchStats {
            loss,
            accuracy: correct as f64 / x.batch().max(1) as f64,
        }
    }

    /// Computes per-batch gradients without applying them; the flat gradient
    /// is left accumulated in the layers (read with [`Sequential::grads`]).
    pub fn compute_grads(&mut self, x: &Tensor, labels: &[usize]) -> BatchStats {
        self.zero_grad();
        let logits = self.forward(x, true);
        let LossOutput {
            loss,
            grad,
            correct,
        } = cross_entropy(&logits, labels);
        self.backward(&grad);
        BatchStats {
            loss,
            accuracy: correct as f64 / labels.len().max(1) as f64,
        }
    }

    /// Predicted class for every sample in the batch.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let logits = self.forward(x, false);
        let n = logits.batch();
        (0..n).map(|i| argmax(logits.row(i))).collect()
    }

    /// Class-probability rows (softmax outputs) for the batch.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let logits = self.forward(x, false);
        softmax(&logits)
    }

    /// Classification accuracy on a labelled batch.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> f64 {
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict(x);
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, ReLU};
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(&mut rng, 2, 8)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(Dense::new(&mut rng, 8, 2)))
    }

    /// XOR-ish separable data.
    fn toy_data() -> (Tensor, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let t = i as f32 / 40.0;
            // Class 0 near (0,0), class 1 near (1,1).
            if i % 2 == 0 {
                xs.extend_from_slice(&[0.1 * t, 0.1 * (1.0 - t)]);
                ys.push(0);
            } else {
                xs.extend_from_slice(&[1.0 - 0.1 * t, 1.0 - 0.1 * (1.0 - t)]);
                ys.push(1);
            }
        }
        (Tensor::from_vec(xs, &[40, 2]), ys)
    }

    #[test]
    fn param_roundtrip_is_identity() {
        let mut m = tiny_model(0);
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        m.set_params(&p);
        assert_eq!(m.params(), p);
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut m = tiny_model(1);
        let (x, y) = toy_data();
        let mut opt = Sgd::new(0.5);
        let first = m.train_batch(&x, &y, &mut opt).loss;
        let mut last = first;
        for _ in 0..100 {
            last = m.train_batch(&x, &y, &mut opt).loss;
        }
        assert!(
            last < first * 0.5,
            "loss did not decrease: {first} -> {last}"
        );
        assert!(m.evaluate(&x, &y) > 0.95);
    }

    #[test]
    fn clone_is_independent() {
        let mut m = tiny_model(2);
        let c = m.clone();
        let (x, y) = toy_data();
        let mut opt = Sgd::new(0.5);
        let before = c.params();
        m.train_batch(&x, &y, &mut opt);
        assert_eq!(
            c.params(),
            before,
            "training the original must not affect the clone"
        );
        assert_ne!(m.params(), before);
    }

    #[test]
    fn grads_have_param_length() {
        let mut m = tiny_model(3);
        let (x, y) = toy_data();
        m.compute_grads(&x, &y);
        assert_eq!(m.grads().len(), m.param_count());
        m.zero_grad();
        assert!(m.grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut m = tiny_model(4);
        let (x, _) = toy_data();
        let p = m.predict_proba(&x);
        for i in 0..x.batch() {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn distillation_moves_student_toward_teacher() {
        let mut teacher = tiny_model(5);
        let (x, y) = toy_data();
        let mut opt = Sgd::new(0.5);
        for _ in 0..100 {
            teacher.train_batch(&x, &y, &mut opt);
        }
        let targets = teacher.predict_proba(&x);
        let mut student = tiny_model(6);
        let mut s_opt = Sgd::new(0.2);
        let first = student.distill_batch(&x, &targets, 2.0, &mut s_opt).loss;
        let mut last = first;
        for _ in 0..100 {
            last = student.distill_batch(&x, &targets, 2.0, &mut s_opt).loss;
        }
        assert!(last < first, "distillation loss did not decrease");
        assert!(student.evaluate(&x, &y) > 0.9);
    }

    #[test]
    fn ws_path_matches_plain_path_bitwise() {
        let mut a = tiny_model(10);
        let mut b = a.clone();
        let (x, y) = toy_data();
        let mut oa = Sgd::new(0.5);
        let mut ob = Sgd::new(0.5);
        let mut ws = crate::workspace::Workspace::new();
        for _ in 0..5 {
            let sa = a.train_batch(&x, &y, &mut oa);
            let sb = b.train_batch_ws(&x, &y, &mut ob, &mut ws);
            assert_eq!(sa.loss.to_bits(), sb.loss.to_bits());
            assert_eq!(sa.accuracy, sb.accuracy);
        }
        for (u, v) in a.params().iter().zip(&b.params()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn evaluate_empty_labels_is_zero() {
        let mut m = tiny_model(7);
        assert_eq!(m.evaluate(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut m = tiny_model(8);
        let x = Tensor::from_vec(vec![0.4, -0.2, 0.8, 0.1], &[2, 2]);
        let labels = [0usize, 1];
        let (gx, _) = m.input_gradient(&x, &labels);
        assert_eq!(gx.shape(), x.shape());
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut hi = x.clone();
            hi.data_mut()[idx] += eps;
            let mut lo = x.clone();
            lo.data_mut()[idx] -= eps;
            let l_hi = {
                let logits = m.forward(&hi, false);
                crate::loss::cross_entropy(&logits, &labels).loss
            };
            let l_lo = {
                let logits = m.forward(&lo, false);
                crate::loss::cross_entropy(&logits, &labels).loss
            };
            let fd = (l_hi - l_lo) / (2.0 * eps as f64);
            assert!(
                (fd - gx.data()[idx] as f64).abs() < 1e-3,
                "idx {idx}: fd={fd} analytic={}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn input_gradient_descends_loss() {
        // Moving the input against its gradient must reduce the loss — the
        // operation Neural Cleanse relies on.
        let mut m = tiny_model(9);
        let mut x = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        let labels = [1usize];
        let (gx, before) = m.input_gradient(&x, &labels);
        for (xv, g) in x.data_mut().iter_mut().zip(gx.data()) {
            *xv -= 0.5 * g;
        }
        let logits = m.forward(&x, false);
        let after = crate::loss::cross_entropy(&logits, &labels).loss;
        assert!(after < before.loss, "{after} !< {}", before.loss);
    }
}
