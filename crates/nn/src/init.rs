//! Weight initialization schemes.

use collapois_stats::distribution::standard_normal;
use rand::Rng;

/// Initialization scheme for layer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// Kaiming/He normal: `N(0, 2 / fan_in)` — suited to ReLU networks
    /// (the default).
    #[default]
    HeNormal,
    /// Xavier/Glorot uniform: `U[-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out))]`.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Fills `out` with `n = out.len()` initialized values.
    pub fn fill<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut [f32],
        fan_in: usize,
        fan_out: usize,
    ) {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                for w in out {
                    *w = (standard_normal(rng) * std) as f32;
                }
            }
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                for w in out {
                    *w = rng.gen_range(-limit..limit) as f32;
                }
            }
            Init::Zeros => out.fill(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut buf = vec![0.0f32; 20_000];
        Init::HeNormal.fill(&mut rng, &mut buf, 100, 50);
        let var: f64 = buf.iter().map(|&w| (w as f64).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!((var - 0.02).abs() < 0.002, "var={var}"); // 2/100
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; 10_000];
        Init::XavierUniform.fill(&mut rng, &mut buf, 30, 30);
        let limit = (6.0f64 / 60.0).sqrt() as f32;
        assert!(buf.iter().all(|&w| w.abs() <= limit));
        assert!(buf.iter().any(|&w| w.abs() > 0.5 * limit));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![1.0f32; 8];
        Init::Zeros.fill(&mut rng, &mut buf, 4, 4);
        assert!(buf.iter().all(|&w| w == 0.0));
    }
}
