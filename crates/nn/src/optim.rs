//! Gradient-descent optimizers over flat parameter vectors.

use crate::kernels;
use collapois_stats::distribution::standard_normal;
use collapois_stats::geometry::clip_to_norm;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An optimizer that updates a flat parameter vector in place given a flat
/// gradient of the same length.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step. `params` and `grads` must have equal length.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Current base learning rate.
    fn learning_rate(&self) -> f64;

    /// Sets the base learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Example
///
/// ```
/// use collapois_nn::optim::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.5);
/// let mut params = vec![1.0f32];
/// opt.step(&mut params, &[2.0]);
/// assert!((params[0] - 0.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Adds l2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        let lr = self.lr as f32;
        let wd = self.weight_decay as f32;
        if self.momentum > 0.0 {
            if self.velocity.len() != params.len() {
                self.velocity = vec![0.0; params.len()];
            }
            let mu = self.momentum as f32;
            for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
                let g = g + wd * *p;
                *v = mu * *v + g;
                *p -= lr * *v;
            }
        } else if wd == 0.0 {
            // Plain SGD is a pure axpy: p += (−lr)·g.
            kernels::axpy(params, -lr, grads);
        } else {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * (g + wd * *p);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// DP-SGD: per-step gradient clipping to an l2 bound followed by Gaussian
/// noise of scale `noise_multiplier * clip_bound / 1` — the client-side
/// differentially private optimizer referenced by the paper's DP defense
/// [Hong et al. 2020].
#[derive(Debug)]
pub struct DpSgd {
    inner: Sgd,
    clip_bound: f64,
    noise_multiplier: f64,
    rng: StdRng,
    scratch: Vec<f32>,
}

impl DpSgd {
    /// Creates a DP-SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `clip_bound <= 0` or `noise_multiplier < 0`.
    pub fn new(lr: f64, clip_bound: f64, noise_multiplier: f64, seed: u64) -> Self {
        assert!(clip_bound > 0.0, "clip bound must be positive");
        assert!(
            noise_multiplier >= 0.0,
            "noise multiplier must be non-negative"
        );
        Self {
            inner: Sgd::new(lr),
            clip_bound,
            noise_multiplier,
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
        }
    }
}

impl Optimizer for DpSgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(grads);
        clip_to_norm(&mut self.scratch, self.clip_bound);
        if self.noise_multiplier > 0.0 {
            let sigma = (self.noise_multiplier * self.clip_bound) as f32;
            for g in &mut self.scratch {
                *g += sigma * standard_normal(&mut self.rng) as f32;
            }
        }
        // Split borrow: step on a temporary to avoid aliasing scratch.
        let scratch = std::mem::take(&mut self.scratch);
        self.inner.step(params, &scratch);
        self.scratch = scratch;
    }

    fn learning_rate(&self) -> f64 {
        self.inner.learning_rate()
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.inner.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_stats::geometry::l2_norm;

    #[test]
    fn sgd_basic_step() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0f32, -1.0];
        opt.step(&mut p, &[1.0, -1.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
        assert!((p[1] + 0.9).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        let first = p[0];
        opt.step(&mut p, &[1.0]);
        let second_delta = p[0] - first;
        // Second step is larger due to momentum.
        assert!(second_delta.abs() > first.abs());
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[0.0]);
        assert!(p[0] < 1.0);
    }

    #[test]
    fn dp_sgd_clips_gradient() {
        let mut opt = DpSgd::new(1.0, 1.0, 0.0, 0);
        let mut p = vec![0.0f32, 0.0];
        opt.step(&mut p, &[30.0, 40.0]); // norm 50, clipped to 1
        assert!((l2_norm(&p) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dp_sgd_adds_noise() {
        let mut a = DpSgd::new(1.0, 1.0, 1.0, 1);
        let mut b = DpSgd::new(1.0, 1.0, 1.0, 2);
        let mut pa = vec![0.0f32; 8];
        let mut pb = vec![0.0f32; 8];
        let g = vec![0.0f32; 8];
        a.step(&mut pa, &g);
        b.step(&mut pb, &g);
        assert_ne!(pa, pb, "different seeds must produce different noise");
        assert!(pa.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_rejects_length_mismatch() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[1.0]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert!((opt.learning_rate() - 0.1).abs() < 1e-12);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-12);
    }
}
