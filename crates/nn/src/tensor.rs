//! Dense row-major `f32` tensor.
//!
//! Kept deliberately small: shape-tracked storage plus the handful of
//! element-wise helpers the layers need. All layout is row-major with the
//! batch dimension first (`[N, D]` for dense inputs, `[N, C, H, W]` for
//! images).

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "tensor data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Tensor shape (row-major, batch first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Leading (batch) dimension; 0 for a rank-0 tensor.
    pub fn batch(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor in place to `shape`, growing or shrinking the
    /// data buffer as needed. Existing capacity is reused — after the first
    /// call at a given size this never touches the allocator. Newly exposed
    /// elements are zero; callers that fully overwrite the buffer (the
    /// in-place layer kernels) pay nothing for them.
    pub fn resize_to(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Reshapes in place to `[n, sample_shape...]` (the minibatch layout)
    /// without building an intermediate shape vector.
    pub fn resize_batch(&mut self, n: usize, sample_shape: &[usize]) {
        let per: usize = sample_shape.iter().product();
        self.shape.clear();
        self.shape.push(n);
        self.shape.extend_from_slice(sample_shape);
        self.data.resize(n * per, 0.0);
    }

    /// Makes `self` an exact copy of `other` (shape and data), reusing the
    /// existing buffers.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.resize_to(&other.shape);
        self.data.copy_from_slice(&other.data);
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expected,
            "reshape from {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// The `i`-th row of a rank-2 tensor (`[N, D]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() requires a rank-2 tensor");
        let d = self.shape[1];
        &self.data[i * d..(i + 1) * d]
    }

    /// The flattened slice of sample `i` (everything after the batch dim).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` out of bounds.
    pub fn sample(&self, i: usize) -> &[f32] {
        assert!(!self.shape.is_empty(), "sample() requires rank >= 1");
        let stride: usize = self.shape[1..].iter().product();
        &self.data[i * stride..(i + 1) * stride]
    }

    /// Mutable flattened slice of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` out of bounds.
    pub fn sample_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(!self.shape.is_empty(), "sample_mut() requires rank >= 1");
        let stride: usize = self.shape[1..].iter().product();
        &mut self.data[i * stride..(i + 1) * stride]
    }

    /// Matrix product `self · other` of two rank-2 tensors
    /// (`[m, k] · [k, n] → [m, n]`), routed through the cache-blocked
    /// kernel layer ([`crate::kernels::matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul requires rank-2 lhs");
        assert_eq!(other.shape.len(), 2, "matmul requires rank-2 rhs");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · otherᵀ` where `other` is stored `[n, k]`
    /// row-major (`[m, k] · [n, k]ᵀ → [m, n]`) — the dense-layer forward
    /// layout, routed through [`crate::kernels::matmul_transb`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions
    /// disagree.
    pub fn matmul_transb(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_transb requires rank-2 lhs");
        assert_eq!(other.shape.len(), 2, "matmul_transb requires rank-2 rhs");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transb inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul_transb(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Stacks equal-shape samples into a batch tensor of shape
    /// `[samples.len(), sample_shape...]`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any sample length mismatches
    /// `sample_shape`.
    pub fn stack(samples: &[&[f32]], sample_shape: &[usize]) -> Self {
        assert!(!samples.is_empty(), "stack needs at least one sample");
        let per: usize = sample_shape.iter().product();
        let mut data = Vec::with_capacity(per * samples.len());
        for s in samples {
            assert_eq!(
                s.len(),
                per,
                "stack: sample length {} != shape {:?}",
                s.len(),
                sample_shape
            );
            data.extend_from_slice(s);
        }
        let mut shape = Vec::with_capacity(sample_shape.len() + 1);
        shape.push(samples.len());
        shape.extend_from_slice(sample_shape);
        Self { data, shape }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.batch(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn rows_and_samples() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]);
        assert_eq!(t.sample(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.sample(1), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
        let r2 = t.clone().reshaped(&[2, 6]);
        assert_eq!(r2.row(1), t.sample(1));
    }

    #[test]
    fn sample_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.sample_mut(1)[0] = 9.0;
        assert_eq!(t.data()[3], 9.0);
    }

    #[test]
    fn stack_builds_batch() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let t = Tensor::stack(&[&a, &b], &[2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_mismatch() {
        let _ = Tensor::zeros(&[2, 3]).reshaped(&[7]);
    }

    #[test]
    fn matmul_and_transb_agree() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[4.0, 5.0, 10.0, 11.0]);
        // bt = b transposed, stored [2, 3].
        let bt = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0], &[2, 3]);
        assert_eq!(a.matmul_transb(&bt).data(), c.data());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_dim_mismatch() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }
}
