//! Loss functions: softmax cross-entropy (hard labels) and distillation
//! loss (soft targets), plus the softmax itself.

use crate::kernels;
use crate::tensor::Tensor;

/// Numerically stable softmax over the last dimension of a `[N, K]` tensor,
/// routed through [`kernels::softmax_rows`].
pub fn softmax(logits: &Tensor) -> Tensor {
    let n = logits.batch();
    let k = logits.len() / n.max(1);
    let mut out = logits.clone();
    kernels::softmax_rows(out.data_mut(), n, k);
    out
}

/// Loss value plus the gradient with respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f64,
    /// Gradient w.r.t. the logits, already divided by the batch size.
    pub grad: Tensor,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
}

/// Softmax cross-entropy against integer class labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let mut grad = Tensor::zeros(&[0]);
    let (loss, correct) = cross_entropy_into(logits, labels, &mut grad);
    LossOutput {
        loss,
        grad,
        correct,
    }
}

/// In-place variant of [`cross_entropy`]: writes the logit gradient into
/// `grad` (resized as needed, its buffer reused across minibatches) and
/// returns `(mean_loss, correct)`.
///
/// `softmax_xent` fully overwrites every element of the gradient buffer, so
/// no pre-zeroing is required and the result is bitwise identical to the
/// allocating path.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn cross_entropy_into(logits: &Tensor, labels: &[usize], grad: &mut Tensor) -> (f64, usize) {
    let n = logits.batch();
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let k = logits.len() / n.max(1);
    // Single fused pass per row: the max-subtracted exponentials are
    // computed exactly once and normalized straight into the gradient
    // buffer (no intermediate probability tensor, no second batch sweep).
    grad.resize_to(&[n, k]);
    let (loss, correct) = kernels::softmax_xent(logits.data(), labels, n, k, grad.data_mut());
    (loss / n as f64, correct)
}

/// Distillation loss: cross-entropy of the student's temperature-softened
/// softmax against the teacher's soft targets (`[N, K]`, rows on the
/// simplex). Used by MetaFed's cyclic knowledge distillation.
///
/// # Panics
///
/// Panics if shapes mismatch or `temperature <= 0`.
pub fn distillation(logits: &Tensor, soft_targets: &Tensor, temperature: f64) -> LossOutput {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(
        logits.shape(),
        soft_targets.shape(),
        "distillation shape mismatch"
    );
    let n = logits.batch();
    let k = logits.len() / n.max(1);
    let t = temperature as f32;
    let mut scaled = logits.clone();
    for v in scaled.data_mut() {
        *v /= t;
    }
    let probs = softmax(&scaled);
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for i in 0..n {
        let p = probs.row(i);
        let q = soft_targets.row(i);
        for j in 0..k {
            loss += -(q[j] as f64) * (p[j].max(1e-12) as f64).ln();
            grad.data_mut()[i * k + j] -= q[j];
        }
        if argmax(p) == argmax(q) {
            correct += 1;
        }
    }
    // dL/dz = (p − q)/T per sample; the standard T² correction multiplies the
    // loss by T², leaving a net factor of T (then 1/n for the batch mean).
    let scale = t / n as f32;
    for g in grad.data_mut() {
        *g *= scale;
    }
    LossOutput {
        loss: loss / n as f64,
        grad,
        correct,
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let p = softmax(&logits);
        assert!((p.data()[0] - 1.0).abs() < 1e-6);
        assert!(p.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[4, 5]);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (5.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, 0.0, -0.4], &[2, 3]);
        let labels = [2usize, 0];
        let out = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut hi = logits.clone();
            hi.data_mut()[idx] += eps;
            let mut lo = logits.clone();
            lo.data_mut()[idx] -= eps;
            let fd = (cross_entropy(&hi, &labels).loss - cross_entropy(&lo, &labels).loss)
                / (2.0 * eps as f64);
            assert!(
                (fd - out.grad.data()[idx] as f64).abs() < 1e-3,
                "idx {idx}: fd={fd} analytic={}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn distillation_zero_when_matching() {
        // Teacher equals student softmax ⇒ gradient ≈ 0.
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]);
        let targets = softmax(&logits);
        let out = distillation(&logits, &targets, 1.0);
        assert!(out.grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn distillation_pulls_toward_teacher() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let targets = Tensor::from_vec(vec![0.9, 0.1], &[1, 2]);
        let out = distillation(&logits, &targets, 2.0);
        // Gradient on logit 0 must be negative (increase it).
        assert!(out.grad.data()[0] < 0.0);
        assert!(out.grad.data()[1] > 0.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = cross_entropy(&logits, &[3]);
    }
}
