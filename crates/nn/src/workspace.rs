//! Persistent training workspace for the allocation-free hot path.
//!
//! A [`Workspace`] owns every scratch buffer one SGD step needs — per-layer
//! activations, the loss gradient, the two ping-pong backward buffers, and
//! the flat parameter/gradient views handed to the optimizer. All buffers
//! are grown on first use and reused verbatim afterwards, so
//! [`crate::model::Sequential::train_batch_ws`] touches the allocator only
//! during warm-up. One workspace serves one model at a time; it carries no
//! model state between steps, so reusing it across models (as the federated
//! per-worker arenas do) is safe.

use crate::tensor::Tensor;

/// Reusable scratch buffers for [`crate::model::Sequential::train_batch_ws`]
/// and [`crate::model::Sequential::forward_ws`].
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// `acts[i]` holds the output of layer `i` from the latest forward.
    pub(crate) acts: Vec<Tensor>,
    /// Gradient of the loss w.r.t. the logits.
    pub(crate) loss_grad: Tensor,
    /// Backward ping-pong buffer A.
    pub(crate) grad_a: Tensor,
    /// Backward ping-pong buffer B.
    pub(crate) grad_b: Tensor,
    /// Flat parameter view passed to the optimizer.
    pub(crate) params: Vec<f32>,
    /// Flat gradient view passed to the optimizer.
    pub(crate) grads: Vec<f32>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The model output of the most recent `forward_ws`/`train_batch_ws`
    /// call, if one has happened.
    pub fn last_output(&self) -> Option<&Tensor> {
        self.acts.last()
    }
}
