//! Minimal neural-network substrate for the CollaPois reproduction.
//!
//! The Rust ML ecosystem was not available for this reproduction, so this
//! crate implements exactly what the paper's experiments need, from scratch:
//!
//! * [`tensor`] — a dense row-major `f32` tensor with shape tracking.
//! * [`kernels`] — cache-blocked `f32` primitives (tiled matmul with
//!   transposed-`B` packing, fused softmax + cross-entropy, slice ops)
//!   behind a dispatcher that the `reference` cargo feature reroutes onto
//!   the retained naive oracle implementations.
//! * [`layer`] — Dense, Conv2d (valid, stride 1), MaxPool2d, ReLU, Tanh and
//!   Flatten layers, each with forward/backward passes and parameter access.
//! * [`loss`] — softmax cross-entropy (hard labels) and distillation loss
//!   (soft targets with temperature, used by MetaFed).
//! * [`model`] — [`model::Sequential`], whose parameters are exposed as a
//!   single **flat `Vec<f32>`**. Federated aggregation, Krum distances,
//!   Theorem 2's ‖θ − X‖₂ and every other vector-level operation in the
//!   paper act on this flat representation.
//! * [`optim`] — plain/momentum SGD and a DP-SGD variant (gradient clipping
//!   plus Gaussian noise).
//! * [`workspace`] — persistent scratch buffers for the allocation-free
//!   training path ([`model::Sequential::train_batch_ws`]).
//! * [`zoo`] — the paper's model family: a LeNet-style CNN (2 conv + 2 FC)
//!   and MLP heads (the Sentiment experiments train a small head over frozen
//!   embeddings).
//!
//! # Example
//!
//! ```
//! use collapois_nn::zoo::ModelSpec;
//! use collapois_nn::optim::Sgd;
//! use collapois_nn::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = ModelSpec::mlp(4, &[8], 3).build(&mut rng);
//! let x = Tensor::zeros(&[2, 4]);
//! let labels = [0usize, 2];
//! let mut opt = Sgd::new(0.1);
//! let stats = model.train_batch(&x, &labels, &mut opt);
//! assert!(stats.loss > 0.0);
//! ```

// `deny`, not `forbid`: the explicit-SIMD kernel tier
// (`kernels::simd`) is the single module allowed to opt back in — its
// `core::arch` intrinsics are unsafe by signature even though every call
// site is guarded by runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod kernels;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod tensor;
pub mod workspace;
pub mod zoo;

pub use model::Sequential;
pub use optim::Sgd;
pub use tensor::Tensor;
pub use workspace::Workspace;
pub use zoo::ModelSpec;
