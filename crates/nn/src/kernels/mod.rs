//! Cache-blocked `f32` compute kernels for the nn + aggregation hot paths.
//!
//! Every dense forward/backward matmul, the fused softmax cross-entropy,
//! and the flat-parameter-vector sweeps of the robust aggregation rules in
//! `collapois-fl` route through this module. Two implementations of the
//! same API live side by side:
//!
//! * [`blocked`] — the optimized kernels: GotoBLAS-style tiled matmul with
//!   transposed-`B` packing, 8-wide unrolled axpy microkernels, 4-chain
//!   `f64` reductions, partial-select order statistics, and a fused
//!   softmax + cross-entropy that never materializes a probability tensor.
//! * [`reference`] — the naive textbook formulations, kept alive forever as
//!   the differential-testing oracle (`tests/kernel_equivalence.rs` in the
//!   workspace root pins one to the other).
//! * [`simd`] — the explicit-SIMD tier (AVX2 on x86_64): the blocked
//!   kernels' operation order reproduced with `core::arch` intrinsics, so
//!   it is bitwise identical to [`blocked`] on every function. On hosts
//!   without AVX2 every entry point transparently delegates to [`blocked`].
//!
//! The free functions at this level are thin dispatchers. When the crate is
//! built with the `reference` cargo feature they always call [`reference`]
//! (the whole stack swaps onto the oracle with `cargo test --features
//! reference`; CI runs both). Otherwise the tier is chosen **once per
//! process**: [`simd`] when the host supports it, [`blocked`] when it does
//! not, overridable either way with the environment variable
//! `COLLAPOIS_KERNEL_TIER=scalar|simd` (read at first kernel call and
//! cached — the CI `kernel-tier` job runs the tier-1 suite under both
//! values). [`active_tier`] and [`cpu_features`] expose the decision and
//! the detected ISA extensions for bench metadata.
//!
//! # Numerical contract
//!
//! * Matmul family, element-wise ops (`axpy`, `scale`, the `acc_*`
//!   accumulators), partial-select reductions (`trimmed_mean_inplace`,
//!   `median_inplace`), `softmax_rows` and `softmax_xent`: **bitwise
//!   identical** across implementations — the blocked kernels preserve the
//!   reference's per-element floating-point operation order (see the
//!   module docs of [`blocked`] for why blocking does not change it).
//! * `dot`, `sq_l2_norm`, `sq_l2_distance`, `pairwise_sq_distances`:
//!   reassociated `f64` reductions, deterministic but up to a few `f64`
//!   ulps from the reference.
//! * [`simd`] vs [`blocked`]: bitwise identical on **every** function,
//!   including the reassociated reductions (the SIMD lanes map exactly onto
//!   the blocked tier's four accumulator chains) — so switching tiers never
//!   changes golden fixtures.

pub mod blocked;
pub mod reference;
pub mod simd;

use std::sync::OnceLock;

/// Whether the dispatchers below route to the naive reference oracle
/// (`reference` cargo feature) instead of the optimized tiers.
pub const USING_REFERENCE: bool = cfg!(feature = "reference");

/// The optimized kernel implementation the process-wide dispatchers route
/// to (ignored when the `reference` cargo feature forces the oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// The portable cache-blocked scalar kernels ([`blocked`]).
    Scalar,
    /// The explicit-SIMD kernels ([`simd`]; bitwise identical to
    /// [`blocked`], AVX2 on x86_64).
    Simd,
}

impl KernelTier {
    /// Stable lowercase name (`"scalar"` / `"simd"`), matching the values
    /// `COLLAPOIS_KERNEL_TIER` accepts.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Simd => "simd",
        }
    }
}

static TIER: OnceLock<KernelTier> = OnceLock::new();

/// The tier the dispatchers route to, decided once per process: the value
/// of `COLLAPOIS_KERNEL_TIER` (`"scalar"` or `"simd"`) if set, otherwise
/// [`KernelTier::Simd`] when [`simd::supported`] detects host support and
/// [`KernelTier::Scalar`] when it does not. Forcing `simd` on a host
/// without SIMD support is harmless — the [`simd`] module then delegates to
/// [`blocked`] internally.
///
/// # Panics
///
/// Panics if `COLLAPOIS_KERNEL_TIER` is set to anything other than
/// `scalar` or `simd` (a misspelled tier must never silently run the
/// wrong kernels).
pub fn active_tier() -> KernelTier {
    *TIER.get_or_init(|| match std::env::var("COLLAPOIS_KERNEL_TIER") {
        Ok(v) if v == "scalar" => KernelTier::Scalar,
        Ok(v) if v == "simd" => KernelTier::Simd,
        Ok(v) => panic!("COLLAPOIS_KERNEL_TIER must be \"scalar\" or \"simd\", got {v:?}"),
        Err(_) => {
            if simd::supported() {
                KernelTier::Simd
            } else {
                KernelTier::Scalar
            }
        }
    })
}

/// Comma-separated list of the SIMD ISA extensions detected on the running
/// host (the ones this crate cares about), e.g. `"avx2,fma,avx512f"` —
/// recorded in bench JSON metadata so rows from different machines are
/// comparable. `"none"` when nothing relevant is detected (including every
/// non-x86_64 target).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats: Vec<&str> = Vec::new();
        if std::arch::is_x86_feature_detected!("sse4.2") {
            feats.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        if feats.is_empty() {
            "none".to_string()
        } else {
            feats.join(",")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".to_string()
    }
}

/// Routes one kernel call: reference oracle under the `reference` feature,
/// otherwise the process-wide [`active_tier`].
macro_rules! dispatch {
    ($f:ident ( $($arg:expr),* $(,)? )) => {{
        #[cfg(feature = "reference")]
        {
            reference::$f($($arg),*)
        }
        #[cfg(not(feature = "reference"))]
        {
            match active_tier() {
                KernelTier::Scalar => blocked::$f($($arg),*),
                KernelTier::Simd => simd::$f($($arg),*),
            }
        }
    }};
}

/// `C = A · B` (`A: [m, k]`, `B: [k, n]`, `C: [m, n]`, row-major).
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    dispatch!(matmul(a, b, c, m, k, n))
}

/// `C = A · Bᵀ` with `bt: [n, k]` row-major (dense-layer forward layout).
pub fn matmul_transb(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    dispatch!(matmul_transb(a, bt, c, m, k, n))
}

/// `C += Aᵀ · B` (`A: [m, p]`, `B: [m, q]`, `C: [p, q]`) — weight-gradient
/// accumulation.
pub fn matmul_transa_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, p: usize, q: usize) {
    dispatch!(matmul_transa_acc(a, b, c, m, p, q))
}

/// `y += alpha · x`.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    dispatch!(axpy(y, alpha, x))
}

/// `x *= alpha`.
pub fn scale(x: &mut [f32], alpha: f32) {
    dispatch!(scale(x, alpha))
}

/// `acc += x` (`f64` accumulator vector).
pub fn acc_add(acc: &mut [f64], x: &[f32]) {
    dispatch!(acc_add(acc, x))
}

/// `acc += w · x` with the product in `f64`.
pub fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
    dispatch!(acc_scaled(acc, x, w))
}

/// `acc += (x · s)` with the product rounded to `f32` first (clip-then-
/// average without materializing the clipped copy).
pub fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
    dispatch!(acc_scaled_f32(acc, x, s))
}

/// Dot product in `f64`.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    dispatch!(dot(a, b))
}

/// Squared l2 norm in `f64`.
pub fn sq_l2_norm(a: &[f32]) -> f64 {
    dispatch!(sq_l2_norm(a))
}

/// Squared l2 distance in `f64`.
pub fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
    dispatch!(sq_l2_distance(a, b))
}

/// `n × n` matrix (row-major) of pairwise squared l2 distances.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    dispatch!(pairwise_sq_distances(vectors))
}

/// One row of [`pairwise_sq_distances`] written into a borrowed buffer —
/// the shard-friendly entry point (each row is independent and bitwise
/// identical to the full matrix's row).
pub fn pairwise_sq_distances_row_into(vectors: &[&[f32]], i: usize, row: &mut [f64]) {
    dispatch!(pairwise_sq_distances_row_into(vectors, i, row))
}

/// α-trimmed mean of a scratch buffer (reordered in place): drop the
/// `trim` lowest and highest values, average the rest.
pub fn trimmed_mean_inplace(buf: &mut [f32], trim: usize) -> f32 {
    dispatch!(trimmed_mean_inplace(buf, trim))
}

/// Median of a scratch buffer (reordered in place); even lengths
/// interpolate the two middle order statistics in `f64`.
pub fn median_inplace(buf: &mut [f32]) -> f32 {
    dispatch!(median_inplace(buf))
}

/// In-place numerically-stable softmax over `n` rows of length `k`.
pub fn softmax_rows(data: &mut [f32], n: usize, k: usize) {
    dispatch!(softmax_rows(data, n, k))
}

/// Fused softmax + cross-entropy: writes the batch-mean gradient into
/// `grad`, returns `(summed loss, correct argmax predictions)`.
pub fn softmax_xent(
    logits: &[f32],
    labels: &[usize],
    n: usize,
    k: usize,
    grad: &mut [f32],
) -> (f64, usize) {
    dispatch!(softmax_xent(logits, labels, n, k, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transb_matches_matmul() {
        // B = [2, 3]; Bt = transpose stored [3, 2].
        let a = [1.0f32, 2.0, 3.0, 4.0]; // [2, 2]
        let b = [1.0f32, 0.0, 2.0, 0.0, 1.0, -1.0]; // [2, 3]
        let bt = [1.0f32, 0.0, 0.0, 1.0, 2.0, -1.0]; // [3, 2]
        let mut c1 = [0.0f32; 6];
        let mut c2 = [0.0f32; 6];
        matmul(&a, &b, &mut c1, 2, 2, 3);
        matmul_transb(&a, &bt, &mut c2, 2, 2, 3);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_transa_accumulates() {
        let a = [1.0f32, 2.0, 3.0, 4.0]; // [2, 2] (m=2, p=2)
        let b = [1.0f32, 1.0, 1.0, 1.0]; // [2, 2] (m=2, q=2)
        let mut c = [10.0f32; 4];
        matmul_transa_acc(&a, &b, &mut c, 2, 2, 2);
        // AᵀB = [[1+3, 1+3], [2+4, 2+4]] = [[4,4],[6,6]], plus 10.
        assert_eq!(c, [14.0, 14.0, 16.0, 16.0]);
    }

    #[test]
    fn blocked_matmul_is_bitwise_reference_beyond_tile_bounds() {
        // Dimensions straddling the KC/NC tile edges exercise the packing
        // remainders.
        let (m, k, n) = (3, 130, 300);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.03125)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.0625)
            .collect();
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        assert_eq!(c_blk, c_ref);
    }

    #[test]
    fn slice_ops_basics() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        axpy(&mut y, 2.0, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.5, 2.0, 2.5]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_l2_norm(&[3.0, 4.0]), 25.0);
        assert_eq!(sq_l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let mut acc = vec![0.0f64; 2];
        acc_add(&mut acc, &[1.0, 2.0]);
        acc_scaled(&mut acc, &[2.0, 2.0], 0.5);
        assert_eq!(acc, vec![2.0, 3.0]);
        acc_scaled_f32(&mut acc, &[4.0, 4.0], 0.25);
        assert_eq!(acc, vec![3.0, 4.0]);
    }

    #[test]
    fn order_statistics() {
        let mut buf = vec![5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median_inplace(&mut buf), 3.0);
        let mut buf = vec![4.0f32, 1.0, 2.0, 3.0];
        assert_eq!(median_inplace(&mut buf), 2.5);
        let mut buf = vec![-1000.0f32, 1.0, 3.0, 1000.0];
        assert_eq!(trimmed_mean_inplace(&mut buf, 1), 2.0);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        assert_eq!(trimmed_mean_inplace(&mut buf, 0), 2.0);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let d = pairwise_sq_distances(&refs);
        let n = 3;
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(d[i * n + j], d[j * n + i]);
            }
        }
        assert_eq!(d[1], 25.0);
    }

    #[test]
    fn fused_softmax_xent_matches_two_pass_reference() {
        let n = 3;
        let k = 4;
        let logits: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let labels = [2usize, 0, 3];
        let mut g_blk = vec![0.0f32; n * k];
        let mut g_ref = vec![0.0f32; n * k];
        let (l_blk, c_blk) = blocked::softmax_xent(&logits, &labels, n, k, &mut g_blk);
        let (l_ref, c_ref) = reference::softmax_xent(&logits, &labels, n, k, &mut g_ref);
        assert_eq!(g_blk, g_ref);
        assert_eq!(l_blk, l_ref);
        assert_eq!(c_blk, c_ref);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_length_mismatch() {
        let mut y = vec![0.0f32; 2];
        axpy(&mut y, 1.0, &[1.0]);
    }
}
