//! Cache-blocked `f32` compute kernels for the nn + aggregation hot paths.
//!
//! Every dense forward/backward matmul, the fused softmax cross-entropy,
//! and the flat-parameter-vector sweeps of the robust aggregation rules in
//! `collapois-fl` route through this module. Two implementations of the
//! same API live side by side:
//!
//! * [`blocked`] — the optimized kernels: GotoBLAS-style tiled matmul with
//!   transposed-`B` packing, 8-wide unrolled axpy microkernels, 4-chain
//!   `f64` reductions, partial-select order statistics, and a fused
//!   softmax + cross-entropy that never materializes a probability tensor.
//! * [`reference`] — the naive textbook formulations, kept alive forever as
//!   the differential-testing oracle (`tests/kernel_equivalence.rs` in the
//!   workspace root pins one to the other).
//!
//! The free functions at this level are thin dispatchers: they call
//! [`blocked`] by default and [`reference`] when the crate is built with
//! the `reference` cargo feature, so the entire stack — tensors, layers,
//! losses, aggregation rules — can be swapped onto the oracle with
//! `cargo test --features reference` (CI runs both).
//!
//! # Numerical contract
//!
//! * Matmul family, element-wise ops (`axpy`, `scale`, the `acc_*`
//!   accumulators), partial-select reductions (`trimmed_mean_inplace`,
//!   `median_inplace`), `softmax_rows` and `softmax_xent`: **bitwise
//!   identical** between the two implementations — the blocked kernels
//!   preserve the reference's per-element floating-point operation order
//!   (see the module docs of [`blocked`] for why blocking does not change
//!   it).
//! * `dot`, `sq_l2_norm`, `sq_l2_distance`, `pairwise_sq_distances`:
//!   reassociated `f64` reductions, deterministic but up to a few `f64`
//!   ulps from the reference.

pub mod blocked;
pub mod reference;

#[cfg(not(feature = "reference"))]
use blocked as imp;
#[cfg(feature = "reference")]
use reference as imp;

/// Whether the dispatchers below route to the naive reference oracle
/// (`reference` cargo feature) instead of the blocked kernels.
pub const USING_REFERENCE: bool = cfg!(feature = "reference");

/// `C = A · B` (`A: [m, k]`, `B: [k, n]`, `C: [m, n]`, row-major).
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    imp::matmul(a, b, c, m, k, n)
}

/// `C = A · Bᵀ` with `bt: [n, k]` row-major (dense-layer forward layout).
pub fn matmul_transb(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    imp::matmul_transb(a, bt, c, m, k, n)
}

/// `C += Aᵀ · B` (`A: [m, p]`, `B: [m, q]`, `C: [p, q]`) — weight-gradient
/// accumulation.
pub fn matmul_transa_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, p: usize, q: usize) {
    imp::matmul_transa_acc(a, b, c, m, p, q)
}

/// `y += alpha · x`.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    imp::axpy(y, alpha, x)
}

/// `x *= alpha`.
pub fn scale(x: &mut [f32], alpha: f32) {
    imp::scale(x, alpha)
}

/// `acc += x` (`f64` accumulator vector).
pub fn acc_add(acc: &mut [f64], x: &[f32]) {
    imp::acc_add(acc, x)
}

/// `acc += w · x` with the product in `f64`.
pub fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
    imp::acc_scaled(acc, x, w)
}

/// `acc += (x · s)` with the product rounded to `f32` first (clip-then-
/// average without materializing the clipped copy).
pub fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
    imp::acc_scaled_f32(acc, x, s)
}

/// Dot product in `f64`.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    imp::dot(a, b)
}

/// Squared l2 norm in `f64`.
pub fn sq_l2_norm(a: &[f32]) -> f64 {
    imp::sq_l2_norm(a)
}

/// Squared l2 distance in `f64`.
pub fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
    imp::sq_l2_distance(a, b)
}

/// `n × n` matrix (row-major) of pairwise squared l2 distances.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    imp::pairwise_sq_distances(vectors)
}

/// One row of [`pairwise_sq_distances`] written into a borrowed buffer —
/// the shard-friendly entry point (each row is independent and bitwise
/// identical to the full matrix's row).
pub fn pairwise_sq_distances_row_into(vectors: &[&[f32]], i: usize, row: &mut [f64]) {
    imp::pairwise_sq_distances_row_into(vectors, i, row)
}

/// α-trimmed mean of a scratch buffer (reordered in place): drop the
/// `trim` lowest and highest values, average the rest.
pub fn trimmed_mean_inplace(buf: &mut [f32], trim: usize) -> f32 {
    imp::trimmed_mean_inplace(buf, trim)
}

/// Median of a scratch buffer (reordered in place); even lengths
/// interpolate the two middle order statistics in `f64`.
pub fn median_inplace(buf: &mut [f32]) -> f32 {
    imp::median_inplace(buf)
}

/// In-place numerically-stable softmax over `n` rows of length `k`.
pub fn softmax_rows(data: &mut [f32], n: usize, k: usize) {
    imp::softmax_rows(data, n, k)
}

/// Fused softmax + cross-entropy: writes the batch-mean gradient into
/// `grad`, returns `(summed loss, correct argmax predictions)`.
pub fn softmax_xent(
    logits: &[f32],
    labels: &[usize],
    n: usize,
    k: usize,
    grad: &mut [f32],
) -> (f64, usize) {
    imp::softmax_xent(logits, labels, n, k, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transb_matches_matmul() {
        // B = [2, 3]; Bt = transpose stored [3, 2].
        let a = [1.0f32, 2.0, 3.0, 4.0]; // [2, 2]
        let b = [1.0f32, 0.0, 2.0, 0.0, 1.0, -1.0]; // [2, 3]
        let bt = [1.0f32, 0.0, 0.0, 1.0, 2.0, -1.0]; // [3, 2]
        let mut c1 = [0.0f32; 6];
        let mut c2 = [0.0f32; 6];
        matmul(&a, &b, &mut c1, 2, 2, 3);
        matmul_transb(&a, &bt, &mut c2, 2, 2, 3);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_transa_accumulates() {
        let a = [1.0f32, 2.0, 3.0, 4.0]; // [2, 2] (m=2, p=2)
        let b = [1.0f32, 1.0, 1.0, 1.0]; // [2, 2] (m=2, q=2)
        let mut c = [10.0f32; 4];
        matmul_transa_acc(&a, &b, &mut c, 2, 2, 2);
        // AᵀB = [[1+3, 1+3], [2+4, 2+4]] = [[4,4],[6,6]], plus 10.
        assert_eq!(c, [14.0, 14.0, 16.0, 16.0]);
    }

    #[test]
    fn blocked_matmul_is_bitwise_reference_beyond_tile_bounds() {
        // Dimensions straddling the KC/NC tile edges exercise the packing
        // remainders.
        let (m, k, n) = (3, 130, 300);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.03125)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.0625)
            .collect();
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        assert_eq!(c_blk, c_ref);
    }

    #[test]
    fn slice_ops_basics() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        axpy(&mut y, 2.0, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.5, 2.0, 2.5]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_l2_norm(&[3.0, 4.0]), 25.0);
        assert_eq!(sq_l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let mut acc = vec![0.0f64; 2];
        acc_add(&mut acc, &[1.0, 2.0]);
        acc_scaled(&mut acc, &[2.0, 2.0], 0.5);
        assert_eq!(acc, vec![2.0, 3.0]);
        acc_scaled_f32(&mut acc, &[4.0, 4.0], 0.25);
        assert_eq!(acc, vec![3.0, 4.0]);
    }

    #[test]
    fn order_statistics() {
        let mut buf = vec![5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median_inplace(&mut buf), 3.0);
        let mut buf = vec![4.0f32, 1.0, 2.0, 3.0];
        assert_eq!(median_inplace(&mut buf), 2.5);
        let mut buf = vec![-1000.0f32, 1.0, 3.0, 1000.0];
        assert_eq!(trimmed_mean_inplace(&mut buf, 1), 2.0);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        assert_eq!(trimmed_mean_inplace(&mut buf, 0), 2.0);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let d = pairwise_sq_distances(&refs);
        let n = 3;
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(d[i * n + j], d[j * n + i]);
            }
        }
        assert_eq!(d[1], 25.0);
    }

    #[test]
    fn fused_softmax_xent_matches_two_pass_reference() {
        let n = 3;
        let k = 4;
        let logits: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let labels = [2usize, 0, 3];
        let mut g_blk = vec![0.0f32; n * k];
        let mut g_ref = vec![0.0f32; n * k];
        let (l_blk, c_blk) = blocked::softmax_xent(&logits, &labels, n, k, &mut g_blk);
        let (l_ref, c_ref) = reference::softmax_xent(&logits, &labels, n, k, &mut g_ref);
        assert_eq!(g_blk, g_ref);
        assert_eq!(l_blk, l_ref);
        assert_eq!(c_blk, c_ref);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_length_mismatch() {
        let mut y = vec![0.0f32; 2];
        axpy(&mut y, 1.0, &[1.0]);
    }
}
