//! Cache-blocked, unrolled implementations of the hot-path primitives.
//!
//! # Blocking scheme
//!
//! The matmul family uses a two-level GotoBLAS-style decomposition: the
//! `B` operand is packed one `KC × NC` tile at a time into a contiguous
//! thread-local scratch buffer (transposing on the fly for `matmul_transb`,
//! whose `B` arrives as `[n, k]` — "transposed-B packing"), and the
//! microkernel streams the packed rows through a 4-deep fused axpy into the
//! `C` row (four `k` steps per load/store of `C`, left-associated so the
//! per-element order matches four sequential axpys exactly). `KC × NC × 4`
//! bytes ≈ 128 KiB keeps the packed tile L2-resident while `C`/`A` rows
//! stream through L1.
//!
//! # Reduction-order guarantees
//!
//! Every `f32` output element of the matmul family is produced by a single
//! accumulator visiting `k` in ascending order — exactly the order of the
//! naive triple loop in [`super::reference`] — so the blocked kernels are
//! **bitwise identical** to the reference, not merely close. The same holds
//! for all element-wise ops and for the partial-select reductions (which
//! sum the kept values in ascending sorted order, as the reference does).
//!
//! The only functions allowed to reassociate are the `f64` reductions
//! `dot` / `sq_l2_norm` / `sq_l2_distance` (and `pairwise_sq_distances` on
//! top of them), which run four independent accumulator chains for
//! instruction-level parallelism and combine them as
//! `((s0 + s1) + (s2 + s3)) + tail`. The combine tree is fixed, so results
//! are deterministic run-to-run; they differ from the reference by at most
//! a few `f64` ulps (see `tests/kernel_equivalence.rs` for the tolerance
//! policy).

use std::cell::RefCell;

/// Depth (`k`) tile of the packed `B` panel.
const KC: usize = 128;
/// Column (`n`) tile of the packed `B` panel.
const NC: usize = 256;

thread_local! {
    /// Scratch buffer for packed `B` tiles (at most `KC * NC` floats).
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Fused 4-step axpy: `y = (((y + a0·x0) + a1·x1) + a2·x2) + a3·x3`,
/// element-wise with that exact left-associated order — bitwise identical
/// to four sequential [`axpy_unrolled`] calls, but with one load/store of
/// `y` instead of four. Slices must share a length (private microkernel;
/// callers guarantee it).
#[inline(always)]
fn axpy4_unrolled(y: &mut [f32], al: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) {
    for ((((yv, &v0), &v1), &v2), &v3) in y.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        let mut s = *yv;
        s += al[0] * v0;
        s += al[1] * v1;
        s += al[2] * v2;
        s += al[3] * v3;
        *yv = s;
    }
}

/// 8-wide unrolled `y += alpha * x` over equal-length slices (no length
/// check; private microkernel).
#[inline(always)]
fn axpy_unrolled(y: &mut [f32], alpha: f32, x: &[f32]) {
    let mut yc = y.chunks_exact_mut(8);
    let mut xc = x.chunks_exact(8);
    for (yv, xv) in (&mut yc).zip(&mut xc) {
        yv[0] += alpha * xv[0];
        yv[1] += alpha * xv[1];
        yv[2] += alpha * xv[2];
        yv[3] += alpha * xv[3];
        yv[4] += alpha * xv[4];
        yv[5] += alpha * xv[5];
        yv[6] += alpha * xv[6];
        yv[7] += alpha * xv[7];
    }
    for (yv, &xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yv += alpha * xv;
    }
}

/// Shared tiled core: `C += A · P` where `P` is the `[k, n]` operand
/// delivered tile-by-tile through `pack_tile(scratch, kc, kcb, jc, ncb)`,
/// which must write the `kcb × ncb` tile row-major into `scratch`.
///
/// `C` must be zeroed by the caller; per output element the `k` dimension
/// is visited in ascending order (`jc` fixed per element, `kc` ascending,
/// rows within a tile ascending).
fn gemm_tiled<F>(a: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, mut pack_tile: F)
where
    F: FnMut(&mut [f32], usize, usize, usize, usize),
{
    PACK.with(|p| {
        let mut pack = p.borrow_mut();
        pack.resize(KC * NC, 0.0);
        for jc in (0..n).step_by(NC) {
            let ncb = NC.min(n - jc);
            for kc in (0..k).step_by(KC) {
                let kcb = KC.min(k - kc);
                pack_tile(&mut pack, kc, kcb, jc, ncb);
                for i in 0..m {
                    let arow = &a[i * k + kc..i * k + kc + kcb];
                    let crow = &mut c[i * n + jc..i * n + jc + ncb];
                    // Four packed rows per pass (`axpy4_unrolled` keeps the
                    // per-element order of four sequential axpys), then the
                    // `kcb % 4` stragglers one at a time.
                    let mut t = 0;
                    while t + 4 <= kcb {
                        let rows = &pack[t * ncb..(t + 4) * ncb];
                        let (x0, rest) = rows.split_at(ncb);
                        let (x1, rest) = rest.split_at(ncb);
                        let (x2, x3) = rest.split_at(ncb);
                        axpy4_unrolled(
                            crow,
                            [arow[t], arow[t + 1], arow[t + 2], arow[t + 3]],
                            x0,
                            x1,
                            x2,
                            x3,
                        );
                        t += 4;
                    }
                    while t < kcb {
                        axpy_unrolled(crow, arow[t], &pack[t * ncb..(t + 1) * ncb]);
                        t += 1;
                    }
                }
            }
        }
    });
}

/// `C = A · B` (`A: [m, k]`, `B: [k, n]`, `C: [m, n]`), cache-blocked with
/// row-panel packing of `B`. Bitwise identical to
/// [`super::reference::matmul`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul: A length");
    assert_eq!(b.len(), k * n, "matmul: B length");
    assert_eq!(c.len(), m * n, "matmul: C length");
    c.fill(0.0);
    gemm_tiled(a, c, m, k, n, |pack, kc, kcb, jc, ncb| {
        for t in 0..kcb {
            let src = &b[(kc + t) * n + jc..(kc + t) * n + jc + ncb];
            pack[t * ncb..(t + 1) * ncb].copy_from_slice(src);
        }
    });
}

/// `C = A · Bᵀ` with `bt: [n, k]` row-major, cache-blocked with
/// transposed-`B` packing (each tile of `bt` is transposed into `[k, n]`
/// panel layout while packing). Bitwise identical to
/// [`super::reference::matmul_transb`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transb(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_transb: A length");
    assert_eq!(bt.len(), n * k, "matmul_transb: Bt length");
    assert_eq!(c.len(), m * n, "matmul_transb: C length");
    c.fill(0.0);
    gemm_tiled(a, c, m, k, n, |pack, kc, kcb, jc, ncb| {
        for j in 0..ncb {
            let src = &bt[(jc + j) * k + kc..(jc + j) * k + kc + kcb];
            for (t, &v) in src.iter().enumerate() {
                pack[t * ncb + j] = v;
            }
        }
    });
}

/// `C += Aᵀ · B` (`A: [m, p]`, `B: [m, q]`, `C: [p, q]`), column-blocked
/// rank-1 updates. Bitwise identical to
/// [`super::reference::matmul_transa_acc`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transa_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, p: usize, q: usize) {
    assert_eq!(a.len(), m * p, "matmul_transa_acc: A length");
    assert_eq!(b.len(), m * q, "matmul_transa_acc: B length");
    assert_eq!(c.len(), p * q, "matmul_transa_acc: C length");
    for qc in (0..q).step_by(NC) {
        let qcb = NC.min(q - qc);
        // Four batch rows per pass: each `C` element still accumulates its
        // batch contributions in ascending order (`axpy4_unrolled` is
        // bitwise identical to four sequential rank-1 updates).
        let mut t = 0;
        while t + 4 <= m {
            let b0 = &b[t * q + qc..t * q + qc + qcb];
            let b1 = &b[(t + 1) * q + qc..(t + 1) * q + qc + qcb];
            let b2 = &b[(t + 2) * q + qc..(t + 2) * q + qc + qcb];
            let b3 = &b[(t + 3) * q + qc..(t + 3) * q + qc + qcb];
            for i in 0..p {
                let al = [
                    a[t * p + i],
                    a[(t + 1) * p + i],
                    a[(t + 2) * p + i],
                    a[(t + 3) * p + i],
                ];
                axpy4_unrolled(&mut c[i * q + qc..i * q + qc + qcb], al, b0, b1, b2, b3);
            }
            t += 4;
        }
        while t < m {
            let brow = &b[t * q + qc..t * q + qc + qcb];
            for i in 0..p {
                let av = a[t * p + i];
                axpy_unrolled(&mut c[i * q + qc..i * q + qc + qcb], av, brow);
            }
            t += 1;
        }
    }
}

/// `y += alpha · x`, 8-wide unrolled. Element-wise, so bitwise identical to
/// [`super::reference::axpy`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    axpy_unrolled(y, alpha, x);
}

/// `x *= alpha`, element-wise (bitwise identical to the reference).
pub fn scale(x: &mut [f32], alpha: f32) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// `acc += x` with per-element `f64` accumulation, 4-wide unrolled.
/// Element-wise (each coordinate has its own accumulator), so bitwise
/// identical to [`super::reference::acc_add`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_add(acc: &mut [f64], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "acc_add: length mismatch");
    let mut ac = acc.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (av, xv) in (&mut ac).zip(&mut xc) {
        av[0] += xv[0] as f64;
        av[1] += xv[1] as f64;
        av[2] += xv[2] as f64;
        av[3] += xv[3] as f64;
    }
    for (a, &v) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += v as f64;
    }
}

/// `acc += w · x` in `f64`, 4-wide unrolled (bitwise identical to the
/// reference — element-wise).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
    assert_eq!(acc.len(), x.len(), "acc_scaled: length mismatch");
    let mut ac = acc.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (av, xv) in (&mut ac).zip(&mut xc) {
        av[0] += w * xv[0] as f64;
        av[1] += w * xv[1] as f64;
        av[2] += w * xv[2] as f64;
        av[3] += w * xv[3] as f64;
    }
    for (a, &v) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += w * v as f64;
    }
}

/// `acc += (x · s)` with the product rounded to `f32` first (bitwise
/// identical to the reference — element-wise).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
    assert_eq!(acc.len(), x.len(), "acc_scaled_f32: length mismatch");
    let mut ac = acc.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (av, xv) in (&mut ac).zip(&mut xc) {
        av[0] += (xv[0] * s) as f64;
        av[1] += (xv[1] * s) as f64;
        av[2] += (xv[2] * s) as f64;
        av[3] += (xv[3] * s) as f64;
    }
    for (a, &v) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += (v * s) as f64;
    }
}

/// Combines four partial `f64` sums and a tail with the fixed tree
/// `((s0 + s1) + (s2 + s3)) + tail`.
#[inline(always)]
fn combine4(s: [f64; 4], tail: f64) -> f64 {
    ((s[0] + s[1]) + (s[2] + s[3])) + tail
}

/// Dot product with four independent `f64` accumulator chains
/// (reassociated reduction — within a few ulps of the reference).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut s = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (xa, xb) in (&mut ac).zip(&mut bc) {
        s[0] += xa[0] as f64 * xb[0] as f64;
        s[1] += xa[1] as f64 * xb[1] as f64;
        s[2] += xa[2] as f64 * xb[2] as f64;
        s[3] += xa[3] as f64 * xb[3] as f64;
    }
    let mut tail = 0.0f64;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x as f64 * y as f64;
    }
    combine4(s, tail)
}

/// Squared l2 norm with four accumulator chains (reassociated reduction).
pub fn sq_l2_norm(a: &[f32]) -> f64 {
    let mut s = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    for xa in &mut ac {
        s[0] += xa[0] as f64 * xa[0] as f64;
        s[1] += xa[1] as f64 * xa[1] as f64;
        s[2] += xa[2] as f64 * xa[2] as f64;
        s[3] += xa[3] as f64 * xa[3] as f64;
    }
    let mut tail = 0.0f64;
    for &x in ac.remainder() {
        tail += x as f64 * x as f64;
    }
    combine4(s, tail)
}

/// Squared l2 distance with four accumulator chains (reassociated
/// reduction). Exactly symmetric: `sq_l2_distance(a, b) ==
/// sq_l2_distance(b, a)` bitwise, since `(x − y)² == (y − x)²`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_l2_distance: length mismatch");
    let mut s = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (xa, xb) in (&mut ac).zip(&mut bc) {
        let d0 = xa[0] as f64 - xb[0] as f64;
        let d1 = xa[1] as f64 - xb[1] as f64;
        let d2 = xa[2] as f64 - xb[2] as f64;
        let d3 = xa[3] as f64 - xb[3] as f64;
        s[0] += d0 * d0;
        s[1] += d1 * d1;
        s[2] += d2 * d2;
        s[3] += d3 * d3;
    }
    let mut tail = 0.0f64;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        let d = x as f64 - y as f64;
        tail += d * d;
    }
    combine4(s, tail)
}

/// Pairwise squared l2 distances as an `n × n` matrix: each unordered pair
/// is computed **once** and mirrored (the reference recomputes both
/// triangles — half the work here, identical values because the distance
/// kernel is exactly symmetric).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    let n = vectors.len();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d2 = sq_l2_distance(vectors[i], vectors[j]);
            out[i * n + j] = d2;
            out[j * n + i] = d2;
        }
    }
    out
}

/// One row of [`pairwise_sq_distances`] written into `row` (length `n`):
/// `row[j] = ‖v_i − v_j‖²`, diagonal zero. This is the sharded entry point
/// for parallel Krum: each row recomputes its distances directly instead of
/// mirroring the triangle, which is bitwise identical because
/// [`sq_l2_distance`] is exactly symmetric.
///
/// # Panics
///
/// Panics if `row.len() != vectors.len()` or the vectors have different
/// lengths.
pub fn pairwise_sq_distances_row_into(vectors: &[&[f32]], i: usize, row: &mut [f64]) {
    let n = vectors.len();
    assert_eq!(row.len(), n, "pairwise row: length mismatch");
    for (j, slot) in row.iter_mut().enumerate() {
        *slot = if i == j {
            0.0
        } else {
            sq_l2_distance(vectors[i], vectors[j])
        };
    }
}

// `#[inline(always)]`: passed by value into `sort_unstable_by` /
// `select_nth_unstable_by`; without the hint the fn item can land in a
// different codegen unit and every comparison becomes an indirect call
// (measured ~2.5× slower sorts).
#[inline(always)]
fn cmp_finite(a: &f32, b: &f32) -> std::cmp::Ordering {
    a.partial_cmp(b).expect("finite values")
}

/// Below this length a single full sort beats two `select_nth` passes plus
/// the middle sort — measured crossover is around 500 elements at β = 0.2.
/// Both paths produce bitwise-identical results, so the cutoff is purely a
/// speed heuristic.
const TRIM_SELECT_CUTOFF: usize = 512;

/// α-trimmed mean via partial selection: two `select_nth_unstable` passes
/// isolate the kept middle, which is then sorted and summed in ascending
/// order — the same multiset in the same summation order as the reference's
/// full sort, hence bitwise identical, without sorting the trimmed tails.
/// Small buffers skip the selection and sort outright.
///
/// # Panics
///
/// Panics if `buf` is empty, contains NaN, or `2 * trim >= buf.len()`.
pub fn trimmed_mean_inplace(buf: &mut [f32], trim: usize) -> f32 {
    assert!(!buf.is_empty(), "trimmed_mean_inplace: empty buffer");
    assert!(
        2 * trim < buf.len(),
        "trimmed_mean_inplace: trim {} too large for {} values",
        trim,
        buf.len()
    );
    let n = buf.len();
    if n <= TRIM_SELECT_CUTOFF {
        buf.sort_unstable_by(cmp_finite);
        let kept = &buf[trim..n - trim];
        let sum: f64 = kept.iter().map(|&v| v as f64).sum();
        return (sum / kept.len() as f64) as f32;
    }
    if trim > 0 {
        // Everything below index `trim` is a dropped low value...
        buf.select_nth_unstable_by(trim - 1, cmp_finite);
        // ...and within the rest, everything past the kept range is a
        // dropped high value.
        let rest = &mut buf[trim..];
        let keep = n - 2 * trim;
        if keep < rest.len() {
            rest.select_nth_unstable_by(keep - 1, cmp_finite);
        }
    }
    let kept = &mut buf[trim..n - trim];
    kept.sort_unstable_by(cmp_finite);
    let sum: f64 = kept.iter().map(|&v| v as f64).sum();
    (sum / kept.len() as f64) as f32
}

/// Coordinate median via `select_nth_unstable` (no full sort): odd length
/// selects the middle directly; even length selects the upper middle and
/// takes the maximum of the lower partition. Bitwise identical to the
/// reference (same two order statistics, same `f64` interpolation).
///
/// # Panics
///
/// Panics if `buf` is empty or contains NaN.
pub fn median_inplace(buf: &mut [f32]) -> f32 {
    assert!(!buf.is_empty(), "median_inplace: empty buffer");
    let n = buf.len();
    if n % 2 == 1 {
        *buf.select_nth_unstable_by(n / 2, cmp_finite).1
    } else {
        let (lo_part, hi, _) = buf.select_nth_unstable_by(n / 2, cmp_finite);
        let hi = *hi as f64;
        let lo = lo_part.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
        (lo * 0.5 + hi * 0.5) as f32
    }
}

/// In-place row softmax — identical pass structure to the reference (the
/// max-subtract / exp / divide sequence has no reassociation freedom
/// without changing results, so the fusion win lives in
/// [`softmax_xent`], which avoids materializing a separate probability
/// tensor).
///
/// # Panics
///
/// Panics if `data.len() != n * k`.
pub fn softmax_rows(data: &mut [f32], n: usize, k: usize) {
    assert_eq!(data.len(), n * k, "softmax_rows: shape mismatch");
    for i in 0..n {
        let row = &mut data[i * k..(i + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Fused softmax + cross-entropy: one pass per row computes the
/// max-subtracted exponentials **once**, normalizes them in place in
/// `grad`, and immediately derives the loss term, the argmax and the
/// one-hot-subtracted, `1/n`-scaled gradient — no intermediate probability
/// tensor, no second sweep over the batch. Every per-element operation
/// (exp, divide, subtract, scale) matches the reference's, so the output
/// is bitwise identical.
///
/// Returns `(summed loss, correct argmax predictions)`.
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
pub fn softmax_xent(
    logits: &[f32],
    labels: &[usize],
    n: usize,
    k: usize,
    grad: &mut [f32],
) -> (f64, usize) {
    assert_eq!(logits.len(), n * k, "softmax_xent: logits shape");
    assert_eq!(grad.len(), n * k, "softmax_xent: grad shape");
    assert_eq!(labels.len(), n, "softmax_xent: labels/batch mismatch");
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        let zrow = &logits[i * k..(i + 1) * k];
        let grow = &mut grad[i * k..(i + 1) * k];
        let max = zrow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (g, &z) in grow.iter_mut().zip(zrow) {
            *g = (z - max).exp();
            sum += *g;
        }
        for g in grow.iter_mut() {
            *g /= sum;
        }
        loss += -(grow[y].max(1e-12) as f64).ln();
        if crate::loss::argmax(grow) == y {
            correct += 1;
        }
        grow[y] -= 1.0;
        for g in grow.iter_mut() {
            *g *= inv_n;
        }
    }
    (loss, correct)
}
