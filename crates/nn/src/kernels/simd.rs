//! Explicit-SIMD implementations of the hot-path primitives (AVX2 on
//! x86_64, with a transparent delegation to [`super::blocked`] everywhere
//! else).
//!
//! # Determinism contract
//!
//! This tier is **bitwise identical** to [`super::blocked`] on every
//! function, including the reassociated `f64` reductions. That is possible
//! because the SIMD formulation mirrors the blocked kernels' operation
//! order exactly instead of inventing its own:
//!
//! * Element-wise ops (`axpy`, the fused 4-step axpy microkernel, `scale`,
//!   the `acc_*` accumulators, the softmax divides): each vector lane is an
//!   independent per-element chain, so an 8-lane `f32` (or 4-lane `f64`)
//!   step performs exactly the scalar per-element sequence. No FMA is used
//!   anywhere — the blocked kernels round after every multiply, and a fused
//!   multiply-add would change that rounding.
//! * `dot` / `sq_l2_norm` / `sq_l2_distance`: the blocked kernels already
//!   run four independent `f64` accumulator chains over `chunks_exact(4)`.
//!   The four lanes of one `__m256d` accumulator *are* those four chains —
//!   lane `i` sees exactly the elements chain `i` saw, in the same order —
//!   and the final horizontal combine uses the same fixed
//!   `((s0 + s1) + (s2 + s3)) + tail` tree.
//! * Matmul family: the same GotoBLAS-style `KC × NC` tiling as the blocked
//!   tier, with the 4-deep fused axpy microkernel vectorized 8 lanes at a
//!   time (per output element the `k` dimension is still visited in the
//!   identical ascending order).
//! * `softmax_rows` / `softmax_xent`: the max fold, `exp` and the running
//!   `f32` sum stay scalar (vectorizing the sum would reassociate it; `exp`
//!   must be the libm call the other tiers use); only the per-element
//!   normalizing divide and `1/n` scale are vectorized.
//! * Order statistics (`trimmed_mean_inplace`, `median_inplace`) are
//!   selection problems with no profitable lane structure — they delegate
//!   to the blocked implementations outright.
//!
//! Every AVX2 call site is guarded by `is_x86_feature_detected!` (cached by
//! `std` after the first CPUID), so calling any function in this module is
//! always safe: hosts without AVX2 — and non-x86_64 targets entirely — take
//! the blocked path. Tier selection for the public dispatchers lives in
//! [`super`] (`COLLAPOIS_KERNEL_TIER`); this module is also callable
//! directly, which is how `tests/kernel_equivalence.rs` pins it to the
//! blocked tier regardless of the process-wide tier choice.

// The one module in the crate allowed to use `unsafe`: `core::arch`
// loads/stores on raw pointers. Kept auditable by requiring every unsafe
// operation to sit in an explicit block even inside `unsafe fn`s.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use super::blocked;

/// Whether the explicit-SIMD paths in this module are usable on the running
/// host (x86_64 with AVX2). When `false` every entry point is a synonym for
/// its [`super::blocked`] counterpart.
#[inline]
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `C = A · B` (`A: [m, k]`, `B: [k, n]`, `C: [m, n]`), cache-blocked with
/// row-panel packing of `B` and an 8-lane microkernel. Bitwise identical to
/// [`super::blocked::matmul`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        assert_eq!(a.len(), m * k, "matmul: A length");
        assert_eq!(b.len(), k * n, "matmul: B length");
        assert_eq!(c.len(), m * n, "matmul: C length");
        c.fill(0.0);
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe {
            x86::gemm_tiled(a, c, m, k, n, |pack, kc, kcb, jc, ncb| {
                for t in 0..kcb {
                    let src = &b[(kc + t) * n + jc..(kc + t) * n + jc + ncb];
                    pack[t * ncb..(t + 1) * ncb].copy_from_slice(src);
                }
            });
        }
        return;
    }
    blocked::matmul(a, b, c, m, k, n)
}

/// `C = A · Bᵀ` with `bt: [n, k]` row-major, transposed-`B` packing.
/// Bitwise identical to [`super::blocked::matmul_transb`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transb(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        assert_eq!(a.len(), m * k, "matmul_transb: A length");
        assert_eq!(bt.len(), n * k, "matmul_transb: Bt length");
        assert_eq!(c.len(), m * n, "matmul_transb: C length");
        c.fill(0.0);
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe {
            x86::gemm_tiled(a, c, m, k, n, |pack, kc, kcb, jc, ncb| {
                for j in 0..ncb {
                    let src = &bt[(jc + j) * k + kc..(jc + j) * k + kc + kcb];
                    for (t, &v) in src.iter().enumerate() {
                        pack[t * ncb + j] = v;
                    }
                }
            });
        }
        return;
    }
    blocked::matmul_transb(a, bt, c, m, k, n)
}

/// `C += Aᵀ · B` (`A: [m, p]`, `B: [m, q]`, `C: [p, q]`), column-blocked
/// rank-1 updates with the 8-lane microkernel. Bitwise identical to
/// [`super::blocked::matmul_transa_acc`].
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transa_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, p: usize, q: usize) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        assert_eq!(a.len(), m * p, "matmul_transa_acc: A length");
        assert_eq!(b.len(), m * q, "matmul_transa_acc: B length");
        assert_eq!(c.len(), p * q, "matmul_transa_acc: C length");
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::matmul_transa_acc(a, b, c, m, p, q) };
        return;
    }
    blocked::matmul_transa_acc(a, b, c, m, p, q)
}

/// `y += alpha · x`, 8-lane. Bitwise identical to
/// [`super::blocked::axpy`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::axpy(y, alpha, x) };
        return;
    }
    blocked::axpy(y, alpha, x)
}

/// `x *= alpha`, 8-lane (bitwise identical to the blocked tier).
pub fn scale(x: &mut [f32], alpha: f32) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::scale(x, alpha) };
        return;
    }
    blocked::scale(x, alpha)
}

/// `acc += x` with per-element `f64` accumulation, 4-lane widening loads.
/// Bitwise identical to [`super::blocked::acc_add`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_add(acc: &mut [f64], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "acc_add: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::acc_add(acc, x) };
        return;
    }
    blocked::acc_add(acc, x)
}

/// `acc += w · x` with the product in `f64`, 4-lane. Bitwise identical to
/// [`super::blocked::acc_scaled`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
    assert_eq!(acc.len(), x.len(), "acc_scaled: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::acc_scaled(acc, x, w) };
        return;
    }
    blocked::acc_scaled(acc, x, w)
}

/// `acc += (x · s)` with the product rounded to `f32` first, 4-lane.
/// Bitwise identical to [`super::blocked::acc_scaled_f32`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
    assert_eq!(acc.len(), x.len(), "acc_scaled_f32: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        unsafe { x86::acc_scaled_f32(acc, x, s) };
        return;
    }
    blocked::acc_scaled_f32(acc, x, s)
}

/// Dot product: one `__m256d` accumulator whose four lanes are exactly the
/// blocked tier's four `f64` chains, combined with the same fixed tree.
/// Bitwise identical to [`super::blocked::dot`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        return unsafe { x86::dot(a, b) };
    }
    blocked::dot(a, b)
}

/// Squared l2 norm (lane-mapped 4-chain reduction, bitwise identical to
/// [`super::blocked::sq_l2_norm`]).
pub fn sq_l2_norm(a: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        return unsafe { x86::sq_l2_norm(a) };
    }
    blocked::sq_l2_norm(a)
}

/// Squared l2 distance (lane-mapped 4-chain reduction, bitwise identical to
/// [`super::blocked::sq_l2_distance`], and exactly symmetric like it).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_l2_distance: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // SAFETY: AVX2 availability checked by `supported()` above.
        return unsafe { x86::sq_l2_distance(a, b) };
    }
    blocked::sq_l2_distance(a, b)
}

/// Pairwise squared l2 distances (`n × n`, upper triangle computed once and
/// mirrored like the blocked tier). Bitwise identical to
/// [`super::blocked::pairwise_sq_distances`].
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    let n = vectors.len();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        let mut j = i + 1;
        #[cfg(target_arch = "x86_64")]
        if supported() {
            while j + 4 <= n {
                let d4 = distance4(
                    vectors[i],
                    [vectors[j], vectors[j + 1], vectors[j + 2], vectors[j + 3]],
                );
                for (t, d2) in d4.into_iter().enumerate() {
                    out[i * n + j + t] = d2;
                    out[(j + t) * n + i] = d2;
                }
                j += 4;
            }
        }
        while j < n {
            let d2 = sq_l2_distance(vectors[i], vectors[j]);
            out[i * n + j] = d2;
            out[j * n + i] = d2;
            j += 1;
        }
    }
    out
}

/// Four distances from one anchor in a single interleaved sweep (asserted,
/// safe wrapper over the AVX2 microkernel). Each result is bitwise
/// identical to [`sq_l2_distance`] on the same pair — the interleave only
/// hides the `f64` add latency the one-accumulator loop is bound by.
#[cfg(target_arch = "x86_64")]
fn distance4(a: &[f32], b: [&[f32]; 4]) -> [f64; 4] {
    for bj in &b {
        assert_eq!(a.len(), bj.len(), "sq_l2_distance: length mismatch");
    }
    // SAFETY: callers only reach this behind a `supported()` check.
    unsafe { x86::sq_l2_distance4(a, b) }
}

/// One row of [`pairwise_sq_distances`] written into `row` (length `n`),
/// diagonal zero — the sharded entry point for parallel Krum. Bitwise
/// identical to [`super::blocked::pairwise_sq_distances_row_into`].
///
/// # Panics
///
/// Panics if `row.len() != vectors.len()` or the vectors have different
/// lengths.
pub fn pairwise_sq_distances_row_into(vectors: &[&[f32]], i: usize, row: &mut [f64]) {
    let n = vectors.len();
    assert_eq!(row.len(), n, "pairwise row: length mismatch");
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    if supported() {
        // 4-way blocks that avoid the diagonal go through the interleaved
        // microkernel; the block containing `i` falls back to one-pair.
        while j + 4 <= n {
            if (j..j + 4).contains(&i) {
                for jj in j..j + 4 {
                    row[jj] = if i == jj {
                        0.0
                    } else {
                        sq_l2_distance(vectors[i], vectors[jj])
                    };
                }
            } else {
                let d4 = distance4(
                    vectors[i],
                    [vectors[j], vectors[j + 1], vectors[j + 2], vectors[j + 3]],
                );
                row[j..j + 4].copy_from_slice(&d4);
            }
            j += 4;
        }
    }
    while j < n {
        row[j] = if i == j {
            0.0
        } else {
            sq_l2_distance(vectors[i], vectors[j])
        };
        j += 1;
    }
}

/// α-trimmed mean — a selection problem with no lane structure; delegates
/// to [`super::blocked::trimmed_mean_inplace`].
///
/// # Panics
///
/// Panics if `buf` is empty, contains NaN, or `2 * trim >= buf.len()`.
pub fn trimmed_mean_inplace(buf: &mut [f32], trim: usize) -> f32 {
    blocked::trimmed_mean_inplace(buf, trim)
}

/// Coordinate median — delegates to [`super::blocked::median_inplace`].
///
/// # Panics
///
/// Panics if `buf` is empty or contains NaN.
pub fn median_inplace(buf: &mut [f32]) -> f32 {
    blocked::median_inplace(buf)
}

/// In-place row softmax: scalar max fold / `exp` / running sum (their
/// order is part of the bitwise contract), vectorized normalizing divide.
/// Bitwise identical to [`super::blocked::softmax_rows`].
///
/// # Panics
///
/// Panics if `data.len() != n * k`.
pub fn softmax_rows(data: &mut [f32], n: usize, k: usize) {
    assert_eq!(data.len(), n * k, "softmax_rows: shape mismatch");
    #[cfg(target_arch = "x86_64")]
    if supported() {
        for i in 0..n {
            let row = &mut data[i * k..(i + 1) * k];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            // SAFETY: AVX2 availability checked by `supported()` above.
            unsafe { x86::div_by(row, sum) };
        }
        return;
    }
    blocked::softmax_rows(data, n, k)
}

/// Fused softmax + cross-entropy, identical pass structure to
/// [`super::blocked::softmax_xent`] with the normalizing divide and the
/// `1/n` gradient scale vectorized. Bitwise identical to the blocked tier.
///
/// Returns `(summed loss, correct argmax predictions)`.
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
pub fn softmax_xent(
    logits: &[f32],
    labels: &[usize],
    n: usize,
    k: usize,
    grad: &mut [f32],
) -> (f64, usize) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        assert_eq!(logits.len(), n * k, "softmax_xent: logits shape");
        assert_eq!(grad.len(), n * k, "softmax_xent: grad shape");
        assert_eq!(labels.len(), n, "softmax_xent: labels/batch mismatch");
        let inv_n = 1.0 / n as f32;
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < k, "label {y} out of range for {k} classes");
            let zrow = &logits[i * k..(i + 1) * k];
            let grow = &mut grad[i * k..(i + 1) * k];
            let max = zrow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (g, &z) in grow.iter_mut().zip(zrow) {
                *g = (z - max).exp();
                sum += *g;
            }
            // SAFETY: AVX2 availability checked by `supported()` above.
            unsafe { x86::div_by(grow, sum) };
            loss += -(grow[y].max(1e-12) as f64).ln();
            if crate::loss::argmax(grow) == y {
                correct += 1;
            }
            grow[y] -= 1.0;
            // SAFETY: as above.
            unsafe { x86::scale(grow, inv_n) };
        }
        return (loss, correct);
    }
    blocked::softmax_xent(logits, labels, n, k, grad)
}

/// The AVX2 microkernels. Everything here is `unsafe fn` + `#[target_feature
/// (enable = "avx2")]`; callers must have verified AVX2 support.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_add_ps, _mm256_cvtps_pd, _mm256_div_ps, _mm256_loadu_pd,
        _mm256_loadu_ps, _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd, _mm256_set1_ps,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_storeu_ps, _mm_loadu_ps, _mm_mul_ps,
        _mm_set1_ps,
    };
    use std::cell::RefCell;

    /// Depth (`k`) tile of the packed `B` panel (matches the blocked tier).
    const KC: usize = 128;
    /// Column (`n`) tile of the packed `B` panel (matches the blocked tier).
    const NC: usize = 256;

    thread_local! {
        /// Scratch buffer for packed `B` tiles (at most `KC * NC` floats) —
        /// separate from the blocked tier's so mixed-tier processes never
        /// fight over one buffer.
        static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    /// Fused 4-step axpy, 8 lanes at a time: per element
    /// `y = (((y + a0·x0) + a1·x1) + a2·x2) + a3·x3` with separate
    /// multiplies and adds (no FMA) — the exact left-associated order of
    /// the blocked microkernel.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length (callers guarantee it).
    #[target_feature(enable = "avx2")]
    unsafe fn axpy4(y: &mut [f32], al: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) {
        let n = y.len();
        let va0 = _mm256_set1_ps(al[0]);
        let va1 = _mm256_set1_ps(al[1]);
        let va2 = _mm256_set1_ps(al[2]);
        let va3 = _mm256_set1_ps(al[3]);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= len for every slice.
            unsafe {
                let mut vy = _mm256_loadu_ps(y.as_ptr().add(i));
                vy = _mm256_add_ps(vy, _mm256_mul_ps(va0, _mm256_loadu_ps(x0.as_ptr().add(i))));
                vy = _mm256_add_ps(vy, _mm256_mul_ps(va1, _mm256_loadu_ps(x1.as_ptr().add(i))));
                vy = _mm256_add_ps(vy, _mm256_mul_ps(va2, _mm256_loadu_ps(x2.as_ptr().add(i))));
                vy = _mm256_add_ps(vy, _mm256_mul_ps(va3, _mm256_loadu_ps(x3.as_ptr().add(i))));
                _mm256_storeu_ps(y.as_mut_ptr().add(i), vy);
            }
            i += 8;
        }
        while i < n {
            let mut s = y[i];
            s += al[0] * x0[i];
            s += al[1] * x1[i];
            s += al[2] * x2[i];
            s += al[3] * x3[i];
            y[i] = s;
            i += 1;
        }
    }

    /// `y += alpha · x`, 8 lanes at a time (separate multiply and add).
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        let n = y.len();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= len for both slices.
            unsafe {
                let vy = _mm256_loadu_ps(y.as_ptr().add(i));
                let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                _mm256_storeu_ps(
                    y.as_mut_ptr().add(i),
                    _mm256_add_ps(vy, _mm256_mul_ps(va, vx)),
                );
            }
            i += 8;
        }
        while i < n {
            y[i] += alpha * x[i];
            i += 1;
        }
    }

    /// `x *= alpha`, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(x: &mut [f32], alpha: f32) {
        let n = x.len();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= len.
            unsafe {
                let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_mul_ps(vx, va));
            }
            i += 8;
        }
        while i < n {
            x[i] *= alpha;
            i += 1;
        }
    }

    /// `x /= d`, 8 lanes at a time (the softmax normalizing divide; IEEE
    /// division is a per-element operation, so lane order is irrelevant).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn div_by(x: &mut [f32], d: f32) {
        let n = x.len();
        let vd = _mm256_set1_ps(d);
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= len.
            unsafe {
                let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_div_ps(vx, vd));
            }
            i += 8;
        }
        while i < n {
            x[i] /= d;
            i += 1;
        }
    }

    /// Widens 4 consecutive `f32`s starting at `p + i` to a `__m256d`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p + i .. p + i + 4` must be in bounds.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load4_as_f64(p: *const f32, i: usize) -> std::arch::x86_64::__m256d {
        // SAFETY: caller guarantees the 4-element window is in bounds.
        unsafe { _mm256_cvtps_pd(_mm_loadu_ps(p.add(i))) }
    }

    /// `acc += x` with per-element `f64` accumulation, 4 lanes at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn acc_add(acc: &mut [f64], x: &[f32]) {
        let n = acc.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for both slices.
            unsafe {
                let vx = load4_as_f64(x.as_ptr(), i);
                let va = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(va, vx));
            }
            i += 4;
        }
        while i < n {
            acc[i] += x[i] as f64;
            i += 1;
        }
    }

    /// `acc += w · x` with the product in `f64`, 4 lanes at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
        let n = acc.len();
        let vw = _mm256_set1_pd(w);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for both slices.
            unsafe {
                let vx = load4_as_f64(x.as_ptr(), i);
                let va = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(
                    acc.as_mut_ptr().add(i),
                    _mm256_add_pd(va, _mm256_mul_pd(vw, vx)),
                );
            }
            i += 4;
        }
        while i < n {
            acc[i] += w * x[i] as f64;
            i += 1;
        }
    }

    /// `acc += (x · s)` with the product rounded to `f32` *before* widening,
    /// 4 lanes at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
        let n = acc.len();
        let vs = _mm_set1_ps(s);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for both slices.
            unsafe {
                let prod = _mm_mul_ps(_mm_loadu_ps(x.as_ptr().add(i)), vs);
                let vx = _mm256_cvtps_pd(prod);
                let va = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(va, vx));
            }
            i += 4;
        }
        while i < n {
            acc[i] += (x[i] * s) as f64;
            i += 1;
        }
    }

    /// Horizontal combine matching the blocked tier's fixed tree
    /// `((s0 + s1) + (s2 + s3)) + tail`, lane `i` being chain `i`.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn combine4(acc: std::arch::x86_64::__m256d, tail: f64) -> f64 {
        let mut s = [0.0f64; 4];
        // SAFETY: `s` is a 4-element f64 array.
        unsafe { _mm256_storeu_pd(s.as_mut_ptr(), acc) };
        ((s[0] + s[1]) + (s[2] + s[3])) + tail
    }

    /// Dot product; the accumulator's four lanes are the blocked tier's
    /// four chains.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for both slices.
            unsafe {
                let va = load4_as_f64(a.as_ptr(), i);
                let vb = load4_as_f64(b.as_ptr(), i);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
            }
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < n {
            tail += a[i] as f64 * b[i] as f64;
            i += 1;
        }
        // SAFETY: AVX2 (caller contract).
        unsafe { combine4(acc, tail) }
    }

    /// Squared l2 norm (lane-mapped 4-chain reduction).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_l2_norm(a: &[f32]) -> f64 {
        let n = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len.
            unsafe {
                let va = load4_as_f64(a.as_ptr(), i);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(va, va));
            }
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < n {
            tail += a[i] as f64 * a[i] as f64;
            i += 1;
        }
        // SAFETY: AVX2 (caller contract).
        unsafe { combine4(acc, tail) }
    }

    /// Squared l2 distance (lane-mapped 4-chain reduction).
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must share a length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
        use std::arch::x86_64::_mm256_sub_pd;
        let n = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for both slices.
            unsafe {
                let va = load4_as_f64(a.as_ptr(), i);
                let vb = load4_as_f64(b.as_ptr(), i);
                let d = _mm256_sub_pd(va, vb);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            }
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < n {
            let d = a[i] as f64 - b[i] as f64;
            tail += d * d;
            i += 1;
        }
        // SAFETY: AVX2 (caller contract).
        unsafe { combine4(acc, tail) }
    }

    /// Four squared l2 distances from one anchor `a` to `b[0..4]`, computed
    /// in one interleaved sweep with four independent accumulators. Each
    /// accumulator executes exactly the operation sequence of
    /// [`sq_l2_distance`] for its pair (same widening loads, same
    /// subtract/multiply/add order, same tail, same combine tree), so every
    /// returned distance is bitwise identical to the one-pair kernel. The
    /// interleave exists purely for instruction-level parallelism: the
    /// one-accumulator loop is bound by the 4-cycle `f64` add latency, and
    /// four independent chains hide it.
    ///
    /// # Safety
    ///
    /// Requires AVX2. All five slices must share a length (the safe wrapper
    /// asserts it).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_l2_distance4(a: &[f32], b: [&[f32]; 4]) -> [f64; 4] {
        use std::arch::x86_64::_mm256_sub_pd;
        let n = a.len();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= len for all five slices.
            unsafe {
                let va = load4_as_f64(a.as_ptr(), i);
                let d0 = _mm256_sub_pd(va, load4_as_f64(b[0].as_ptr(), i));
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
                let d1 = _mm256_sub_pd(va, load4_as_f64(b[1].as_ptr(), i));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
                let d2 = _mm256_sub_pd(va, load4_as_f64(b[2].as_ptr(), i));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
                let d3 = _mm256_sub_pd(va, load4_as_f64(b[3].as_ptr(), i));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
            }
            i += 4;
        }
        let mut tails = [0.0f64; 4];
        while i < n {
            let av = a[i] as f64;
            for (t, bj) in tails.iter_mut().zip(&b) {
                let d = av - bj[i] as f64;
                *t += d * d;
            }
            i += 1;
        }
        // SAFETY: AVX2 (caller contract).
        unsafe {
            [
                combine4(acc0, tails[0]),
                combine4(acc1, tails[1]),
                combine4(acc2, tails[2]),
                combine4(acc3, tails[3]),
            ]
        }
    }

    /// Shared tiled gemm core, identical loop structure to the blocked
    /// tier's (`C += A · P`, `P` delivered tile-by-tile by `pack_tile`),
    /// with the 8-lane microkernels in the inner loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `C` must be zeroed by the caller; slice shapes are the
    /// caller's responsibility (the public wrappers assert them).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tiled<F>(
        a: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        mut pack_tile: F,
    ) where
        F: FnMut(&mut [f32], usize, usize, usize, usize),
    {
        PACK.with(|p| {
            let mut pack = p.borrow_mut();
            pack.resize(KC * NC, 0.0);
            for jc in (0..n).step_by(NC) {
                let ncb = NC.min(n - jc);
                for kc in (0..k).step_by(KC) {
                    let kcb = KC.min(k - kc);
                    pack_tile(&mut pack, kc, kcb, jc, ncb);
                    for i in 0..m {
                        let arow = &a[i * k + kc..i * k + kc + kcb];
                        let crow = &mut c[i * n + jc..i * n + jc + ncb];
                        let mut t = 0;
                        while t + 4 <= kcb {
                            let rows = &pack[t * ncb..(t + 4) * ncb];
                            let (x0, rest) = rows.split_at(ncb);
                            let (x1, rest) = rest.split_at(ncb);
                            let (x2, x3) = rest.split_at(ncb);
                            // SAFETY: AVX2 (caller contract); equal lengths
                            // by construction.
                            unsafe {
                                axpy4(
                                    crow,
                                    [arow[t], arow[t + 1], arow[t + 2], arow[t + 3]],
                                    x0,
                                    x1,
                                    x2,
                                    x3,
                                );
                            }
                            t += 4;
                        }
                        while t < kcb {
                            // SAFETY: as above.
                            unsafe { axpy(crow, arow[t], &pack[t * ncb..(t + 1) * ncb]) };
                            t += 1;
                        }
                    }
                }
            }
        });
    }

    /// `C += Aᵀ · B`, column-blocked rank-1 updates — the blocked tier's
    /// loop with the 8-lane microkernels.
    ///
    /// # Safety
    ///
    /// Requires AVX2; slice shapes are asserted by the public wrapper.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_transa_acc(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        p: usize,
        q: usize,
    ) {
        for qc in (0..q).step_by(NC) {
            let qcb = NC.min(q - qc);
            let mut t = 0;
            while t + 4 <= m {
                let b0 = &b[t * q + qc..t * q + qc + qcb];
                let b1 = &b[(t + 1) * q + qc..(t + 1) * q + qc + qcb];
                let b2 = &b[(t + 2) * q + qc..(t + 2) * q + qc + qcb];
                let b3 = &b[(t + 3) * q + qc..(t + 3) * q + qc + qcb];
                for i in 0..p {
                    let al = [
                        a[t * p + i],
                        a[(t + 1) * p + i],
                        a[(t + 2) * p + i],
                        a[(t + 3) * p + i],
                    ];
                    // SAFETY: AVX2 (caller contract); equal lengths by
                    // construction.
                    unsafe {
                        axpy4(&mut c[i * q + qc..i * q + qc + qcb], al, b0, b1, b2, b3);
                    }
                }
                t += 4;
            }
            while t < m {
                let brow = &b[t * q + qc..t * q + qc + qcb];
                for i in 0..p {
                    let av = a[t * p + i];
                    // SAFETY: as above.
                    unsafe { axpy(&mut c[i * q + qc..i * q + qc + qcb], av, brow) };
                }
                t += 1;
            }
        }
    }
}
