//! Naive reference implementations — the differential-testing oracle.
//!
//! Every function here is the textbook, single-accumulator, one-pass-at-a-
//! time formulation of the corresponding primitive in [`super::blocked`].
//! They are deliberately unoptimized: their only job is to pin down the
//! *semantics* (including the exact floating-point reduction order where the
//! optimized kernel promises bitwise equality) so that
//! `tests/kernel_equivalence.rs` can hold the fast path to them forever.
//!
//! Compiled unconditionally; the `reference` cargo feature merely reroutes
//! the public dispatchers in [`super`] through this module.

/// `C = A · B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, all row-major.
/// Each output element is a single `f32` accumulator over ascending `k`.
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul: A length");
    assert_eq!(b.len(), k * n, "matmul: B length");
    assert_eq!(c.len(), m * n, "matmul: C length");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[i * k + t] * b[t * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `C = A · Bᵀ` with `A: [m, k]`, `Bᵀ` stored as `bt: [n, k]` row-major
/// (the layout of a [`Dense`](crate::layer::Dense) weight matrix).
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transb(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_transb: A length");
    assert_eq!(bt.len(), n * k, "matmul_transb: Bt length");
    assert_eq!(c.len(), m * n, "matmul_transb: C length");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[i * k + t] * bt[j * k + t];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `C += Aᵀ · B` with `A: [m, p]`, `B: [m, q]`, `C: [p, q]` — the
/// weight-gradient accumulation `dW += Σ_batch gᵀ x`. Accumulates over
/// ascending `m` into the existing contents of `c`.
///
/// # Panics
///
/// Panics if any slice length mismatches its shape.
pub fn matmul_transa_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, p: usize, q: usize) {
    assert_eq!(a.len(), m * p, "matmul_transa_acc: A length");
    assert_eq!(b.len(), m * q, "matmul_transa_acc: B length");
    assert_eq!(c.len(), p * q, "matmul_transa_acc: C length");
    for t in 0..m {
        for i in 0..p {
            let av = a[t * p + i];
            for j in 0..q {
                c[i * q + j] += av * b[t * q + j];
            }
        }
    }
}

/// `y += alpha · x`, element-wise in `f32`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `x *= alpha`, element-wise.
pub fn scale(x: &mut [f32], alpha: f32) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// `acc += x` with per-element `f64` accumulation (the aggregation rules'
/// mean-delta sweep).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_add(acc: &mut [f64], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "acc_add: length mismatch");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += v as f64;
    }
}

/// `acc += w · x` with the product taken in `f64` (FLARE's trust-weighted
/// accumulation).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled(acc: &mut [f64], x: &[f32], w: f64) {
    assert_eq!(acc.len(), x.len(), "acc_scaled: length mismatch");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += w * v as f64;
    }
}

/// `acc += (x · s)` where the product is rounded to `f32` *before* widening
/// — exactly what accumulating a norm-clipped copy of `x` produces
/// (NormBound's clip-then-average sweep, without materializing the copy).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn acc_scaled_f32(acc: &mut [f64], x: &[f32], s: f32) {
    assert_eq!(acc.len(), x.len(), "acc_scaled_f32: length mismatch");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += (v * s) as f64;
    }
}

/// Dot product with a single `f64` accumulator over ascending index.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as f64 * y as f64;
    }
    acc
}

/// Squared l2 norm (`f64` accumulation).
pub fn sq_l2_norm(a: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for &x in a {
        acc += x as f64 * x as f64;
    }
    acc
}

/// Squared l2 distance (`f64` accumulation of squared differences).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_l2_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_l2_distance: length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc
}

/// Full `n × n` matrix of pairwise squared l2 distances (diagonal zero),
/// every ordered pair computed independently.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    let n = vectors.len();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                out[i * n + j] = sq_l2_distance(vectors[i], vectors[j]);
            }
        }
    }
    out
}

/// One row of [`pairwise_sq_distances`] written into `row` (length `n`):
/// `row[j] = ‖v_i − v_j‖²`, diagonal zero. Because the distance kernel is
/// exactly symmetric, computing rows independently (in any sharding) yields
/// the same matrix as the full kernel, bitwise.
///
/// # Panics
///
/// Panics if `row.len() != vectors.len()` or the vectors have different
/// lengths.
pub fn pairwise_sq_distances_row_into(vectors: &[&[f32]], i: usize, row: &mut [f64]) {
    let n = vectors.len();
    assert_eq!(row.len(), n, "pairwise row: length mismatch");
    for (j, slot) in row.iter_mut().enumerate() {
        *slot = if i == j {
            0.0
        } else {
            sq_l2_distance(vectors[i], vectors[j])
        };
    }
}

/// α-trimmed mean of `buf`: full sort, drop the lowest and highest `trim`
/// values, average the middle with an ascending-order `f64` sum.
///
/// # Panics
///
/// Panics if `buf` is empty, contains NaN, or `2 * trim >= buf.len()`.
pub fn trimmed_mean_inplace(buf: &mut [f32], trim: usize) -> f32 {
    assert!(!buf.is_empty(), "trimmed_mean_inplace: empty buffer");
    assert!(
        2 * trim < buf.len(),
        "trimmed_mean_inplace: trim {} too large for {} values",
        trim,
        buf.len()
    );
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let kept = &buf[trim..buf.len() - trim];
    let sum: f64 = kept.iter().map(|&v| v as f64).sum();
    (sum / kept.len() as f64) as f32
}

/// Coordinate median of `buf`: full sort; odd length takes the middle,
/// even length interpolates `lo·0.5 + hi·0.5` in `f64` (matching
/// `collapois_stats::descriptive::quantile(xs, 0.5)`).
///
/// # Panics
///
/// Panics if `buf` is empty or contains NaN.
pub fn median_inplace(buf: &mut [f32]) -> f32 {
    assert!(!buf.is_empty(), "median_inplace: empty buffer");
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = buf.len();
    if n % 2 == 1 {
        buf[n / 2]
    } else {
        let lo = buf[n / 2 - 1] as f64;
        let hi = buf[n / 2] as f64;
        (lo * 0.5 + hi * 0.5) as f32
    }
}

/// In-place numerically-stable softmax over each of the `n` rows of length
/// `k`: subtract the row max, exponentiate, divide by the row sum.
///
/// # Panics
///
/// Panics if `data.len() != n * k`.
pub fn softmax_rows(data: &mut [f32], n: usize, k: usize) {
    assert_eq!(data.len(), n * k, "softmax_rows: shape mismatch");
    for i in 0..n {
        let row = &mut data[i * k..(i + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Softmax cross-entropy as two explicit passes: a full softmax into `grad`,
/// then a per-row pass for the loss, argmax and one-hot subtraction, then a
/// whole-tensor `1/n` scaling — the original `loss.rs` formulation.
///
/// Writes the batch-mean gradient into `grad` and returns
/// `(summed loss, correct argmax predictions)`; the caller divides the loss
/// by `n`.
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
pub fn softmax_xent(
    logits: &[f32],
    labels: &[usize],
    n: usize,
    k: usize,
    grad: &mut [f32],
) -> (f64, usize) {
    assert_eq!(logits.len(), n * k, "softmax_xent: logits shape");
    assert_eq!(grad.len(), n * k, "softmax_xent: grad shape");
    assert_eq!(labels.len(), n, "softmax_xent: labels/batch mismatch");
    grad.copy_from_slice(logits);
    softmax_rows(grad, n, k);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        let row = &grad[i * k..(i + 1) * k];
        loss += -(row[y].max(1e-12) as f64).ln();
        if crate::loss::argmax(row) == y {
            correct += 1;
        }
        grad[i * k + y] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    for g in grad.iter_mut() {
        *g *= inv_n;
    }
    (loss, correct)
}
