//! Property-based tests for the NN substrate.

use collapois_nn::layer::{Conv2d, Dense, Layer, MaxPool2d, ReLU};
use collapois_nn::loss::{cross_entropy, softmax};
use collapois_nn::optim::{Optimizer, Sgd};
use collapois_nn::tensor::Tensor;
use collapois_nn::zoo::ModelSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense layers map [n, in] to [n, out] for arbitrary sizes, and the
    /// gradient buffer always matches the parameter count.
    #[test]
    fn dense_shape_contract(
        seed in 0u64..1000,
        n in 1usize..6,
        input in 1usize..16,
        output in 1usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(&mut rng, input, output);
        let x = Tensor::zeros(&[n, input]);
        let y = layer.forward(&x, true);
        prop_assert_eq!(y.shape(), &[n, output]);
        let gy = Tensor::zeros(&[n, output]);
        let gx = layer.backward(&gy);
        prop_assert_eq!(gx.shape(), &[n, input]);
        let mut grads = vec![0.0; layer.param_count()];
        layer.write_grads(&mut grads);
        prop_assert_eq!(grads.len(), input * output + output);
    }

    /// Conv output follows the valid-padding formula for arbitrary
    /// geometries.
    #[test]
    fn conv_output_geometry(
        seed in 0u64..1000,
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        k in 1usize..5,
        extra in 0usize..6,
    ) {
        let side = k + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(&mut rng, cin, cout, k);
        let x = Tensor::zeros(&[n, cin, side, side]);
        let y = conv.forward(&x, false);
        let o = side - k + 1;
        prop_assert_eq!(y.shape(), &[n, cout, o, o]);
    }

    /// Max pooling never invents values: every output element equals some
    /// input element, and output dims divide correctly.
    #[test]
    fn pool_selects_existing_values(
        xs in prop::collection::vec(-5.0f32..5.0, 36..=36),
    ) {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(xs.clone(), &[1, 1, 6, 6]);
        let y = pool.forward(&x, false);
        prop_assert_eq!(y.shape(), &[1, 1, 3, 3]);
        for &v in y.data() {
            prop_assert!(xs.contains(&v));
        }
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_non_negative_idempotent(xs in prop::collection::vec(-5.0f32..5.0, 1..32)) {
        let mut relu = ReLU::new();
        let n = xs.len();
        let x = Tensor::from_vec(xs, &[1, n]);
        let once = relu.forward(&x, false);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
        let twice = relu.forward(&once, false);
        prop_assert_eq!(once.data(), twice.data());
    }

    /// Softmax rows are probability vectors and cross-entropy is
    /// non-negative, for arbitrary logits.
    #[test]
    fn loss_invariants(
        logits in prop::collection::vec(-20.0f32..20.0, 6..=6),
    ) {
        let t = Tensor::from_vec(logits, &[2, 3]);
        let p = softmax(&t);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let out = cross_entropy(&t, &[0, 2]);
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.correct <= 2);
        // Gradient rows sum to ~0 (softmax minus one-hot property).
        for i in 0..2 {
            let s: f32 = out.grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} grad sum {s}");
        }
    }

    /// An SGD step with zero gradient (and no decay) leaves parameters
    /// unchanged; a step against the gradient direction reduces a quadratic.
    #[test]
    fn sgd_step_properties(p0 in -5.0f32..5.0, lr in 0.001f64..0.5) {
        let mut opt = Sgd::new(lr);
        let mut params = vec![p0];
        opt.step(&mut params, &[0.0]);
        prop_assert_eq!(params[0], p0);
        // Quadratic f(p) = p², grad = 2p: one step shrinks |p| when lr < 1.
        let mut params = vec![p0];
        opt.step(&mut params, &[2.0 * p0]);
        prop_assert!(params[0].abs() <= p0.abs() + 1e-6);
    }

    /// Model params are invariant under a save/load roundtrip for every
    /// LeNet geometry that builds.
    #[test]
    fn lenet_roundtrip(seed in 0u64..100, side in 16usize..29) {
        let spec = ModelSpec::lenet(side, 10);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = spec.build(&mut rng);
        let p = model.params();
        model.set_params(&p);
        prop_assert_eq!(model.params(), p);
    }
}
