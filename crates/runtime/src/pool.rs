//! Deterministic scoped worker pool.
//!
//! [`WorkerPool::map`] fans independent jobs over up to `workers` threads
//! and returns results **in input order**. Jobs must be independent (the
//! closure takes `&self` state only through `Sync` captures); all
//! order-sensitive effects belong in the caller's commit phase, which runs
//! sequentially over the returned, input-ordered results. This
//! snapshot-compute / ordered-commit split is what makes `workers = N`
//! bit-identical to `workers = 1`.

/// A fixed-width fan-out helper over scoped threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool running at most `workers` jobs concurrently.
    /// `workers = 0` is treated as 1 (fully sequential).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at 8 —
    /// round fan-out saturates well before that for quick-scale runs).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n.min(8))
    }

    /// Number of concurrent jobs this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, returning outputs in input order.
    ///
    /// `f` receives `(input_index, item)`. With one worker (or one item)
    /// this runs inline on the caller's thread; otherwise items are dealt
    /// round-robin to worker threads. Because each output lands in the slot
    /// of its input index, the result is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let lanes = self.workers.min(n);
        // Deal items round-robin into one lane per worker. Static
        // assignment (rather than work stealing) keeps the structure
        // simple; determinism comes from index-keyed scatter either way.
        let mut chunks: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            chunks[i % lanes].push((i, item));
        }

        let f = &f;
        let gathered: Vec<Vec<(usize, U)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move |_| {
                        chunk
                            .into_iter()
                            .map(|(i, item)| (i, f(i, item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("worker pool scope failed");

        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, value) in gathered.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "duplicate output for index {i}");
            out[i] = Some(value);
        }
        out.into_iter()
            .map(|slot| slot.expect("missing output slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(items.clone(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_matches_sequential_for_stateful_jobs() {
        // Each job derives its own value from its index only; any schedule
        // must produce the same vector.
        let seq = WorkerPool::new(1).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        let par = WorkerPool::new(4).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.map(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![5u32], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(WorkerPool::auto().workers() >= 1);
    }
}
