//! Deterministic scoped worker pool.
//!
//! [`WorkerPool::map`] fans independent jobs over up to `workers` threads
//! and returns results **in input order**. Jobs must be independent (the
//! closure takes `&self` state only through `Sync` captures); all
//! order-sensitive effects belong in the caller's commit phase, which runs
//! sequentially over the returned, input-ordered results. This
//! snapshot-compute / ordered-commit split is what makes `workers = N`
//! bit-identical to `workers = 1`.
//!
//! [`WorkerArenas`] extends this with per-worker scratch state that lives
//! *across* calls (and therefore across rounds): each lane owns one arena
//! for the duration of a [`WorkerPool::map_with_arena`] call, so a job can
//! reuse the previous round's buffers instead of allocating fresh ones.
//! Arenas must be history-free — a job's output may depend only on its
//! input, never on which arena served it or what ran in it before — which
//! preserves the bitwise workers-N ≡ workers-1 equivalence.

/// Per-worker scratch arenas that persist across [`WorkerPool::map_with_arena`]
/// calls.
///
/// The pool hands lane `i` exclusive access to `arenas[i]` for the whole
/// call; between calls the arenas (and their grown buffers) are retained, so
/// steady-state rounds run allocation-free. Checkpoint/resume does not
/// serialize arenas: they are pure scratch and must never carry state.
#[derive(Debug, Default)]
pub struct WorkerArenas<A> {
    arenas: Vec<A>,
}

impl<A> WorkerArenas<A> {
    /// Creates an empty arena set; arenas are built lazily by
    /// [`WorkerPool::map_with_arena`] via its `init` closure.
    pub fn new() -> Self {
        Self { arenas: Vec::new() }
    }

    /// Number of arenas built so far.
    pub fn len(&self) -> usize {
        self.arenas.len()
    }

    /// Whether no arena has been built yet.
    pub fn is_empty(&self) -> bool {
        self.arenas.is_empty()
    }

    /// Grows the set to at least `n` arenas using `init`.
    fn ensure_with<I: FnMut() -> A>(&mut self, n: usize, mut init: I) {
        while self.arenas.len() < n {
            self.arenas.push(init());
        }
    }
}

/// A fixed-width fan-out helper over scoped threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool running at most `workers` jobs concurrently.
    /// `workers = 0` is treated as 1 (fully sequential).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at 8 —
    /// round fan-out saturates well before that for quick-scale runs).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n.min(8))
    }

    /// Number of concurrent jobs this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, returning outputs in input order.
    ///
    /// `f` receives `(input_index, item)`. With one worker (or one item)
    /// this runs inline on the caller's thread; otherwise items are dealt
    /// round-robin to worker threads. Because each output lands in the slot
    /// of its input index, the result is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let lanes = self.workers.min(n);
        // Deal items round-robin into one lane per worker. Static
        // assignment (rather than work stealing) keeps the structure
        // simple; determinism comes from index-keyed scatter either way.
        let mut chunks: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            chunks[i % lanes].push((i, item));
        }

        let f = &f;
        let gathered: Vec<Vec<(usize, U)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move |_| {
                        chunk
                            .into_iter()
                            .map(|(i, item)| (i, f(i, item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("worker pool scope failed");

        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, value) in gathered.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "duplicate output for index {i}");
            out[i] = Some(value);
        }
        out.into_iter()
            .map(|slot| slot.expect("missing output slot"))
            .collect()
    }

    /// Like [`WorkerPool::map`], but hands each lane a persistent scratch
    /// arena from `arenas` (built on demand with `init`, reused verbatim on
    /// subsequent calls). Outputs are returned in input order.
    ///
    /// Jobs must treat the arena as pure scratch: the output for an item
    /// must not depend on which arena served it or on anything a previous
    /// job left behind. Under that contract the result is bitwise identical
    /// across worker counts and to the arena-free path.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn map_with_arena<A, T, U, F, I>(
        &self,
        arenas: &mut WorkerArenas<A>,
        items: Vec<T>,
        init: I,
        f: F,
    ) -> Vec<U>
    where
        A: Send,
        T: Send,
        U: Send,
        F: Fn(usize, T, &mut A) -> U + Sync,
        I: FnMut() -> A,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            arenas.ensure_with(1, init);
            let arena = &mut arenas.arenas[0];
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item, arena))
                .collect();
        }

        let lanes = self.workers.min(n);
        arenas.ensure_with(lanes, init);
        let mut chunks: Vec<Vec<(usize, T)>> = (0..lanes).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            chunks[i % lanes].push((i, item));
        }

        let f = &f;
        let gathered: Vec<Vec<(usize, U)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .zip(arenas.arenas.iter_mut())
                .map(|(chunk, arena)| {
                    s.spawn(move |_| {
                        chunk
                            .into_iter()
                            .map(|(i, item)| (i, f(i, item, arena)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("worker pool scope failed");

        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, value) in gathered.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "duplicate output for index {i}");
            out[i] = Some(value);
        }
        out.into_iter()
            .map(|slot| slot.expect("missing output slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(items.clone(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_matches_sequential_for_stateful_jobs() {
        // Each job derives its own value from its index only; any schedule
        // must produce the same vector.
        let seq = WorkerPool::new(1).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        let par = WorkerPool::new(4).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.map(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![5u32], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(WorkerPool::auto().workers() >= 1);
    }

    #[test]
    fn arenas_are_built_lazily_and_reused() {
        let pool = WorkerPool::new(3);
        let mut arenas: WorkerArenas<Vec<u8>> = WorkerArenas::new();
        assert!(arenas.is_empty());
        let out = pool.map_with_arena(&mut arenas, (0..10usize).collect(), Vec::new, |i, x, a| {
            a.push(1); // arenas accumulate across jobs within a call...
            i + x
        });
        assert_eq!(out, (0..10).map(|x| 2 * x).collect::<Vec<_>>());
        assert_eq!(arenas.len(), 3);
        // ...and persist across calls: no new arenas, contents retained.
        let total_before: usize = arenas.arenas.iter().map(Vec::len).sum();
        assert_eq!(total_before, 10);
        pool.map_with_arena(&mut arenas, vec![0usize; 4], Vec::new, |_, _, a| a.push(1));
        assert_eq!(arenas.len(), 3);
        let total_after: usize = arenas.arenas.iter().map(Vec::len).sum();
        assert!(total_after > total_before);
    }

    #[test]
    fn map_with_arena_matches_map_for_pure_jobs() {
        let items: Vec<usize> = (0..23).collect();
        let plain = WorkerPool::new(4).map(items.clone(), |i, x| i as u64 + x as u64);
        for workers in [1, 2, 4] {
            let mut arenas: WorkerArenas<()> = WorkerArenas::new();
            let pooled = WorkerPool::new(workers).map_with_arena(
                &mut arenas,
                items.clone(),
                || (),
                |i, x, _| i as u64 + x as u64,
            );
            assert_eq!(pooled, plain);
        }
    }

    #[test]
    fn map_with_arena_empty_input_builds_nothing() {
        let mut arenas: WorkerArenas<Vec<u8>> = WorkerArenas::new();
        let out: Vec<u8> =
            WorkerPool::new(4).map_with_arena(&mut arenas, Vec::<u8>::new(), Vec::new, |_, x, _| x);
        assert!(out.is_empty());
        assert!(arenas.is_empty());
    }
}
