//! Deterministic persistent worker pool with a low-overhead round barrier.
//!
//! [`WorkerPool::map`] fans independent jobs over up to `workers` threads
//! and returns results **in input order**. Jobs must be independent (the
//! closure takes `&self` state only through `Sync` captures); all
//! order-sensitive effects belong in the caller's commit phase, which runs
//! sequentially over the returned, input-ordered results. This
//! snapshot-compute / ordered-commit split is what makes `workers = N`
//! bit-identical to `workers = 1`.
//!
//! # Persistent threads and the spin-then-park barrier
//!
//! Worker threads are spawned once when the pool is built and live until it
//! is dropped. A dispatch publishes a type-erased job pointer and bumps an
//! epoch counter (release ordering); workers observe the new epoch (acquire
//! ordering), run their lanes, and decrement a completion counter the
//! dispatching thread spins on. Between dispatches workers **spin briefly
//! and then park** on a condvar: round loops with back-to-back dispatches
//! (train → aggregate → eval) never pay a futex wake-up, while idle phases
//! (setup, checkpointing) cost no CPU. When the pool is oversubscribed
//! (more workers than hardware threads) the spin phase is skipped entirely
//! — spinning would only steal cycles from the lanes doing real work.
//!
//! # Work-stealing lane assignment
//!
//! Items are assigned through per-lane **index queues**: lane `l` of `W`
//! starts on the contiguous range `[l·n/W, (l+1)·n/W)` and claims it from
//! the front in chunks; once its own queue drains it *steals* chunks from
//! the back of other lanes' queues. A slow item therefore cannot strand the
//! rest of its lane's range — idle lanes pick it up. Chunk size adapts to
//! the measured barrier wait (long waits shrink chunks so stealing gets
//! finer; negligible waits grow them to amortize the claim CAS). Because
//! every output lands in the slot of its input index and jobs are
//! independent, stealing moves only *where* work runs, never what it
//! produces: results are bitwise identical at any worker count, chunk size,
//! and steal schedule.
//!
//! Dispatches of [`TINY_INLINE`] or fewer items run inline on the calling
//! thread — a tiny round is cheaper to run sequentially than to pay the
//! epoch handoff.
//!
//! The dispatching thread itself runs lane 0, so a `workers = W` pool holds
//! `W − 1` helper threads and `workers = 1` never synchronizes at all.
//!
//! [`WorkerArenas`] extends this with per-worker scratch state that lives
//! *across* calls (and therefore across rounds): each lane owns one arena
//! for the duration of a call, so a job can reuse the previous round's
//! buffers instead of allocating fresh ones. Arenas must be history-free —
//! a job's output may depend only on its input, never on which arena served
//! it or what ran in it before — which preserves the bitwise
//! workers-N ≡ workers-1 equivalence.
//!
//! The zero-allocation entry points ([`WorkerPool::map_with_arena_into`],
//! [`WorkerPool::for_chunks_mut`], [`WorkerPool::for_chunks_mut_with_arena`])
//! reuse caller-owned input/output buffers, so a steady-state dispatch
//! touches the allocator exactly zero times at any worker count.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Per-worker scratch arenas that persist across pooled calls.
///
/// The pool hands lane `i` exclusive access to `arenas[i]` for the whole
/// call; between calls the arenas (and their grown buffers) are retained, so
/// steady-state rounds run allocation-free. Checkpoint/resume does not
/// serialize arenas: they are pure scratch and must never carry state.
#[derive(Debug, Default)]
pub struct WorkerArenas<A> {
    arenas: Vec<A>,
}

impl<A> WorkerArenas<A> {
    /// Creates an empty arena set; arenas are built lazily by the pooled
    /// calls via their `init` closure.
    pub fn new() -> Self {
        Self { arenas: Vec::new() }
    }

    /// Number of arenas built so far.
    pub fn len(&self) -> usize {
        self.arenas.len()
    }

    /// Whether no arena has been built yet.
    pub fn is_empty(&self) -> bool {
        self.arenas.is_empty()
    }

    /// Grows the set to at least `n` arenas using `init`.
    fn ensure_with<I: FnMut() -> A>(&mut self, n: usize, mut init: I) {
        while self.arenas.len() < n {
            self.arenas.push(init());
        }
    }
}

/// The job a dispatch publishes to the helper threads: called once per
/// helper lane. The `'static` lifetime is a lie confined to [`Shared`] —
/// the dispatching thread blocks until every helper has finished before the
/// underlying closure goes out of scope.
type Job = &'static (dyn Fn(usize) + Sync);

/// State shared between the dispatching thread and the helper threads.
struct Shared {
    /// Bumped (release) once per dispatch; helpers wait for it to move.
    epoch: AtomicU64,
    /// The published job; valid for epochs `> 0` until `remaining` hits 0.
    job: UnsafeCell<Option<Job>>,
    /// Helpers still running the current job; the dispatcher spins on 0.
    remaining: AtomicUsize,
    /// Helpers currently parked on `cvar` (only mutated under `lock`).
    sleepers: AtomicUsize,
    /// Pool is shutting down; helpers observing this after an epoch bump exit.
    shutdown: AtomicBool,
    /// First panic payload captured from a helper lane this dispatch.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Park/wake for the spin-then-park barrier.
    lock: Mutex<()>,
    cvar: Condvar,
    /// Nanoseconds the dispatcher spent waiting on helpers after finishing
    /// its own lane (the barrier cost), accumulated until drained.
    wait_ns: AtomicU64,
    /// Nanoseconds spent publishing jobs (handoff cost), accumulated.
    dispatch_ns: AtomicU64,
    /// Barrier wait of the most recent dispatch only (autotune feedback).
    last_wait_ns: AtomicU64,
    /// Per-lane index ranges for the queued dispatch, packed
    /// `head << 32 | tail`; rewritten before every queued epoch.
    queues: Vec<AtomicU64>,
    /// Adaptive chunk-size hint for queue claims, bounded to
    /// `[CHUNK_HINT_MIN, CHUNK_HINT_MAX]`.
    chunk_hint: AtomicU64,
    /// Successful steal claims since the last drain.
    steals: AtomicU64,
    /// Items moved by steal claims since the last drain.
    stolen_items: AtomicU64,
    /// Spin iterations before a helper parks; 0 when oversubscribed.
    spin_limit: u32,
}

// SAFETY: `job` is only written by the dispatching thread while no helper
// is between epoch-observation and its `remaining` decrement; the
// release/acquire pair on `epoch` orders the write before any read.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// Spin iterations before the *dispatcher* yields while waiting on helpers.
const DISPATCH_SPIN: u32 = 1 << 10;
/// Spin iterations before an idle *helper* parks on the condvar.
const HELPER_SPIN: u32 = 1 << 14;
/// Dispatches of this many items or fewer run inline on the calling thread:
/// the epoch handoff costs more than the work it would distribute.
const TINY_INLINE: usize = 2;
/// Smallest chunk a queue claim may take.
const CHUNK_HINT_MIN: u64 = 1;
/// Largest chunk a queue claim may take.
const CHUNK_HINT_MAX: u64 = 256;
/// Initial chunk-size hint before any barrier feedback arrives.
const CHUNK_HINT_INIT: u64 = 8;

/// Packs a queue range `[head, tail)` into one atomic word.
fn pack_range(head: usize, tail: usize) -> u64 {
    ((head as u64) << 32) | tail as u64
}

/// Claims up to `chunk` indices from the *front* of `q` (the owner side).
/// Returns the claimed `[begin, end)` range, or `None` when empty.
fn claim_front(q: &AtomicU64, chunk: usize) -> Option<(usize, usize)> {
    let mut cur = q.load(Ordering::Acquire);
    loop {
        let head = (cur >> 32) as usize;
        let tail = (cur & 0xFFFF_FFFF) as usize;
        if head >= tail {
            return None;
        }
        let take = chunk.min(tail - head);
        match q.compare_exchange_weak(
            cur,
            pack_range(head + take, tail),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((head, head + take)),
            Err(seen) => cur = seen,
        }
    }
}

/// Claims up to `chunk` indices from the *back* of `q` (the thief side).
/// Front and back claims race on the same word, so owner and thieves can
/// never hand out overlapping ranges.
fn claim_back(q: &AtomicU64, chunk: usize) -> Option<(usize, usize)> {
    let mut cur = q.load(Ordering::Acquire);
    loop {
        let head = (cur >> 32) as usize;
        let tail = (cur & 0xFFFF_FFFF) as usize;
        if head >= tail {
            return None;
        }
        let take = chunk.min(tail - head);
        match q.compare_exchange_weak(
            cur,
            pack_range(head, tail - take),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((tail - take, tail)),
            Err(seen) => cur = seen,
        }
    }
}

fn helper_loop(shared: Arc<Shared>, lane: usize) {
    // The baseline is the epoch at spawn time (0), NOT a fresh load: a
    // dispatch can land before this thread first runs, and reading the
    // already-bumped epoch here would make the helper skip that job —
    // leaving the dispatcher spinning on a count that never drains.
    let mut seen = 0u64;
    loop {
        // Wait for the next epoch: spin briefly, then park.
        let mut spins = 0u32;
        let current = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            if spins < shared.spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let mut guard = shared.lock.lock().expect("pool lock poisoned");
                shared.sleepers.fetch_add(1, Ordering::Relaxed);
                loop {
                    let e = shared.epoch.load(Ordering::Acquire);
                    if e != seen {
                        shared.sleepers.fetch_sub(1, Ordering::Relaxed);
                        drop(guard);
                        break;
                    }
                    guard = shared.cvar.wait(guard).expect("pool lock poisoned");
                }
                break shared.epoch.load(Ordering::Acquire);
            }
        };
        seen = current;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch acquire pairs with the dispatcher's release
        // store, ordering the job write before this read.
        let job = unsafe { (*shared.job.get()).expect("dispatch published no job") };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(lane))) {
            let mut slot = shared.panic.lock().expect("panic slot poisoned");
            slot.get_or_insert(payload);
        }
        shared.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// The spawned helper threads plus shared barrier state; dropped (and
/// joined) when the last [`WorkerPool`] clone goes away.
struct PoolCore {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Serializes dispatches: jobs must never dispatch on their own pool.
    dispatching: AtomicBool,
}

impl PoolCore {
    fn new(workers: usize) -> Self {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            remaining: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
            wait_ns: AtomicU64::new(0),
            dispatch_ns: AtomicU64::new(0),
            last_wait_ns: AtomicU64::new(0),
            queues: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            chunk_hint: AtomicU64::new(CHUNK_HINT_INIT),
            steals: AtomicU64::new(0),
            stolen_items: AtomicU64::new(0),
            // Oversubscribed helpers park immediately: spinning on a lane
            // that shares a hardware thread with working lanes only delays
            // the barrier.
            spin_limit: if workers > hardware { 0 } else { HELPER_SPIN },
        });
        let threads = (1..workers)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("collapois-worker-{lane}"))
                    .spawn(move || helper_loop(shared, lane))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            threads,
            dispatching: AtomicBool::new(false),
        }
    }

    /// Publishes `f` to every lane (helpers run lanes `1..workers`, the
    /// calling thread runs lane 0) and blocks until all lanes finish.
    /// Propagates the first panic from any lane.
    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        assert!(
            !self.dispatching.swap(true, Ordering::Acquire),
            "nested dispatch on the same WorkerPool (jobs must not dispatch)"
        );
        let start = Instant::now();
        let helpers = self.threads.len();
        // SAFETY: helpers only dereference the job between the epoch bump
        // below and their `remaining` decrement, and this thread blocks on
        // `remaining == 0` before `f` leaves scope — the 'static is never
        // outlived in practice.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.remaining.store(helpers, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        // Wake parked helpers. Checking `sleepers` under the lock pairs
        // with helpers re-checking the epoch under the same lock before
        // waiting, so no wake-up can be lost.
        {
            let _guard = self.shared.lock.lock().expect("pool lock poisoned");
            if self.shared.sleepers.load(Ordering::Relaxed) > 0 {
                self.shared.cvar.notify_all();
            }
        }
        self.shared
            .dispatch_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Lane 0 on the calling thread.
        let local = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Barrier: wait for the helper lanes.
        let wait_start = Instant::now();
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            if spins < DISPATCH_SPIN {
                spins += 1;
                std::hint::spin_loop();
            } else {
                spins = 0;
                std::thread::yield_now();
            }
        }
        let waited = wait_start.elapsed().as_nanos() as u64;
        self.shared.wait_ns.fetch_add(waited, Ordering::Relaxed);
        self.shared.last_wait_ns.store(waited, Ordering::Relaxed);
        unsafe { *self.shared.job.get() = None };
        self.dispatching.store(false, Ordering::Release);

        if let Err(payload) = local {
            resume_unwind(payload);
        }
        let helper_panic = self
            .shared
            .panic
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
    }

    /// Queued dispatch: runs `work(lane, begin, end)` over disjoint
    /// subranges that exactly cover `0..n`. Lanes drain their own
    /// contiguous range from the front, then steal chunks from the back of
    /// other lanes' queues until every queue is empty. The chunk size comes
    /// from the adaptive hint, clamped so each lane's initial range holds
    /// at least a few chunks; after the barrier the hint is steered by the
    /// dispatch's measured wait fraction.
    fn run_queued(&self, workers: usize, n: usize, work: &(dyn Fn(usize, usize, usize) + Sync)) {
        debug_assert!(n <= u32::MAX as usize, "queued dispatch holds u32 indices");
        debug_assert_eq!(self.shared.queues.len(), workers);
        for (lane, q) in self.shared.queues.iter().enumerate() {
            q.store(
                pack_range(lane * n / workers, (lane + 1) * n / workers),
                Ordering::Relaxed,
            );
        }
        let hint = self.shared.chunk_hint.load(Ordering::Relaxed);
        // Keep at least ~4 claims per lane so there is something to steal.
        let chunk = (hint as usize).min((n / (workers * 4)).max(1));
        let start = Instant::now();
        let shared = &self.shared;
        self.run(&|lane| {
            while let Some((begin, end)) = claim_front(&shared.queues[lane], chunk) {
                work(lane, begin, end);
            }
            // Queues only ever shrink within a dispatch, so one pass over
            // the victims (draining each) observes every item claimed.
            let mut steals = 0u64;
            let mut stolen = 0u64;
            for offset in 1..workers {
                let victim = (lane + offset) % workers;
                while let Some((begin, end)) = claim_back(&shared.queues[victim], chunk) {
                    steals += 1;
                    stolen += (end - begin) as u64;
                    work(lane, begin, end);
                }
            }
            if steals > 0 {
                shared.steals.fetch_add(steals, Ordering::Relaxed);
                shared.stolen_items.fetch_add(stolen, Ordering::Relaxed);
            }
        });
        // Autotune: a dispatch that spent >25 % of its wall clock waiting on
        // the barrier was imbalanced — halve the chunk so stealing divides
        // finer. Under 5 % the lanes were level — double it to amortize the
        // claim CAS. Dispatches are serialized, so the plain store is safe.
        let total_ns = (start.elapsed().as_nanos() as u64).max(1);
        let waited = self.shared.last_wait_ns.load(Ordering::Relaxed);
        let steered = if waited.saturating_mul(4) > total_ns {
            (hint / 2).max(CHUNK_HINT_MIN)
        } else if waited.saturating_mul(20) < total_ns {
            (hint * 2).min(CHUNK_HINT_MAX)
        } else {
            hint
        };
        if steered != hint {
            self.shared.chunk_hint.store(steered, Ordering::Relaxed);
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.lock.lock().expect("pool lock poisoned");
            self.shared.cvar.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fixed-width fan-out helper over persistent worker threads.
///
/// Cloning is cheap and shares the underlying threads; the threads are
/// joined when the last clone is dropped. A `workers = 1` pool holds no
/// threads and runs everything inline.
#[derive(Clone)]
pub struct WorkerPool {
    workers: usize,
    core: Option<Arc<PoolCore>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

/// Raw-pointer capsule so job closures can index disjoint slots of a
/// caller-owned buffer from multiple lanes.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Sync for SyncPtr<T> {}
unsafe impl<T> Send for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl WorkerPool {
    /// Creates a pool running at most `workers` jobs concurrently.
    /// `workers = 0` is treated as 1 (fully sequential). Spawns
    /// `workers − 1` persistent helper threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            core: (workers > 1).then(|| Arc::new(PoolCore::new(workers))),
        }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at 8 —
    /// round fan-out saturates well before that for quick-scale runs).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n.min(8))
    }

    /// Number of concurrent jobs this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drains the accumulated barrier cost: nanoseconds the dispatching
    /// thread spent waiting for helper lanes after finishing its own lane,
    /// plus nanoseconds spent publishing jobs, since the last drain.
    /// Always `(0, 0)` for a sequential pool.
    pub fn take_sync_ns(&self) -> (u64, u64) {
        match &self.core {
            Some(core) => (
                core.shared.wait_ns.swap(0, Ordering::Relaxed),
                core.shared.dispatch_ns.swap(0, Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// Drains the work-stealing counters since the last drain: `(steal
    /// claims, items moved by steals)`. Always `(0, 0)` for a sequential
    /// pool — there is nobody to steal from.
    pub fn take_steal_stats(&self) -> (u64, u64) {
        match &self.core {
            Some(core) => (
                core.shared.steals.swap(0, Ordering::Relaxed),
                core.shared.stolen_items.swap(0, Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// Runs `work(lane, &mut arena)` once on every lane's own thread — a
    /// pinned dispatch that bypasses the stealing queues — growing
    /// `arenas` to one per lane first.
    ///
    /// Work-stealing makes lane participation schedule-dependent: an
    /// ordinary dispatch gives no guarantee that any particular helper
    /// thread runs anything, so state that grows on first use — lazily
    /// sized arena buffers, thread-local kernel scratch — can pay its
    /// one-off allocations arbitrarily late. Callers that need
    /// allocation-free steady state (the zero-alloc round-loop tests)
    /// warm every lane with this before they start counting.
    pub fn warm_lanes<A, I, F>(&self, arenas: &mut WorkerArenas<A>, init: I, work: F)
    where
        A: Send,
        I: FnMut() -> A,
        F: Fn(usize, &mut A) + Sync,
    {
        arenas.ensure_with(self.workers, init);
        match &self.core {
            Some(core) => {
                let arenas_ptr = SyncPtr(arenas.arenas.as_mut_ptr());
                core.run(&|lane| {
                    // SAFETY: `lane` is unique to the executing thread for
                    // the whole dispatch, so this is the only live
                    // reference to its arena slot.
                    work(lane, unsafe { &mut *arenas_ptr.get().add(lane) });
                });
            }
            None => work(0, &mut arenas.arenas[0]),
        }
    }

    /// Runs `work(lane, begin, end)` over disjoint subranges covering
    /// `0..n`, each index handed to exactly one lane. Sequential pools and
    /// tiny dispatches (`n <= TINY_INLINE`) run inline as lane 0 with no
    /// synchronization; otherwise the queued work-stealing dispatch runs.
    fn run_ranges(&self, n: usize, work: &(dyn Fn(usize, usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        match &self.core {
            Some(core) if n > TINY_INLINE => core.run_queued(self.workers, n, work),
            _ => work(0, 0, n),
        }
    }

    /// Number of lanes a dispatch over `n` items can touch (and therefore
    /// how many arenas it needs): 1 on the inline paths, all of them on the
    /// queued path — stealing can route any index to any lane.
    fn lanes_for(&self, n: usize) -> usize {
        if self.workers == 1 || n <= TINY_INLINE {
            1
        } else {
            self.workers
        }
    }

    /// Applies `f` to every item, returning outputs in input order.
    ///
    /// `f` receives `(input_index, item)`. With one worker (or a tiny
    /// input) this runs inline on the caller's thread; otherwise items flow
    /// through the work-stealing index queues. Because each output lands in
    /// the slot of its input index, the result is independent of
    /// scheduling, worker count, and steal order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`. Unprocessed items leak (they are never
    /// dropped) if a lane panics.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        let mut items = items;
        let mut out: Vec<U> = Vec::with_capacity(n);
        let items_ptr = SyncPtr(items.as_mut_ptr());
        let out_ptr = SyncPtr(out.as_mut_ptr());
        // Elements are moved out through raw reads below; drop the vec's
        // claim on them first so a panicking lane cannot double-drop.
        unsafe { items.set_len(0) };
        self.run_ranges(n, &|_lane, begin, end| {
            for i in begin..end {
                // SAFETY: the queue protocol hands each index to exactly
                // one lane and both buffers hold >= n slots.
                let item = unsafe { std::ptr::read(items_ptr.get().add(i)) };
                let value = f(i, item);
                unsafe { std::ptr::write(out_ptr.get().add(i), value) };
            }
        });
        // SAFETY: every slot 0..n was written by exactly one lane.
        unsafe { out.set_len(n) };
        out
    }

    /// Like [`WorkerPool::map`], but hands each lane a persistent scratch
    /// arena from `arenas` (built on demand with `init`, reused verbatim on
    /// subsequent calls). Outputs are returned in input order.
    ///
    /// Jobs must treat the arena as pure scratch: the output for an item
    /// must not depend on which arena served it or on anything a previous
    /// job left behind. Under that contract the result is bitwise identical
    /// across worker counts and to the arena-free path.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn map_with_arena<A, T, U, F, I>(
        &self,
        arenas: &mut WorkerArenas<A>,
        items: Vec<T>,
        init: I,
        f: F,
    ) -> Vec<U>
    where
        A: Send,
        T: Send,
        U: Send,
        F: Fn(usize, T, &mut A) -> U + Sync,
        I: FnMut() -> A,
    {
        let mut items = items;
        let mut out = Vec::new();
        self.map_with_arena_into(arenas, &mut items, &mut out, init, f);
        out
    }

    /// Zero-allocation [`WorkerPool::map_with_arena`]: drains `items` and
    /// writes one output per item into `out` (cleared first), reusing both
    /// buffers' capacity. In steady state — once `out` has grown to the
    /// high-water item count and every arena exists — a call performs no
    /// heap allocation at any worker count.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`; `items` is left empty (unprocessed
    /// elements leak) and `out` empty in that case.
    pub fn map_with_arena_into<A, T, U, F, I>(
        &self,
        arenas: &mut WorkerArenas<A>,
        items: &mut Vec<T>,
        out: &mut Vec<U>,
        init: I,
        f: F,
    ) where
        A: Send,
        T: Send,
        U: Send,
        F: Fn(usize, T, &mut A) -> U + Sync,
        I: FnMut() -> A,
    {
        let n = items.len();
        out.clear();
        if n == 0 {
            return;
        }
        arenas.ensure_with(self.lanes_for(n), init);
        out.reserve(n);
        let items_ptr = SyncPtr(items.as_mut_ptr());
        let out_ptr = SyncPtr(out.as_mut_ptr());
        let arenas_ptr = SyncPtr(arenas.arenas.as_mut_ptr());
        unsafe { items.set_len(0) };
        self.run_ranges(n, &|lane, begin, end| {
            // SAFETY: `lane` is unique to the executing thread for the
            // whole dispatch, so this is the only live reference to its
            // arena slot — stealing reroutes indices, never arenas.
            let arena = unsafe { &mut *arenas_ptr.get().add(lane) };
            for i in begin..end {
                // SAFETY: the queue protocol hands each index to exactly
                // one lane and both buffers hold >= n slots.
                let item = unsafe { std::ptr::read(items_ptr.get().add(i)) };
                let value = f(i, item, arena);
                unsafe { std::ptr::write(out_ptr.get().add(i), value) };
            }
        });
        // SAFETY: every slot 0..n was written by exactly one lane.
        unsafe { out.set_len(n) };
    }

    /// Splits `data` into fixed-length chunks (`chunk_len` elements, last
    /// one shorter) and runs `f(chunk_index, chunk)` for every chunk in
    /// parallel, mutating the chunks in place. Chunk boundaries depend only
    /// on `data.len()` and `chunk_len` — never on the worker count — which
    /// is the shard-boundary determinism rule: any per-chunk computation is
    /// bitwise identical at every worker count.
    ///
    /// Allocation-free at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`; propagates panics from `f`.
    pub fn for_chunks_mut<U, F>(&self, data: &mut [U], chunk_len: usize, f: F)
    where
        U: Send,
        F: Fn(usize, &mut [U]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let n = data.len();
        if n == 0 {
            return;
        }
        let nchunks = n.div_ceil(chunk_len);
        let base = SyncPtr(data.as_mut_ptr());
        self.run_ranges(nchunks, &|_lane, cbegin, cend| {
            for c in cbegin..cend {
                let start = c * chunk_len;
                let end = (start + chunk_len).min(n);
                // SAFETY: chunks are disjoint and within bounds; the queue
                // protocol hands each chunk index to exactly one lane.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(c, chunk);
            }
        });
    }

    /// [`WorkerPool::for_chunks_mut`] with a persistent per-lane scratch
    /// arena (same contract as [`WorkerPool::map_with_arena`]: outputs must
    /// not depend on which arena served a chunk).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`; propagates panics from `f`.
    pub fn for_chunks_mut_with_arena<A, U, F, I>(
        &self,
        arenas: &mut WorkerArenas<A>,
        data: &mut [U],
        chunk_len: usize,
        init: I,
        f: F,
    ) where
        A: Send,
        U: Send,
        F: Fn(usize, &mut [U], &mut A) + Sync,
        I: FnMut() -> A,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let n = data.len();
        if n == 0 {
            return;
        }
        let nchunks = n.div_ceil(chunk_len);
        arenas.ensure_with(self.lanes_for(nchunks), init);
        let base = SyncPtr(data.as_mut_ptr());
        let arenas_ptr = SyncPtr(arenas.arenas.as_mut_ptr());
        self.run_ranges(nchunks, &|lane, cbegin, cend| {
            // SAFETY: `lane` is unique to the executing thread for the
            // whole dispatch, so this is the only live reference to its
            // arena slot.
            let arena = unsafe { &mut *arenas_ptr.get().add(lane) };
            for c in cbegin..cend {
                let start = c * chunk_len;
                let end = (start + chunk_len).min(n);
                // SAFETY: chunks are disjoint and within bounds; the queue
                // protocol hands each chunk index to exactly one lane.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(c, chunk, arena);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(items.clone(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_matches_sequential_for_stateful_jobs() {
        // Each job derives its own value from its index only; any schedule
        // must produce the same vector.
        let seq = WorkerPool::new(1).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        let par = WorkerPool::new(4).map((0..100).collect(), |i, _x: usize| i as u64 * 7 + 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.map(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![5u32], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(WorkerPool::auto().workers() >= 1);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        // The persistent barrier must hand off thousands of jobs without
        // wedging (regression test for lost wake-ups in spin-then-park).
        let pool = WorkerPool::new(4);
        for round in 0..2000usize {
            let out = pool.map(vec![1u64; 16], |i, x| x + (i + round) as u64);
            assert_eq!(out.len(), 16);
            assert_eq!(out[0], 1 + round as u64);
        }
    }

    #[test]
    fn owned_items_are_dropped_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(#[allow(dead_code)] usize);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = WorkerPool::new(3);
        let items: Vec<Tracked> = (0..50).map(Tracked).collect();
        let out = pool.map(items, |i, t| {
            let v = t.0 + i;
            drop(t);
            v
        });
        assert_eq!(out.len(), 50);
        assert_eq!(DROPS.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panic_in_lane_propagates() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..32usize).collect::<Vec<_>>(), |i, x| {
                if i == 17 {
                    panic!("lane boom");
                }
                x
            })
        }));
        assert!(result.is_err());
        // The pool must stay usable after a propagated panic.
        let out = pool.map(vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn arenas_are_built_lazily_and_reused() {
        let pool = WorkerPool::new(3);
        let mut arenas: WorkerArenas<Vec<u8>> = WorkerArenas::new();
        assert!(arenas.is_empty());
        let out = pool.map_with_arena(&mut arenas, (0..10usize).collect(), Vec::new, |i, x, a| {
            a.push(1); // arenas accumulate across jobs within a call...
            i + x
        });
        assert_eq!(out, (0..10).map(|x| 2 * x).collect::<Vec<_>>());
        assert_eq!(arenas.len(), 3);
        // ...and persist across calls: no new arenas, contents retained.
        let total_before: usize = arenas.arenas.iter().map(Vec::len).sum();
        assert_eq!(total_before, 10);
        pool.map_with_arena(&mut arenas, vec![0usize; 4], Vec::new, |_, _, a| a.push(1));
        assert_eq!(arenas.len(), 3);
        let total_after: usize = arenas.arenas.iter().map(Vec::len).sum();
        assert!(total_after > total_before);
    }

    #[test]
    fn warm_lanes_runs_once_per_lane_on_distinct_threads() {
        let pool = WorkerPool::new(4);
        let mut arenas: WorkerArenas<usize> = WorkerArenas::new();
        let seen = Mutex::new(Vec::new());
        pool.warm_lanes(
            &mut arenas,
            || 0usize,
            |lane, hits| {
                *hits += 1;
                seen.lock()
                    .unwrap()
                    .push((lane, std::thread::current().id()));
            },
        );
        assert_eq!(arenas.len(), 4);
        // Every lane ran exactly once — stealing cannot skip a lane here.
        assert_eq!(arenas.arenas, vec![1usize; 4]);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_by_key(|&(lane, _)| lane);
        assert_eq!(
            seen.iter().map(|&(lane, _)| lane).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // ...and on four distinct threads (lane 0 is the caller).
        let mut tids: Vec<_> = seen.iter().map(|&(_, tid)| tid).collect();
        tids.dedup();
        assert_eq!(tids.len(), 4);
        assert_eq!(seen[0].1, std::thread::current().id());

        // The sequential pool warms its single lane inline.
        let seq = WorkerPool::new(1);
        let mut arenas: WorkerArenas<usize> = WorkerArenas::new();
        seq.warm_lanes(&mut arenas, || 0usize, |_, hits| *hits += 1);
        assert_eq!(arenas.arenas, vec![1usize]);
    }

    #[test]
    fn map_with_arena_matches_map_for_pure_jobs() {
        let items: Vec<usize> = (0..23).collect();
        let plain = WorkerPool::new(4).map(items.clone(), |i, x| i as u64 + x as u64);
        for workers in [1, 2, 4] {
            let mut arenas: WorkerArenas<()> = WorkerArenas::new();
            let pooled = WorkerPool::new(workers).map_with_arena(
                &mut arenas,
                items.clone(),
                || (),
                |i, x, _| i as u64 + x as u64,
            );
            assert_eq!(pooled, plain);
        }
    }

    #[test]
    fn map_with_arena_empty_input_builds_nothing() {
        let mut arenas: WorkerArenas<Vec<u8>> = WorkerArenas::new();
        let out: Vec<u8> =
            WorkerPool::new(4).map_with_arena(&mut arenas, Vec::<u8>::new(), Vec::new, |_, x, _| x);
        assert!(out.is_empty());
        assert!(arenas.is_empty());
    }

    #[test]
    fn map_with_arena_into_reuses_buffers() {
        let pool = WorkerPool::new(4);
        let mut arenas: WorkerArenas<()> = WorkerArenas::new();
        let mut items: Vec<usize> = (0..40).collect();
        let mut out: Vec<usize> = Vec::new();
        pool.map_with_arena_into(&mut arenas, &mut items, &mut out, || (), |i, x, _| i * x);
        assert!(items.is_empty());
        assert_eq!(out, (0..40).map(|x| x * x).collect::<Vec<_>>());
        let cap_items = items.capacity();
        let cap_out = out.capacity();
        // Refill and re-run: capacities must be reused, outputs replaced.
        items.extend(0..40);
        pool.map_with_arena_into(&mut arenas, &mut items, &mut out, || (), |i, x, _| i + x);
        assert_eq!(out, (0..40).map(|x| 2 * x).collect::<Vec<_>>());
        assert_eq!(items.capacity(), cap_items);
        assert_eq!(out.capacity(), cap_out);
    }

    #[test]
    fn for_chunks_mut_is_worker_count_invariant() {
        let reference: Vec<u64> = {
            let mut data: Vec<u64> = (0..103).collect();
            WorkerPool::new(1).for_chunks_mut(&mut data, 8, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v = v.wrapping_mul(31).wrapping_add(c as u64);
                }
            });
            data
        };
        for workers in [2, 3, 4, 8] {
            let mut data: Vec<u64> = (0..103).collect();
            WorkerPool::new(workers).for_chunks_mut(&mut data, 8, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v = v.wrapping_mul(31).wrapping_add(c as u64);
                }
            });
            assert_eq!(data, reference, "workers={workers}");
        }
    }

    #[test]
    fn for_chunks_mut_with_arena_covers_all_chunks() {
        let pool = WorkerPool::new(4);
        let mut arenas: WorkerArenas<Vec<usize>> = WorkerArenas::new();
        let mut data = vec![0u8; 57];
        pool.for_chunks_mut_with_arena(&mut arenas, &mut data, 10, Vec::new, |c, chunk, seen| {
            seen.push(c);
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1), "every element visited once");
        let mut all: Vec<usize> = arenas.arenas.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>(), "chunks 0..6 each ran once");
    }

    #[test]
    fn stealing_is_worker_count_invariant_under_skew() {
        // Heavily skewed per-item cost: the first indices are expensive, so
        // multi-worker runs steal aggressively. Any steal schedule must
        // produce the same output vector as the sequential run.
        fn cost(i: usize) -> u64 {
            let mut acc = i as u64 + 1;
            let iters = if i < 8 { 20_000 } else { 10 };
            for k in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        }
        let reference: Vec<u64> = (0..64).map(cost).collect();
        for workers in [1, 2, 4, 8] {
            let out = WorkerPool::new(workers).map((0..64usize).collect(), |i, x| {
                assert_eq!(i, x);
                cost(i)
            });
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn an_idle_lane_steals_a_stuck_lanes_queue() {
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        // n = 8, W = 2: lane 0 owns [0, 4), lane 1 owns [4, 8), and the
        // first dispatch claims single items (the hint is clamped to
        // n / (W * 4) = 1). Item 0 parks lane 0 until five items are done —
        // lane 1 holds only four, so the fifth must be stolen from lane 0's
        // queue. Termination is guaranteed by the steal pass.
        let out = pool.map((0..8usize).collect(), |i, x| {
            if i == 0 {
                while done.load(Ordering::SeqCst) < 5 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            x * 2
        });
        assert_eq!(out, (0..8).map(|x| x * 2).collect::<Vec<_>>());
        let (steals, stolen) = pool.take_steal_stats();
        assert!(steals >= 1, "lane 1 must have stolen from lane 0");
        assert!((1..=8).contains(&stolen));
        assert_eq!(pool.take_steal_stats(), (0, 0), "drained");
    }

    #[test]
    fn tiny_dispatches_run_inline_on_the_caller() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let out = pool.map(vec![1u32, 2], |_, x| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "tiny dispatch must not hand off"
            );
            x + 1
        });
        assert_eq!(out, vec![2, 3]);
        assert_eq!(pool.take_sync_ns(), (0, 0), "no epoch was published");
        assert_eq!(WorkerPool::new(1).take_steal_stats(), (0, 0));
    }

    #[test]
    fn queue_claims_are_disjoint_and_exhaustive() {
        // Hammer the claim protocol directly: every index must be handed
        // out exactly once regardless of chunk size or claim side.
        for chunk in [1, 3, 7, 64] {
            let q = AtomicU64::new(pack_range(0, 100));
            let mut seen = vec![0u8; 100];
            loop {
                let front = claim_front(&q, chunk);
                let back = claim_back(&q, chunk);
                for (begin, end) in front.into_iter().chain(back) {
                    for slot in &mut seen[begin..end] {
                        *slot += 1;
                    }
                }
                if front.is_none() && back.is_none() {
                    break;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "chunk={chunk}: {seen:?}");
        }
    }

    #[test]
    fn sync_counters_accumulate_and_drain() {
        let pool = WorkerPool::new(2);
        let _ = pool.take_sync_ns();
        pool.map((0..64usize).collect::<Vec<_>>(), |_, x| x + 1);
        let (_wait, dispatch) = pool.take_sync_ns();
        assert!(dispatch > 0, "dispatch cost must be recorded");
        assert_eq!(pool.take_sync_ns(), (0, 0), "drained");
        // Sequential pools never synchronize.
        assert_eq!(WorkerPool::new(1).take_sync_ns(), (0, 0));
    }
}
