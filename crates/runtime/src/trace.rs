//! Structured run traces: one JSON object per line (JSONL).
//!
//! Every run emits a stream of [`TraceEvent`]s — run lifecycle, per-round
//! results, drift alerts, checkpoint saves. The trace is the canonical
//! record of a run: round summaries consumed by scenario reports and bench
//! figures are rebuilt from these events, so what lands on disk and what
//! the in-process consumers see are the same data by construction.
//!
//! Serialization is hand-rolled (this workspace is dependency-free): a
//! fixed schema per variant tagged by an `"event"` field, a minimal string
//! escaper, and a small recursive-descent JSON reader for the inverse
//! direction (`trace` CLI inspection, resume tooling, tests).
//!
//! Wall-clock fields (`elapsed_ms`) are the only nondeterministic content;
//! [`TraceEvent::normalized`] zeroes them so two traces can be compared
//! bit-for-bit in determinism tests.

use std::fmt::Write as _;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One line of a run trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Emitted once when the round loop starts (or resumes).
    RunStarted {
        /// Seed all RNG streams derive from.
        run_seed: u64,
        /// Hash of the run config.
        config_hash: u64,
        /// Total client population.
        num_clients: usize,
        /// Rounds the run will execute in total.
        rounds: usize,
        /// Worker threads used for client fan-out.
        workers: usize,
        /// Aggregation rule in effect.
        aggregator: String,
        /// Round a checkpoint resumed from, if any.
        resumed_from: Option<u32>,
    },
    /// Client sampling outcome at the top of a round.
    RoundStarted {
        /// Round index.
        round: usize,
        /// Sampled client ids, ascending.
        sampled: Vec<usize>,
        /// Subset of `sampled` under adversary control, ascending.
        compromised: Vec<usize>,
    },
    /// Aggregated results at the bottom of a round.
    RoundCompleted {
        /// Round index.
        round: usize,
        /// Aggregation rule applied this round.
        aggregator: String,
        /// Number of malicious updates submitted.
        num_malicious: usize,
        /// L2 norms of benign client updates, in sampled order.
        benign_norms: Vec<f64>,
        /// L2 norms of malicious client updates, in sampled order.
        malicious_norms: Vec<f64>,
        /// L2 norm of the aggregated (post-defense) global delta.
        agg_delta_norm: f64,
        /// Wall-clock time for the round, milliseconds.
        elapsed_ms: f64,
    },
    /// A monitor flagged anomalous global-model drift.
    ShiftAlert {
        /// Round the alert fired.
        round: usize,
        /// Observed displacement/utility value.
        observed: f64,
        /// Robust baseline (median) of the series.
        baseline_median: f64,
        /// Robust z-score of the observation.
        z_score: f64,
    },
    /// A snapshot was written.
    CheckpointSaved {
        /// Next round to execute when resuming from this snapshot.
        round: usize,
        /// Path the snapshot was written to.
        path: String,
    },
    /// A fault-plan decision removed a sampled client from the round's
    /// cohort (injected dropout, or a straggler shed by the deadline).
    ClientDropped {
        /// Round index.
        round: usize,
        /// The client removed from the cohort.
        client: usize,
        /// `"dropout"` or `"straggler"`.
        cause: String,
        /// Deterministic virtual delay for stragglers, in ms (0 for
        /// dropouts).
        delay_ms: f64,
    },
    /// The server rejected a client's update before aggregation
    /// (non-finite values — injected corruption or divergent training).
    UpdateRejected {
        /// Round index.
        round: usize,
        /// The client whose update was rejected.
        client: usize,
        /// `"injected_corruption"` or `"non_finite"`.
        reason: String,
    },
    /// A checkpoint-write attempt failed (injected or a real I/O error).
    CheckpointWriteFailed {
        /// Round the snapshot was for.
        round: usize,
        /// 1-based attempt number.
        attempt: usize,
        /// The error the attempt surfaced.
        error: String,
        /// Whether this was the final attempt (the snapshot was skipped).
        gave_up: bool,
    },
    /// Emitted once when the round loop finishes.
    RunCompleted {
        /// Rounds executed by this process (excludes resumed-over rounds).
        rounds_executed: usize,
        /// Total wall-clock time, milliseconds.
        elapsed_ms: f64,
    },
    /// Sim mode: a virtual client fetched the global model and started
    /// training.
    ClientArrived {
        /// Virtual time, integer microseconds (bitwise replay-stable).
        vtime_us: u64,
        /// Virtual client id.
        client: usize,
        /// Global model version the client fetched.
        version: u64,
    },
    /// Sim mode: an arrival was turned away without training.
    ClientUnavailable {
        /// Virtual time, integer microseconds.
        vtime_us: u64,
        /// Virtual client id.
        client: usize,
        /// `"offline"` (churn), `"busy"` (still training) or
        /// `"capacity"` (concurrency cap).
        reason: String,
    },
    /// Sim mode: the buffered-async aggregator merged its buffer.
    BufferFlushed {
        /// Virtual time, integer microseconds.
        vtime_us: u64,
        /// 0-based flush index (the sim analogue of a round).
        flush: u64,
        /// Completions merged.
        size: usize,
        /// Mean staleness (flushes elapsed since fetch) over the buffer.
        mean_staleness: f64,
        /// `"buffer_full"` (K reached) or `"deadline"`.
        cause: String,
    },
}

impl TraceEvent {
    /// The `"event"` tag this variant serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::RunStarted { .. } => "run_started",
            Self::RoundStarted { .. } => "round_started",
            Self::RoundCompleted { .. } => "round_completed",
            Self::ShiftAlert { .. } => "shift_alert",
            Self::CheckpointSaved { .. } => "checkpoint_saved",
            Self::ClientDropped { .. } => "client_dropped",
            Self::UpdateRejected { .. } => "update_rejected",
            Self::CheckpointWriteFailed { .. } => "checkpoint_write_failed",
            Self::RunCompleted { .. } => "run_completed",
            Self::ClientArrived { .. } => "client_arrived",
            Self::ClientUnavailable { .. } => "client_unavailable",
            Self::BufferFlushed { .. } => "buffer_flushed",
        }
    }

    /// A copy with all wall-clock fields zeroed, for bit-exact comparison
    /// of traces from runs that differ only in scheduling.
    pub fn normalized(&self) -> Self {
        let mut e = self.clone();
        match &mut e {
            Self::RoundCompleted { elapsed_ms, .. } | Self::RunCompleted { elapsed_ms, .. } => {
                *elapsed_ms = 0.0
            }
            _ => {}
        }
        e
    }

    /// A copy with wall-clock *and* host-shape fields zeroed: everything
    /// [`TraceEvent::normalized`] removes plus the `workers` count in
    /// `RunStarted`. What remains is the deterministic payload of the run —
    /// identical for any worker count — so canonical digests can pin a
    /// run's event sequence across host shapes (the grid conformance
    /// harness compares these across workers).
    pub fn canonical(&self) -> Self {
        let mut e = self.normalized();
        if let Self::RunStarted { workers, .. } = &mut e {
            *workers = 0;
        }
        e
    }

    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        push_str_field(&mut s, "event", self.kind());
        match self {
            Self::RunStarted {
                run_seed,
                config_hash,
                num_clients,
                rounds,
                workers,
                aggregator,
                resumed_from,
            } => {
                push_u64_field(&mut s, "run_seed", *run_seed);
                push_u64_field(&mut s, "config_hash", *config_hash);
                push_usize_field(&mut s, "num_clients", *num_clients);
                push_usize_field(&mut s, "rounds", *rounds);
                push_usize_field(&mut s, "workers", *workers);
                push_str_field(&mut s, "aggregator", aggregator);
                match resumed_from {
                    Some(r) => push_u64_field(&mut s, "resumed_from", u64::from(*r)),
                    None => push_null_field(&mut s, "resumed_from"),
                }
            }
            Self::RoundStarted {
                round,
                sampled,
                compromised,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_usize_array_field(&mut s, "sampled", sampled);
                push_usize_array_field(&mut s, "compromised", compromised);
            }
            Self::RoundCompleted {
                round,
                aggregator,
                num_malicious,
                benign_norms,
                malicious_norms,
                agg_delta_norm,
                elapsed_ms,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_str_field(&mut s, "aggregator", aggregator);
                push_usize_field(&mut s, "num_malicious", *num_malicious);
                push_f64_array_field(&mut s, "benign_norms", benign_norms);
                push_f64_array_field(&mut s, "malicious_norms", malicious_norms);
                push_num_field(&mut s, "agg_delta_norm", *agg_delta_norm);
                push_num_field(&mut s, "elapsed_ms", *elapsed_ms);
            }
            Self::ShiftAlert {
                round,
                observed,
                baseline_median,
                z_score,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_num_field(&mut s, "observed", *observed);
                push_num_field(&mut s, "baseline_median", *baseline_median);
                push_num_field(&mut s, "z_score", *z_score);
            }
            Self::CheckpointSaved { round, path } => {
                push_usize_field(&mut s, "round", *round);
                push_str_field(&mut s, "path", path);
            }
            Self::ClientDropped {
                round,
                client,
                cause,
                delay_ms,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_usize_field(&mut s, "client", *client);
                push_str_field(&mut s, "cause", cause);
                push_num_field(&mut s, "delay_ms", *delay_ms);
            }
            Self::UpdateRejected {
                round,
                client,
                reason,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_usize_field(&mut s, "client", *client);
                push_str_field(&mut s, "reason", reason);
            }
            Self::CheckpointWriteFailed {
                round,
                attempt,
                error,
                gave_up,
            } => {
                push_usize_field(&mut s, "round", *round);
                push_usize_field(&mut s, "attempt", *attempt);
                push_str_field(&mut s, "error", error);
                push_bool_field(&mut s, "gave_up", *gave_up);
            }
            Self::RunCompleted {
                rounds_executed,
                elapsed_ms,
            } => {
                push_usize_field(&mut s, "rounds_executed", *rounds_executed);
                push_num_field(&mut s, "elapsed_ms", *elapsed_ms);
            }
            Self::ClientArrived {
                vtime_us,
                client,
                version,
            } => {
                push_u64_field(&mut s, "vtime_us", *vtime_us);
                push_usize_field(&mut s, "client", *client);
                push_u64_field(&mut s, "version", *version);
            }
            Self::ClientUnavailable {
                vtime_us,
                client,
                reason,
            } => {
                push_u64_field(&mut s, "vtime_us", *vtime_us);
                push_usize_field(&mut s, "client", *client);
                push_str_field(&mut s, "reason", reason);
            }
            Self::BufferFlushed {
                vtime_us,
                flush,
                size,
                mean_staleness,
                cause,
            } => {
                push_u64_field(&mut s, "vtime_us", *vtime_us);
                push_u64_field(&mut s, "flush", *flush);
                push_usize_field(&mut s, "size", *size);
                push_num_field(&mut s, "mean_staleness", *mean_staleness);
                push_str_field(&mut s, "cause", cause);
            }
        }
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// Parses one JSON trace line.
    pub fn from_json(line: &str) -> Result<Self, TraceError> {
        let value = parse_json(line)?;
        let obj = value
            .as_object()
            .ok_or_else(|| err("line is not an object"))?;
        let kind = get_str(obj, "event")?;
        match kind {
            "run_started" => Ok(Self::RunStarted {
                run_seed: get_u64(obj, "run_seed")?,
                config_hash: get_u64(obj, "config_hash")?,
                num_clients: get_usize(obj, "num_clients")?,
                rounds: get_usize(obj, "rounds")?,
                workers: get_usize(obj, "workers")?,
                aggregator: get_str(obj, "aggregator")?.to_string(),
                resumed_from: match lookup(obj, "resumed_from")? {
                    Value::Null => None,
                    v => Some(
                        v.as_u64()
                            .ok_or_else(|| err("resumed_from must be an integer or null"))?
                            as u32,
                    ),
                },
            }),
            "round_started" => Ok(Self::RoundStarted {
                round: get_usize(obj, "round")?,
                sampled: get_usize_array(obj, "sampled")?,
                compromised: get_usize_array(obj, "compromised")?,
            }),
            "round_completed" => Ok(Self::RoundCompleted {
                round: get_usize(obj, "round")?,
                aggregator: get_str(obj, "aggregator")?.to_string(),
                num_malicious: get_usize(obj, "num_malicious")?,
                benign_norms: get_f64_array(obj, "benign_norms")?,
                malicious_norms: get_f64_array(obj, "malicious_norms")?,
                agg_delta_norm: get_f64(obj, "agg_delta_norm")?,
                elapsed_ms: get_f64(obj, "elapsed_ms")?,
            }),
            "shift_alert" => Ok(Self::ShiftAlert {
                round: get_usize(obj, "round")?,
                observed: get_f64(obj, "observed")?,
                baseline_median: get_f64(obj, "baseline_median")?,
                z_score: get_f64(obj, "z_score")?,
            }),
            "checkpoint_saved" => Ok(Self::CheckpointSaved {
                round: get_usize(obj, "round")?,
                path: get_str(obj, "path")?.to_string(),
            }),
            "client_dropped" => Ok(Self::ClientDropped {
                round: get_usize(obj, "round")?,
                client: get_usize(obj, "client")?,
                cause: get_str(obj, "cause")?.to_string(),
                delay_ms: get_f64(obj, "delay_ms")?,
            }),
            "update_rejected" => Ok(Self::UpdateRejected {
                round: get_usize(obj, "round")?,
                client: get_usize(obj, "client")?,
                reason: get_str(obj, "reason")?.to_string(),
            }),
            "checkpoint_write_failed" => Ok(Self::CheckpointWriteFailed {
                round: get_usize(obj, "round")?,
                attempt: get_usize(obj, "attempt")?,
                error: get_str(obj, "error")?.to_string(),
                gave_up: get_bool(obj, "gave_up")?,
            }),
            "run_completed" => Ok(Self::RunCompleted {
                rounds_executed: get_usize(obj, "rounds_executed")?,
                elapsed_ms: get_f64(obj, "elapsed_ms")?,
            }),
            "client_arrived" => Ok(Self::ClientArrived {
                vtime_us: get_u64(obj, "vtime_us")?,
                client: get_usize(obj, "client")?,
                version: get_u64(obj, "version")?,
            }),
            "client_unavailable" => Ok(Self::ClientUnavailable {
                vtime_us: get_u64(obj, "vtime_us")?,
                client: get_usize(obj, "client")?,
                reason: get_str(obj, "reason")?.to_string(),
            }),
            "buffer_flushed" => Ok(Self::BufferFlushed {
                vtime_us: get_u64(obj, "vtime_us")?,
                flush: get_u64(obj, "flush")?,
                size: get_usize(obj, "size")?,
                mean_staleness: get_f64(obj, "mean_staleness")?,
                cause: get_str(obj, "cause")?.to_string(),
            }),
            other => Err(err(&format!("unknown event kind {other:?}"))),
        }
    }
}

/// In-memory trace with an optional JSONL file mirror.
///
/// Events are always retained in memory (so round summaries can be rebuilt
/// from the trace without re-reading the file); when a sink path is set,
/// each event is additionally appended to the file as it is pushed.
///
/// The exception is [`TraceLog::hashing`] mode, built for million-event
/// simulation runs: instead of retaining events it folds each one's
/// *normalized* JSON line into a running FNV-1a hash, so a whole event
/// sequence can be pinned against a golden fixture in O(1) memory.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    writer: Option<BufWriter<fs::File>>,
    hasher: Option<EventHasher>,
}

/// Running FNV-1a over normalized event JSON lines (one `\n` terminator
/// per line, matching a hash over the equivalent JSONL file).
#[derive(Debug, Clone, Copy)]
struct EventHasher {
    state: u64,
    count: u64,
}

impl EventHasher {
    fn new() -> Self {
        Self {
            state: 0xcbf2_9ce4_8422_2325,
            count: 0,
        }
    }

    fn fold(&mut self, line: &str) {
        for b in line.as_bytes().iter().chain(std::iter::once(&b'\n')) {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.count += 1;
    }
}

impl TraceLog {
    /// A memory-only trace.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A trace mirrored to a JSONL file (truncates any existing file).
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            events: Vec::new(),
            writer: Some(BufWriter::new(fs::File::create(path)?)),
            hasher: None,
        })
    }

    /// A hash-only trace: events are normalized (wall-clock fields
    /// zeroed), serialized, folded into a running FNV-1a and then
    /// discarded. [`TraceLog::events`] stays empty; read the digest with
    /// [`TraceLog::event_hash`]. This is the constructor for
    /// million-event simulations, where retaining the trace would defeat
    /// the bounded-memory guarantee.
    pub fn hashing() -> Self {
        Self {
            events: Vec::new(),
            writer: None,
            hasher: Some(EventHasher::new()),
        }
    }

    /// Appends an event (and writes it through to the file sink, if any).
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(h) = &mut self.hasher {
            h.fold(&event.normalized().to_json());
            return;
        }
        if let Some(w) = &mut self.writer {
            // Trace output is advisory; a full disk should not kill the
            // run, so sink errors drop the mirror and keep the memory log.
            let line = event.to_json();
            if writeln!(w, "{line}").is_err() {
                self.writer = None;
            }
        }
        self.events.push(event);
    }

    /// All events pushed so far (always empty in hashing mode).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// `(fnv1a hash, event count)` of the normalized event sequence.
    /// `None` unless this log was built with [`TraceLog::hashing`].
    pub fn event_hash(&self) -> Option<(u64, u64)> {
        self.hasher.map(|h| (h.state, h.count))
    }

    /// Flushes the file sink (no-op for memory-only traces).
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.writer {
            let _ = w.flush();
        }
    }
}

/// FNV-1a of an event sequence exactly as [`TraceLog::hashing`] computes
/// it — normalize, serialize, fold with a `\n` terminator per line — so
/// retained traces and hash-only traces can be cross-checked.
pub fn hash_events(events: &[TraceEvent]) -> (u64, u64) {
    let mut h = EventHasher::new();
    for e in events {
        h.fold(&e.normalized().to_json());
    }
    (h.state, h.count)
}

/// `(fnv1a hash, event count)` over [`TraceEvent::canonical`] JSON lines:
/// the worker-count-invariant digest of a run's event sequence. Two runs
/// of the same configuration at any worker counts must produce the same
/// canonical hash; the grid harness pins these against golden fixtures.
pub fn hash_canonical_events(events: &[TraceEvent]) -> (u64, u64) {
    let mut h = EventHasher::new();
    for e in events {
        h.fold(&e.canonical().to_json());
    }
    (h.state, h.count)
}

impl Drop for TraceLog {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Reads a JSONL trace file back into events.
///
/// Blank lines are skipped; any malformed line aborts with its line number.
pub fn read_trace(path: &Path) -> Result<Vec<TraceEvent>, TraceError> {
    let text = fs::read_to_string(path)
        .map_err(|e| err(&format!("cannot read {}: {e}", path.display())))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            TraceEvent::from_json(line).map_err(|e| err(&format!("line {}: {e}", i + 1)))?;
        events.push(event);
    }
    Ok(events)
}

/// A malformed trace line or file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(message: &str) -> TraceError {
    TraceError {
        message: message.to_string(),
    }
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float so it round-trips and stays valid JSON (no NaN/inf —
/// those serialize as null and read back as an error, which is the right
/// loudness for a poisoned norm).
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them
        // distinguishable as numbers that round-trip through f64.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    let _ = write!(s, "\"{key}\":\"{}\",", escape_json(value));
}

fn push_u64_field(s: &mut String, key: &str, value: u64) {
    let _ = write!(s, "\"{key}\":{value},");
}

fn push_usize_field(s: &mut String, key: &str, value: usize) {
    let _ = write!(s, "\"{key}\":{value},");
}

fn push_null_field(s: &mut String, key: &str) {
    let _ = write!(s, "\"{key}\":null,");
}

fn push_bool_field(s: &mut String, key: &str, value: bool) {
    let _ = write!(s, "\"{key}\":{value},");
}

fn push_num_field(s: &mut String, key: &str, value: f64) {
    let _ = write!(s, "\"{key}\":{},", fmt_num(value));
}

fn push_usize_array_field(s: &mut String, key: &str, values: &[usize]) {
    let _ = write!(s, "\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push_str("],");
}

fn push_f64_array_field(s: &mut String, key: &str, values: &[f64]) {
    let _ = write!(s, "\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&fmt_num(*v));
    }
    s.push_str("],");
}

// ---------------------------------------------------------------------------
// JSON reading (minimal recursive descent over the trace schema)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn lookup<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, TraceError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| err(&format!("missing field {key:?}")))
}

fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, TraceError> {
    lookup(obj, key)?
        .as_str()
        .ok_or_else(|| err(&format!("field {key:?} must be a string")))
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, TraceError> {
    lookup(obj, key)?
        .as_u64()
        .ok_or_else(|| err(&format!("field {key:?} must be a non-negative integer")))
}

fn get_usize(obj: &[(String, Value)], key: &str) -> Result<usize, TraceError> {
    Ok(get_u64(obj, key)? as usize)
}

fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, TraceError> {
    lookup(obj, key)?
        .as_f64()
        .ok_or_else(|| err(&format!("field {key:?} must be a number")))
}

fn get_bool(obj: &[(String, Value)], key: &str) -> Result<bool, TraceError> {
    match lookup(obj, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(err(&format!("field {key:?} must be a boolean"))),
    }
}

fn get_usize_array(obj: &[(String, Value)], key: &str) -> Result<Vec<usize>, TraceError> {
    match lookup(obj, key)? {
        Value::Arr(items) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| err(&format!("field {key:?} must contain only integers")))
            })
            .collect(),
        _ => Err(err(&format!("field {key:?} must be an array"))),
    }
}

fn get_f64_array(obj: &[(String, Value)], key: &str) -> Result<Vec<f64>, TraceError> {
    match lookup(obj, key)? {
        Value::Arr(items) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| err(&format!("field {key:?} must contain only numbers")))
            })
            .collect(),
        _ => Err(err(&format!("field {key:?} must be an array"))),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Value, TraceError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, TraceError> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| err("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(&format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, TraceError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(err(&format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, TraceError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.eat_literal("true", Value::Bool(true)),
            b'f' => self.eat_literal("false", Value::Bool(false)),
            b'n' => self.eat_literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn object(&mut self) -> Result<Value, TraceError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                c => return Err(err(&format!("expected ',' or '}}', got {:?}", c as char))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                c => return Err(err(&format!("expected ',' or ']', got {:?}", c as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err("invalid utf-8 in string"))?,
            );
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("invalid \\u escape"))?;
                            // Trace strings never contain surrogate pairs;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        c => return Err(err(&format!("invalid escape \\{:?}", c as char))),
                    }
                    self.pos += 1;
                }
                _ => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, TraceError> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| err(&format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_log_matches_hash_of_retained_events() {
        let events = sample_events();
        let mut retained = TraceLog::in_memory();
        let mut hashed = TraceLog::hashing();
        for e in &events {
            retained.push(e.clone());
            hashed.push(e.clone());
        }
        assert!(hashed.events().is_empty(), "hashing mode retains nothing");
        assert_eq!(hashed.event_hash(), Some(hash_events(retained.events())));
        assert_eq!(retained.event_hash(), None);
        let (h, n) = hashed.event_hash().unwrap();
        assert_eq!(n, events.len() as u64);
        assert_ne!(h, EventHasher::new().state, "events must perturb the hash");
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                run_seed: 42,
                config_hash: 0xABCD,
                num_clients: 16,
                rounds: 5,
                workers: 4,
                aggregator: "trimmed_mean".into(),
                resumed_from: None,
            },
            TraceEvent::RoundStarted {
                round: 0,
                sampled: vec![1, 4, 9],
                compromised: vec![4],
            },
            TraceEvent::RoundCompleted {
                round: 0,
                aggregator: "trimmed_mean".into(),
                num_malicious: 1,
                benign_norms: vec![0.5, 1.25],
                malicious_norms: vec![3.0],
                agg_delta_norm: 0.75,
                elapsed_ms: 12.5,
            },
            TraceEvent::ShiftAlert {
                round: 3,
                observed: 9.5,
                baseline_median: 1.0,
                z_score: 6.1,
            },
            TraceEvent::CheckpointSaved {
                round: 4,
                path: "/tmp/weird \"dir\"\\round-000004.ckpt".into(),
            },
            TraceEvent::ClientDropped {
                round: 2,
                client: 9,
                cause: "straggler".into(),
                delay_ms: 17.25,
            },
            TraceEvent::ClientDropped {
                round: 2,
                client: 4,
                cause: "dropout".into(),
                delay_ms: 0.0,
            },
            TraceEvent::UpdateRejected {
                round: 3,
                client: 1,
                reason: "injected_corruption".into(),
            },
            TraceEvent::CheckpointWriteFailed {
                round: 4,
                attempt: 2,
                error: "injected checkpoint-write fault".into(),
                gave_up: false,
            },
            TraceEvent::CheckpointWriteFailed {
                round: 4,
                attempt: 3,
                error: "disk on fire".into(),
                gave_up: true,
            },
            TraceEvent::ClientArrived {
                vtime_us: 1_250_500,
                client: 7,
                version: 3,
            },
            TraceEvent::ClientUnavailable {
                vtime_us: 1_251_000,
                client: 8,
                reason: "capacity".into(),
            },
            TraceEvent::BufferFlushed {
                vtime_us: 2_000_750,
                flush: 4,
                size: 16,
                mean_staleness: 1.5,
                cause: "buffer_full".into(),
            },
            TraceEvent::RunCompleted {
                rounds_executed: 5,
                elapsed_ms: 88.125,
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            let back = TraceEvent::from_json(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, event);
        }
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let event = TraceEvent::CheckpointSaved {
            round: 1,
            path: "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode é".into(),
        };
        assert_eq!(TraceEvent::from_json(&event.to_json()).unwrap(), event);
    }

    #[test]
    fn normalized_zeroes_wall_clock_only() {
        let events = sample_events();
        for e in &events {
            let n = e.normalized();
            match (&n, e) {
                (
                    TraceEvent::RoundCompleted {
                        elapsed_ms,
                        benign_norms,
                        ..
                    },
                    TraceEvent::RoundCompleted {
                        benign_norms: orig, ..
                    },
                ) => {
                    assert_eq!(*elapsed_ms, 0.0);
                    assert_eq!(benign_norms, orig);
                }
                (TraceEvent::RunCompleted { elapsed_ms, .. }, _) => {
                    assert_eq!(*elapsed_ms, 0.0)
                }
                _ => assert_eq!(&n, e),
            }
        }
    }

    #[test]
    fn canonical_zeroes_workers_and_wall_clock() {
        for e in sample_events() {
            let c = e.canonical();
            match (&c, &e) {
                (TraceEvent::RunStarted { workers, .. }, _) => assert_eq!(*workers, 0),
                (TraceEvent::RoundCompleted { elapsed_ms, .. }, _)
                | (TraceEvent::RunCompleted { elapsed_ms, .. }, _) => assert_eq!(*elapsed_ms, 0.0),
                _ => assert_eq!(&c, &e),
            }
        }
        // Same events at different worker counts hash identically.
        let at = |workers: usize| {
            let mut events = sample_events();
            if let TraceEvent::RunStarted { workers: w, .. } = &mut events[0] {
                *w = workers;
            }
            hash_canonical_events(&events)
        };
        assert_eq!(at(1), at(8));
        assert_ne!(hash_events(&sample_events()), (EventHasher::new().state, 0));
    }

    #[test]
    fn malformed_lines_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"event\":\"nope\"}",
            "{\"event\":\"round_started\"}",
            "{\"event\":\"round_started\",\"round\":-1,\"sampled\":[],\"compromised\":[]}",
            "{\"event\":\"round_completed\",\"round\":0,\"aggregator\":3}",
            "not json at all",
            "{\"event\":\"run_completed\",\"rounds_executed\":1,\"elapsed_ms\":\"x\"}",
            "{\"event\":\"client_dropped\",\"round\":0,\"client\":1,\"cause\":7,\"delay_ms\":0.0}",
            "{\"event\":\"update_rejected\",\"round\":0,\"reason\":\"non_finite\"}",
            "{\"event\":\"checkpoint_write_failed\",\"round\":0,\"attempt\":1,\"error\":\"e\",\"gave_up\":\"yes\"}",
        ] {
            assert!(TraceEvent::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trace_log_mirrors_to_file() {
        let dir = std::env::temp_dir().join(format!("collapois-trace-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("run.jsonl");
        let events = sample_events();
        {
            let mut log = TraceLog::to_file(&path).unwrap();
            for e in &events {
                log.push(e.clone());
            }
            assert_eq!(log.events(), &events[..]);
        }
        let back = read_trace(&path).unwrap();
        assert_eq!(back, events);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nonfinite_norms_serialize_as_null_and_fail_loudly_on_read() {
        let event = TraceEvent::RoundCompleted {
            round: 0,
            aggregator: "mean".into(),
            num_malicious: 0,
            benign_norms: vec![f64::NAN],
            malicious_norms: vec![],
            agg_delta_norm: 1.0,
            elapsed_ms: 0.0,
        };
        let line = event.to_json();
        assert!(line.contains("null"));
        assert!(TraceEvent::from_json(&line).is_err());
    }
}
