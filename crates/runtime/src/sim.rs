//! Deterministic discrete-event simulation core.
//!
//! Virtual time is decoupled from wall time: each virtual client is a
//! handful of events — arrival, train-complete, availability flip — on a
//! priority queue, not a thread. One machine can therefore push million-
//! client schedules through the event loop while training only the
//! (bounded) set of clients that are actually in flight.
//!
//! Determinism rests on three pillars:
//!
//! 1. **Pure per-draw streams.** Every random quantity (inter-arrival gap,
//!    virtual train duration, churn interval) is drawn from
//!    `seed::sim_rng(run_seed, stream_key(index, purpose), client)` — a
//!    pure function of the draw's position in that client's own schedule.
//!    Nothing depends on event-loop order or worker count, so the full
//!    virtual schedule is fixed the moment the seed is.
//! 2. **Total event order.** The queue breaks virtual-time ties by a
//!    monotonically increasing sequence number assigned at push time.
//!    Because pushes happen in a deterministic serial order, `(time, seq)`
//!    is a total, replay-stable order.
//! 3. **Serial loop, parallel leaves.** The event loop itself is serial;
//!    only the handler's flush work (training, aggregation) fans out over
//!    a `WorkerPool`, whose fixed-shape kernels are already bitwise
//!    worker-count-invariant.
//!
//! Fault injection composes: the driver consults the run's [`FaultPlan`]
//! once per (client, arrival), keyed by the arrival index, so dropout /
//! straggler / corruption verdicts are as schedule-independent as the
//! draws above. See `DESIGN.md` §11.

use crate::fault::{ClientFault, FaultPlan};
use crate::seed;
use crate::trace::{TraceEvent, TraceLog};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in integer microseconds since simulation start.
///
/// Integer ticks (not `f64` milliseconds) are what make event timestamps
/// safely comparable and serializable with no rounding ambiguity.
pub type Ticks = u64;

/// Ticks per virtual millisecond.
pub const TICKS_PER_MS: u64 = 1_000;

/// Converts a (finite, non-negative) millisecond quantity to ticks,
/// rounding to the nearest microsecond.
pub fn ms_to_ticks(ms: f64) -> Ticks {
    debug_assert!(ms.is_finite() && ms >= 0.0);
    (ms * TICKS_PER_MS as f64).round() as Ticks
}

/// Ticks back to fractional milliseconds (for reporting only).
pub fn ticks_to_ms(t: Ticks) -> f64 {
    t as f64 / TICKS_PER_MS as f64
}

/// Purposes within the [`seed::Domain::Sim`] stream. The discriminants are
/// part of the replay-compatibility contract: reordering them changes
/// every simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SimStream {
    /// Inter-arrival gaps (Poisson arrivals).
    Arrival = 0,
    /// Virtual training durations.
    Train = 1,
    /// Availability churn intervals.
    Churn = 2,
}

/// Width reserved for [`SimStream`] purposes inside a stream key. Extra
/// headroom so new purposes can be appended without renumbering.
const STREAM_WIDTH: u64 = 8;

/// Packs a per-client draw index and purpose into the `round` coordinate
/// of [`seed::mix`], giving every draw its own independent stream.
pub fn stream_key(index: u64, purpose: SimStream) -> u64 {
    index
        .wrapping_mul(STREAM_WIDTH)
        .wrapping_add(purpose as u64)
}

/// Draws `Exp(mean_ms)` via inversion; pure in `(rng state, mean_ms)`.
fn draw_exp_ms(rng: &mut StdRng, mean_ms: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean_ms * (1.0 - u).ln()
}

/// One exponential draw from the dedicated sim stream for `(client,
/// purpose, index)`.
fn sim_exp_ms(run_seed: u64, client: usize, purpose: SimStream, index: u64, mean_ms: f64) -> f64 {
    let mut rng = seed::sim_rng(run_seed, stream_key(index, purpose), client as u64);
    draw_exp_ms(&mut rng, mean_ms)
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

/// A pending event: ordered by `(time, seq)` ascending.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: Ticks,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (smallest time, then smallest seq) entry on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority event queue with a deterministic total order.
///
/// Ties in virtual time are broken by the push-time sequence number, so
/// two events can never be popped in different orders across replays: the
/// pop order is a pure function of the push order, and the push order is
/// serial and deterministic.
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at virtual time `time`; returns its sequence
    /// number (the tie-break key).
    pub fn push(&mut self, time: Ticks, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Pops the earliest event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(Ticks, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// How virtual clients arrive at the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Every client arrives repeatedly with `Exp(mean_ms)` inter-arrival
    /// gaps, drawn from its own sim stream.
    Poisson {
        /// Mean inter-arrival gap per client, in virtual ms.
        mean_ms: f64,
    },
    /// A fixed list of `(virtual ms, client)` arrivals; no rescheduling.
    /// The simulation drains once all listed arrivals are processed.
    Trace(Vec<(f64, usize)>),
}

/// Per-client availability churn: alternating `Exp(mean_up_ms)` available
/// and `Exp(mean_down_ms)` unavailable periods. Clients start available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Mean length of an available period, in virtual ms.
    pub mean_up_ms: f64,
    /// Mean length of an unavailable period, in virtual ms.
    pub mean_down_ms: f64,
}

/// Full configuration of a buffered-async simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPlan {
    /// Virtual client population.
    pub num_clients: usize,
    /// Arrival process shared by all clients.
    pub arrival: ArrivalProcess,
    /// Mean virtual training duration, in ms (exponential; 0 = instant).
    pub train_mean_ms: f64,
    /// Optional availability churn; `None` means always available.
    pub churn: Option<ChurnPlan>,
    /// Buffer size K: a flush fires as soon as K completions are buffered.
    pub buffer_k: usize,
    /// Virtual flush deadline in ms: a flush also fires when the oldest
    /// buffered completion has waited this long. `0` means no deadline —
    /// the buffer only flushes on K (mirrors `FaultPlan::deadline_ms`).
    pub flush_deadline_ms: f64,
    /// Staleness decay `a` for FedBuff weights `(1 + s)^-a`.
    pub staleness_decay: f64,
    /// Maximum clients training concurrently; arrivals beyond it are
    /// turned away (bounding snapshot memory). `0` means unbounded.
    pub max_concurrency: usize,
    /// Hard cap on processed events (runaway guard for degenerate plans,
    /// e.g. 100% dropout, where no flush can ever fire). `0` = unlimited.
    pub event_cap: u64,
}

impl Default for SimPlan {
    fn default() -> Self {
        Self {
            num_clients: 100,
            arrival: ArrivalProcess::Poisson { mean_ms: 50.0 },
            train_mean_ms: 20.0,
            churn: None,
            buffer_k: 8,
            flush_deadline_ms: 0.0,
            staleness_decay: 0.5,
            max_concurrency: 64,
            event_cap: 0,
        }
    }
}

impl SimPlan {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_clients == 0 {
            return Err("sim num_clients must be positive".into());
        }
        match &self.arrival {
            ArrivalProcess::Poisson { mean_ms } => {
                if !mean_ms.is_finite() || *mean_ms <= 0.0 {
                    return Err(format!("sim arrival mean {mean_ms} must be finite and > 0"));
                }
            }
            ArrivalProcess::Trace(arrivals) => {
                for (ms, client) in arrivals {
                    if !ms.is_finite() || *ms < 0.0 {
                        return Err(format!("sim trace arrival time {ms} invalid"));
                    }
                    if *client >= self.num_clients {
                        return Err(format!(
                            "sim trace arrival client {client} outside population {}",
                            self.num_clients
                        ));
                    }
                }
            }
        }
        if !self.train_mean_ms.is_finite() || self.train_mean_ms < 0.0 {
            return Err(format!(
                "sim train mean {} must be finite and >= 0",
                self.train_mean_ms
            ));
        }
        if let Some(churn) = &self.churn {
            for (name, v) in [("up", churn.mean_up_ms), ("down", churn.mean_down_ms)] {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "sim churn mean_{name}_ms {v} must be finite and > 0"
                    ));
                }
            }
        }
        if self.buffer_k == 0 {
            return Err("sim buffer_k must be positive".into());
        }
        if !self.flush_deadline_ms.is_finite() || self.flush_deadline_ms < 0.0 {
            return Err(format!(
                "sim flush deadline {} must be finite and >= 0 (0 = none)",
                self.flush_deadline_ms
            ));
        }
        if !self.staleness_decay.is_finite() || self.staleness_decay < 0.0 {
            return Err(format!(
                "sim staleness decay {} must be finite and >= 0",
                self.staleness_decay
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Events the driver schedules for itself.
#[derive(Debug, Clone)]
enum SimEvent {
    /// A client shows up willing to train.
    Arrival { client: usize },
    /// A client's availability period ends (up→down or down→up).
    AvailabilityFlip { client: usize },
    /// A client's virtual training run finishes.
    TrainComplete {
        client: usize,
        arrival_index: u64,
        fetched_version: u64,
        corrupt: bool,
    },
    /// The flush deadline armed with this id fires (stale ids ignored).
    FlushDeadline { armed: u64 },
}

/// One buffered training completion, handed to the handler at flush time.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Virtual client id.
    pub client: usize,
    /// Which of this client's arrivals produced the completion (also the
    /// round key for its training RNG stream).
    pub arrival_index: u64,
    /// Global model version the client fetched when it started.
    pub fetched_version: u64,
    /// `flush-time version - fetched_version`: how many flushes landed
    /// while the client was training.
    pub staleness: u64,
    /// Fault injection corrupted this update in flight.
    pub corrupt: bool,
    /// Virtual completion time.
    pub completed_at: Ticks,
}

/// What the simulation plugs into: model fetches and buffer flushes.
///
/// The driver is serial and owns all scheduling; implementations may fan
/// flush work out over a `WorkerPool` (the buffered set is fixed before
/// `flush` is called, so parallelism cannot reorder anything observable).
pub trait SimHandler {
    /// A client fetched the current global model (version `version`) and
    /// started training. Implementations typically retain a snapshot.
    fn on_fetch(&mut self, client: usize, version: u64);

    /// The buffer flushed: merge `buffer` into the global model. Called
    /// with the flush index (0-based), the virtual time, and the trace
    /// sink (for e.g. `update_rejected` events).
    fn flush(&mut self, flush_index: u64, now: Ticks, buffer: &[Completion], trace: &mut TraceLog);
}

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimSummary {
    /// Flushes performed.
    pub flushes: u64,
    /// Events processed (arrivals + completions + flips + deadlines).
    pub events: u64,
    /// Client arrivals processed.
    pub arrivals: u64,
    /// Training runs completed (buffered).
    pub completions: u64,
    /// Arrivals lost to injected dropout.
    pub dropped: u64,
    /// Arrivals turned away because the client was offline.
    pub turned_away_offline: u64,
    /// Arrivals turned away because the client was still training.
    pub turned_away_busy: u64,
    /// Arrivals turned away at the concurrency cap.
    pub turned_away_capacity: u64,
    /// Virtual time at the end of the run.
    pub final_vtime: Ticks,
    /// Whether the target flush count was reached (false: the event queue
    /// drained or the event cap tripped first).
    pub reached_target: bool,
}

/// Per-client simulation state: a few machine words, never a thread.
#[derive(Debug, Clone, Copy, Default)]
struct ClientState {
    available: bool,
    busy: bool,
    /// Arrivals started so far (= next arrival draw index).
    arrivals: u64,
    /// Churn intervals drawn so far.
    churn_draws: u64,
}

/// The serial discrete-event loop: owns the clock, the queue, per-client
/// state and the completion buffer; delegates model work to a
/// [`SimHandler`].
pub struct SimDriver {
    plan: SimPlan,
    run_seed: u64,
    fault: FaultPlan,
    queue: EventQueue<SimEvent>,
    now: Ticks,
    version: u64,
    clients: Vec<ClientState>,
    in_flight: usize,
    buffer: Vec<Completion>,
    /// Id of the currently armed flush deadline (stale ids are ignored).
    armed_deadline: u64,
    next_deadline_id: u64,
    summary: SimSummary,
}

impl SimDriver {
    /// Builds a driver and seeds the initial event schedule. Fails if the
    /// plan is invalid.
    pub fn new(plan: SimPlan, run_seed: u64, fault: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        fault.validate()?;
        let num_clients = plan.num_clients;
        let mut driver = Self {
            plan,
            run_seed,
            fault,
            queue: EventQueue::new(),
            now: 0,
            version: 0,
            clients: vec![
                ClientState {
                    available: true,
                    ..ClientState::default()
                };
                num_clients
            ],
            in_flight: 0,
            buffer: Vec::new(),
            armed_deadline: 0,
            next_deadline_id: 0,
            summary: SimSummary::default(),
        };
        driver.seed_schedule();
        Ok(driver)
    }

    /// Seeds first arrivals and churn flips in fixed client order, so
    /// sequence numbers (the tie-break) are deterministic.
    fn seed_schedule(&mut self) {
        match self.plan.arrival.clone() {
            ArrivalProcess::Poisson { mean_ms } => {
                for c in 0..self.plan.num_clients {
                    let gap = sim_exp_ms(self.run_seed, c, SimStream::Arrival, 0, mean_ms);
                    self.queue
                        .push(ms_to_ticks(gap), SimEvent::Arrival { client: c });
                }
            }
            ArrivalProcess::Trace(arrivals) => {
                for (ms, client) in arrivals {
                    self.queue
                        .push(ms_to_ticks(ms), SimEvent::Arrival { client });
                }
            }
        }
        if let Some(churn) = self.plan.churn {
            for c in 0..self.plan.num_clients {
                let up = sim_exp_ms(self.run_seed, c, SimStream::Churn, 0, churn.mean_up_ms);
                self.clients[c].churn_draws = 1;
                self.queue
                    .push(ms_to_ticks(up), SimEvent::AvailabilityFlip { client: c });
            }
        }
        self.arm_deadline();
    }

    /// Arms a fresh flush deadline (if the plan has one), invalidating any
    /// previously armed one.
    fn arm_deadline(&mut self) {
        if self.plan.flush_deadline_ms <= 0.0 {
            return;
        }
        self.next_deadline_id += 1;
        self.armed_deadline = self.next_deadline_id;
        let at = self.now + ms_to_ticks(self.plan.flush_deadline_ms);
        self.queue.push(
            at,
            SimEvent::FlushDeadline {
                armed: self.armed_deadline,
            },
        );
    }

    fn flush(&mut self, cause: &str, handler: &mut dyn SimHandler, trace: &mut TraceLog) {
        // Staleness is resolved at flush time: how many flushes landed
        // after each buffered client fetched its snapshot.
        let version = self.version;
        let mut staleness_sum = 0u64;
        for c in &mut self.buffer {
            c.staleness = version - c.fetched_version;
            staleness_sum += c.staleness;
        }
        let size = self.buffer.len();
        let mean_staleness = if size == 0 {
            0.0
        } else {
            staleness_sum as f64 / size as f64
        };
        let flush_index = self.summary.flushes;
        handler.flush(flush_index, self.now, &self.buffer, trace);
        trace.push(TraceEvent::BufferFlushed {
            vtime_us: self.now,
            flush: flush_index,
            size,
            mean_staleness,
            cause: cause.to_string(),
        });
        self.buffer.clear();
        self.version += 1;
        self.summary.flushes += 1;
        self.arm_deadline();
    }

    fn on_arrival(&mut self, client: usize, handler: &mut dyn SimHandler, trace: &mut TraceLog) {
        self.summary.arrivals += 1;
        let arrival_index = self.clients[client].arrivals;
        self.clients[client].arrivals += 1;

        // Poisson arrivals re-schedule themselves; the gap is drawn from
        // the stream for this client's *next* arrival index, independent
        // of anything the event loop has done so far.
        if let ArrivalProcess::Poisson { mean_ms } = self.plan.arrival {
            let gap = sim_exp_ms(
                self.run_seed,
                client,
                SimStream::Arrival,
                arrival_index + 1,
                mean_ms,
            );
            self.queue
                .push(self.now + ms_to_ticks(gap), SimEvent::Arrival { client });
        }

        let turned_away = if !self.clients[client].available {
            self.summary.turned_away_offline += 1;
            Some("offline")
        } else if self.clients[client].busy {
            self.summary.turned_away_busy += 1;
            Some("busy")
        } else if self.plan.max_concurrency > 0 && self.in_flight >= self.plan.max_concurrency {
            self.summary.turned_away_capacity += 1;
            Some("capacity")
        } else {
            None
        };
        if let Some(reason) = turned_away {
            trace.push(TraceEvent::ClientUnavailable {
                vtime_us: self.now,
                client,
                reason: reason.to_string(),
            });
            return;
        }

        // Fault verdict for this (client, arrival), keyed by the arrival
        // index — the sim analogue of the synchronous loop's round key.
        let mut extra_delay_ms = 0.0;
        let mut corrupt = false;
        match self
            .fault
            .client_fault(self.run_seed, arrival_index, client)
        {
            ClientFault::Dropout => {
                self.summary.dropped += 1;
                trace.push(TraceEvent::ClientDropped {
                    round: self.summary.flushes as usize,
                    client,
                    cause: "dropout".to_string(),
                    delay_ms: 0.0,
                });
                return;
            }
            // The flush deadline — not the synchronous round deadline —
            // governs shedding in buffered-async mode, so `shed` is
            // ignored here: a straggler just lands later (and staler).
            ClientFault::Straggler { delay_ms, .. } => extra_delay_ms = delay_ms,
            ClientFault::Corrupt => corrupt = true,
            ClientFault::None => {}
        }

        handler.on_fetch(client, self.version);
        trace.push(TraceEvent::ClientArrived {
            vtime_us: self.now,
            client,
            version: self.version,
        });
        self.clients[client].busy = true;
        self.in_flight += 1;
        let train_ms = if self.plan.train_mean_ms > 0.0 {
            sim_exp_ms(
                self.run_seed,
                client,
                SimStream::Train,
                arrival_index,
                self.plan.train_mean_ms,
            )
        } else {
            0.0
        };
        self.queue.push(
            self.now + ms_to_ticks(train_ms + extra_delay_ms),
            SimEvent::TrainComplete {
                client,
                arrival_index,
                fetched_version: self.version,
                corrupt,
            },
        );
    }

    /// Runs the event loop until `target_flushes` flushes have fired, the
    /// queue drains, or the plan's event cap trips.
    pub fn run(
        &mut self,
        handler: &mut dyn SimHandler,
        trace: &mut TraceLog,
        target_flushes: u64,
    ) -> SimSummary {
        while self.summary.flushes < target_flushes {
            if self.plan.event_cap > 0 && self.summary.events >= self.plan.event_cap {
                break;
            }
            let Some((time, _seq, event)) = self.queue.pop() else {
                break;
            };
            debug_assert!(time >= self.now, "virtual time must be monotone");
            self.now = time;
            self.summary.events += 1;
            match event {
                SimEvent::Arrival { client } => self.on_arrival(client, handler, trace),
                SimEvent::AvailabilityFlip { client } => {
                    let state = &mut self.clients[client];
                    state.available = !state.available;
                    let churn = self.plan.churn.expect("flip without churn plan");
                    let mean = if state.available {
                        churn.mean_up_ms
                    } else {
                        churn.mean_down_ms
                    };
                    let idx = state.churn_draws;
                    state.churn_draws += 1;
                    let gap = sim_exp_ms(self.run_seed, client, SimStream::Churn, idx, mean);
                    self.queue.push(
                        self.now + ms_to_ticks(gap),
                        SimEvent::AvailabilityFlip { client },
                    );
                }
                SimEvent::TrainComplete {
                    client,
                    arrival_index,
                    fetched_version,
                    corrupt,
                } => {
                    self.clients[client].busy = false;
                    self.in_flight -= 1;
                    self.summary.completions += 1;
                    self.buffer.push(Completion {
                        client,
                        arrival_index,
                        fetched_version,
                        staleness: 0, // resolved at flush time
                        corrupt,
                        completed_at: self.now,
                    });
                    if self.buffer.len() >= self.plan.buffer_k {
                        self.flush("buffer_full", handler, trace);
                    }
                }
                SimEvent::FlushDeadline { armed } => {
                    if armed != self.armed_deadline {
                        continue; // superseded by a later flush
                    }
                    if self.buffer.is_empty() {
                        self.arm_deadline(); // nothing to flush; re-arm
                    } else {
                        self.flush("deadline", handler, trace);
                    }
                }
            }
        }
        self.summary.final_vtime = self.now;
        self.summary.reached_target = self.summary.flushes >= target_flushes;
        self.summary
    }

    /// Counters so far (final after [`SimDriver::run`] returns).
    pub fn summary(&self) -> SimSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Handler that records flush shapes and fetch/release balance.
    #[derive(Default)]
    struct Recorder {
        fetches: usize,
        flush_sizes: Vec<usize>,
        staleness: Vec<u64>,
    }

    impl SimHandler for Recorder {
        fn on_fetch(&mut self, _client: usize, _version: u64) {
            self.fetches += 1;
        }
        fn flush(&mut self, _i: u64, _now: Ticks, buffer: &[Completion], _trace: &mut TraceLog) {
            self.flush_sizes.push(buffer.len());
            self.staleness.extend(buffer.iter().map(|c| c.staleness));
        }
    }

    fn quick_plan() -> SimPlan {
        SimPlan {
            num_clients: 20,
            arrival: ArrivalProcess::Poisson { mean_ms: 10.0 },
            train_mean_ms: 25.0,
            buffer_k: 4,
            ..SimPlan::default()
        }
    }

    #[test]
    fn queue_orders_by_time_then_sequence() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(20, "b");
        q.push(10, "a2"); // same time as a1, pushed later
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order.iter().map(|(_, _, e)| *e).collect::<Vec<_>>(),
            ["a1", "a2", "b", "c"],
            "ties must break by push order"
        );
        assert!(order.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn same_seed_replays_identical_event_sequences() {
        let run = || {
            let mut trace = TraceLog::in_memory();
            let mut rec = Recorder::default();
            let mut driver = SimDriver::new(quick_plan(), 42, FaultPlan::none()).unwrap();
            let summary = driver.run(&mut rec, &mut trace, 10);
            let lines: Vec<String> = trace.events().iter().map(|e| e.to_json()).collect();
            (summary, rec.flush_sizes, lines)
        };
        let (s1, f1, t1) = run();
        let (s2, f2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        assert_eq!(t1, t2, "replay must be bitwise identical");
        assert!(s1.reached_target);
        assert_eq!(f1.len(), 10);
        assert!(f1.iter().all(|&n| n == 4), "K-triggered flushes carry K");
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut trace = TraceLog::in_memory();
            let mut rec = Recorder::default();
            let mut driver = SimDriver::new(quick_plan(), seed, FaultPlan::none()).unwrap();
            driver.run(&mut rec, &mut trace, 5);
            trace
                .events()
                .iter()
                .map(|e| e.to_json())
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn virtual_time_is_monotone_in_trace() {
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut plan = quick_plan();
        plan.flush_deadline_ms = 40.0;
        plan.churn = Some(ChurnPlan {
            mean_up_ms: 200.0,
            mean_down_ms: 50.0,
        });
        let mut driver = SimDriver::new(plan, 7, FaultPlan::none()).unwrap();
        driver.run(&mut rec, &mut trace, 20);
        let mut last = 0u64;
        let mut stamped = 0;
        for e in trace.events() {
            let t = match e {
                TraceEvent::ClientArrived { vtime_us, .. }
                | TraceEvent::ClientUnavailable { vtime_us, .. }
                | TraceEvent::BufferFlushed { vtime_us, .. } => *vtime_us,
                _ => continue,
            };
            assert!(t >= last, "virtual time went backwards: {t} < {last}");
            last = t;
            stamped += 1;
        }
        assert!(stamped > 20, "expected a meaningful event stream");
    }

    #[test]
    fn zero_flush_deadline_means_no_deadline() {
        // Mirrors the FaultPlan convention: 0 disables the deadline
        // rather than configuring an instantly-expiring one.
        let mut plan = quick_plan();
        plan.flush_deadline_ms = 0.0;
        plan.buffer_k = 1000; // K unreachable in 200 events
        plan.event_cap = 200;
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 3, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 1);
        assert_eq!(summary.flushes, 0, "no deadline and K unreached: no flush");
        assert!(!summary.reached_target);
        assert!(trace.events().iter().all(|e| e.kind() != "buffer_flushed"));
    }

    #[test]
    fn deadline_flushes_partial_buffers() {
        let mut plan = quick_plan();
        plan.buffer_k = 1000;
        plan.flush_deadline_ms = 30.0;
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 5, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 5);
        assert!(summary.reached_target);
        assert!(rec.flush_sizes.iter().all(|&n| n > 0 && n < 1000));
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::BufferFlushed { cause, .. } if cause == "deadline"
        )));
    }

    #[test]
    fn trace_driven_arrivals_follow_the_script() {
        let plan = SimPlan {
            num_clients: 3,
            arrival: ArrivalProcess::Trace(vec![(5.0, 2), (1.0, 0), (3.0, 1), (7.0, 0)]),
            train_mean_ms: 0.0,
            buffer_k: 4,
            ..SimPlan::default()
        };
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 11, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 1);
        assert!(summary.reached_target);
        assert_eq!(summary.arrivals, 4);
        let arrived: Vec<usize> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ClientArrived { client, .. } => Some(*client),
                _ => None,
            })
            .collect();
        assert_eq!(arrived, [0, 1, 2, 0], "arrivals sort by virtual time");
    }

    #[test]
    fn churn_turns_clients_away_while_offline() {
        let mut plan = quick_plan();
        plan.churn = Some(ChurnPlan {
            mean_up_ms: 5.0,
            mean_down_ms: 500.0, // mostly offline
        });
        plan.event_cap = 2000;
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 9, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 50);
        assert!(summary.turned_away_offline > 0);
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::ClientUnavailable { reason, .. } if reason == "offline"
        )));
    }

    #[test]
    fn concurrency_cap_bounds_in_flight_training() {
        let mut plan = quick_plan();
        plan.max_concurrency = 2;
        plan.train_mean_ms = 1000.0; // long training: cap binds quickly
        plan.event_cap = 500;
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 13, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 100);
        assert!(summary.turned_away_capacity > 0);
        assert!(rec.fetches <= summary.arrivals as usize);
    }

    #[test]
    fn dropout_faults_compose_without_completions() {
        let fault = FaultPlan {
            dropout: 1.0,
            ..FaultPlan::default()
        };
        let mut plan = quick_plan();
        plan.event_cap = 300;
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 17, fault).unwrap();
        let summary = driver.run(&mut rec, &mut trace, 1);
        assert_eq!(summary.completions, 0);
        assert_eq!(summary.dropped, summary.arrivals);
        assert!(!summary.reached_target, "event cap must stop the loop");
        assert_eq!(rec.fetches, 0);
    }

    #[test]
    fn staleness_counts_flushes_during_training() {
        // Long training across short flush cycles must yield staleness > 0.
        let plan = SimPlan {
            num_clients: 40,
            arrival: ArrivalProcess::Poisson { mean_ms: 5.0 },
            train_mean_ms: 120.0,
            buffer_k: 3,
            max_concurrency: 0,
            ..SimPlan::default()
        };
        let mut trace = TraceLog::in_memory();
        let mut rec = Recorder::default();
        let mut driver = SimDriver::new(plan, 23, FaultPlan::none()).unwrap();
        driver.run(&mut rec, &mut trace, 12);
        assert!(rec.staleness.iter().any(|&s| s > 0));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let bad = |f: fn(&mut SimPlan)| {
            let mut p = SimPlan::default();
            f(&mut p);
            SimDriver::new(p, 0, FaultPlan::none()).is_err()
        };
        assert!(bad(|p| p.num_clients = 0));
        assert!(bad(|p| p.buffer_k = 0));
        assert!(bad(|p| p.arrival = ArrivalProcess::Poisson { mean_ms: 0.0 }));
        assert!(bad(|p| p.flush_deadline_ms = f64::NAN));
        assert!(bad(|p| p.staleness_decay = -1.0));
        assert!(bad(|p| p.arrival = ArrivalProcess::Trace(vec![(1.0, 999)])));
        assert!(bad(|p| {
            p.churn = Some(ChurnPlan {
                mean_up_ms: 0.0,
                mean_down_ms: 1.0,
            })
        }));
    }
}
