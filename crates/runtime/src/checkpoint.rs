//! Versioned binary snapshots for kill-and-resume.
//!
//! A [`Snapshot`] captures everything the round loop needs to continue a
//! run as if it had never stopped: the run seed (all RNG streams are
//! derived, so no generator state needs saving), a hash of the config (to
//! refuse resuming under different hyper-parameters), the index of the
//! next round to execute, the global model parameters, and any per-client
//! personalization state.
//!
//! ## Wire format (version 1, all integers little-endian)
//!
//! ```text
//! magic      8  b"CPOISNAP"
//! version    1  0x01
//! run_seed   8  u64
//! cfg_hash   8  u64
//! round      4  u32       (next round to execute)
//! global     4+4n         u32 count, then n f32 params
//! clients    4            u32 count, then per client:
//!   tag      1            0 = no state, 1 = state follows
//!   state    4+4m         (tag 1 only) u32 count, then m f32 params
//! checksum   8  u64       FNV-1a over every preceding byte
//! ```
//!
//! Decoding is defensive: bad magic, unknown version, truncation, a length
//! prefix pointing past the end, trailing garbage, and checksum mismatch
//! all return [`CheckpointError`] — never a panic.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CPOISNAP";
/// Current snapshot wire-format version.
pub const FORMAT_VERSION: u8 = 1;

/// FNV-1a over a byte slice (also used for config hashing).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hashes a config's `Debug` representation. `Debug` output for the plain
/// structs used as configs is deterministic, so equal configs hash equal
/// and any field change shows up as a mismatch.
pub fn config_hash(debug_repr: &str) -> u64 {
    fnv1a(debug_repr.as_bytes())
}

/// Complete resumable state of a run between rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The run seed all RNG streams derive from.
    pub run_seed: u64,
    /// Hash of the run config (see [`config_hash`]).
    pub config_hash: u64,
    /// Index of the next round to execute (rounds `0..round` are done).
    pub round: u32,
    /// Global model parameters.
    pub global: Vec<f32>,
    /// Per-client personalization state (`None` for untouched clients).
    pub client_states: Vec<Option<Vec<f32>>>,
}

/// Why a snapshot failed to load or store.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// The file ended before the encoded structure did.
    Truncated,
    /// Structurally invalid content (bad length prefix, trailing bytes,
    /// checksum mismatch).
    Corrupt(String),
    /// The snapshot was taken under a different config.
    ConfigMismatch {
        /// Hash the caller expected.
        expected: u64,
        /// Hash stored in the snapshot.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            Self::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (max {FORMAT_VERSION})")
            }
            Self::Truncated => write!(f, "checkpoint file is truncated"),
            Self::Corrupt(why) => write!(f, "checkpoint file is corrupt: {why}"),
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config hash {found:#018x} does not match current config {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Bounded little-endian reader over the snapshot payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u32()? as usize;
        // Reject length prefixes that point past the file before
        // allocating n elements.
        let bytes = self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

impl Snapshot {
    /// Serializes to the version-1 wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 4 * self.global.len());
        out.extend_from_slice(MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&self.run_seed.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        push_f32_vec(&mut out, &self.global);
        out.extend_from_slice(&(self.client_states.len() as u32).to_le_bytes());
        for state in &self.client_states {
            match state {
                None => out.push(0),
                Some(params) => {
                    out.push(1);
                    push_f32_vec(&mut out, params);
                }
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses the wire format, validating structure and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }

        let mut r = Reader {
            buf: payload,
            pos: MAGIC.len(),
        };
        let version = r.u8()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let run_seed = r.u64()?;
        let config_hash = r.u64()?;
        let round = r.u32()?;
        let global = r.f32_vec()?;
        let num_clients = r.u32()? as usize;
        let mut client_states = Vec::with_capacity(num_clients.min(1 << 20));
        for _ in 0..num_clients {
            match r.u8()? {
                0 => client_states.push(None),
                1 => client_states.push(Some(r.f32_vec()?)),
                tag => {
                    return Err(CheckpointError::Corrupt(format!(
                        "invalid client-state tag {tag}"
                    )))
                }
            }
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                payload.len() - r.pos
            )));
        }
        Ok(Self {
            run_seed,
            config_hash,
            round,
            global,
            client_states,
        })
    }

    /// Writes the snapshot atomically: encode to a `.ckpt.tmp` sibling,
    /// fsync it, rename over the final name, then fsync the directory so
    /// the rename itself survives a crash. An interrupted save can only
    /// leave a stray temp file behind — which the `round-NNNNNN.ckpt`
    /// naming filters ignore — never a torn checkpoint under the real
    /// name.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(parent) = parent {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(parent) = parent {
            // Persist the rename's directory entry. Opening a directory
            // read-only works on the unix targets we run on; elsewhere the
            // data fsync above is the best available guarantee.
            if let Ok(d) = fs::File::open(parent) {
                d.sync_all()?;
            }
        }
        Ok(())
    }

    /// Loads and validates a snapshot from disk.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::decode(&fs::read(path)?)
    }

    /// Checks this snapshot was taken under the given config hash.
    pub fn require_config(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.config_hash == expected {
            Ok(())
        } else {
            Err(CheckpointError::ConfigMismatch {
                expected,
                found: self.config_hash,
            })
        }
    }
}

fn push_f32_vec(out: &mut Vec<u8>, values: &[f32]) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Conventional checkpoint file name for a round.
pub fn checkpoint_path(dir: &Path, round: u32) -> PathBuf {
    dir.join(format!("round-{round:06}.ckpt"))
}

/// Lists every checkpoint in `dir` as `(round, path)`, ascending by round.
///
/// Only files matching the `round-NNNNNN.ckpt` naming convention are
/// considered — in particular, stray `.ckpt.tmp` files from an interrupted
/// atomic save are ignored. An unreadable directory yields an empty list.
pub fn checkpoints_by_round(dir: &Path) -> Vec<(u32, PathBuf)> {
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return found,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let round = match name
            .strip_prefix("round-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            Some(r) => r,
            None => continue,
        };
        found.push((round, path));
    }
    found.sort_by_key(|(round, _)| *round);
    found
}

/// Finds the checkpoint for the highest round in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> Option<PathBuf> {
    checkpoints_by_round(dir).pop().map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            run_seed: 0xDEAD_BEEF_1234_5678,
            config_hash: config_hash("FlConfig { rounds: 20 }"),
            round: 7,
            global: vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE],
            client_states: vec![None, Some(vec![0.25, -0.75]), None],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unknown_version_is_an_error() {
        let mut bytes = sample().encode();
        bytes[8] = 99;
        // Fix the checksum so the version check is what fires.
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_at_every_length_errors_not_panics() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..n]).is_err(),
                "decode of {n}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            assert!(
                Snapshot::decode(&corrupted).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn config_mismatch_is_reported() {
        let snap = sample();
        assert!(snap.require_config(snap.config_hash).is_ok());
        assert!(matches!(
            snap.require_config(snap.config_hash ^ 1),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn save_load_and_latest() {
        let dir = std::env::temp_dir().join(format!("collapois-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut snap = sample();
        for round in [3u32, 10, 5] {
            snap.round = round;
            snap.save(&checkpoint_path(&dir, round)).unwrap();
        }
        let latest = latest_checkpoint(&dir).unwrap();
        assert!(latest.ends_with("round-000010.ckpt"));
        let loaded = Snapshot::load(&latest).unwrap();
        assert_eq!(loaded.round, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_on_missing_dir_is_none() {
        assert!(latest_checkpoint(Path::new("/nonexistent/collapois")).is_none());
        assert!(checkpoints_by_round(Path::new("/nonexistent/collapois")).is_empty());
    }

    #[test]
    fn listing_is_round_ordered_and_ignores_stray_temp_files() {
        let dir = std::env::temp_dir().join(format!("collapois-ckpt-list-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut snap = sample();
        for round in [8u32, 2, 4] {
            snap.round = round;
            snap.save(&checkpoint_path(&dir, round)).unwrap();
        }
        // A leftover temp file from a crashed atomic save, plus unrelated
        // noise, must both be invisible to the listing.
        fs::write(dir.join("round-000009.ckpt.tmp"), b"torn write").unwrap();
        fs::write(dir.join("notes.txt"), b"not a checkpoint").unwrap();
        let listed = checkpoints_by_round(&dir);
        let rounds: Vec<u32> = listed.iter().map(|(r, _)| *r).collect();
        assert_eq!(rounds, vec![2, 4, 8]);
        assert!(latest_checkpoint(&dir)
            .unwrap()
            .ends_with("round-000008.ckpt"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
