//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the failure regime of a run — client dropout,
//! straggler delays, corrupted updates, checkpoint-write failures — as a
//! set of probabilities. Every individual fault decision is a pure
//! function of `(run_seed, round, unit)` through the [`crate::seed`]
//! derivation (domain [`crate::seed::Domain::Fault`]), so the fault
//! *schedule* is fully reproducible: the same plan under the same seed
//! drops the same clients at the same rounds regardless of worker count,
//! and a resumed run replays exactly the faults the interrupted run would
//! have seen.
//!
//! Straggler delays are *virtual*: a delay in milliseconds is drawn from an
//! exponential distribution and compared against the plan's deadline, and
//! clients whose virtual delay exceeds the deadline are shed from the
//! cohort. No wall-clock sleeping is involved, so the decision is
//! deterministic and free.
//!
//! The per-client uniform draws happen in a fixed order (dropout,
//! straggler, delay, corruption) and are always all consumed, so the
//! dropout schedule produced by `{ dropout: 0.2 }` is identical to the
//! dropout sub-schedule of `{ dropout: 0.2, corrupt: 0.1 }` under the same
//! seed — knobs can be toggled independently without reshuffling the
//! others' schedules.

use crate::seed;
use rand::Rng;

/// Sentinel unit id carrying the round-global checkpoint-failure stream.
///
/// Client ids are dataset indices (tiny by comparison), so the sentinel can
/// never collide with a real client's fault stream.
pub const CHECKPOINT_UNIT: u64 = u64::MAX;

/// Probabilistic description of a run's failure regime.
///
/// The default plan injects nothing; [`FaultPlan::is_active`] lets hot
/// paths skip fault bookkeeping entirely in that case.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-(round, client) probability that a sampled client drops out and
    /// delivers no update.
    pub dropout: f64,
    /// Per-(round, client) probability that a client straggles, drawing a
    /// virtual delay from `Exp(straggler_mean_ms)`.
    pub straggler: f64,
    /// Mean of the exponential virtual-delay distribution, in ms.
    pub straggler_mean_ms: f64,
    /// Round deadline in ms; stragglers whose virtual delay exceeds it are
    /// shed from the cohort. `0` means no deadline (stragglers always make
    /// it and only show up in the trace/profile accounting).
    pub deadline_ms: f64,
    /// Per-(round, client) probability that a delivered update is
    /// corrupted in flight (non-finite values injected), exercising the
    /// server's reject-before-aggregation path.
    pub corrupt: f64,
    /// Per-attempt probability that a checkpoint write fails, exercising
    /// the bounded-retry path.
    pub checkpoint_fail: f64,
}

/// The fault-plan verdict for one `(round, client)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientFault {
    /// The client participates normally.
    None,
    /// The client drops out and delivers nothing.
    Dropout,
    /// The client straggles with the given virtual delay; `shed` is true
    /// when the delay exceeds the plan's deadline and the server excludes
    /// the client from the round.
    Straggler {
        /// Virtual delay drawn from `Exp(straggler_mean_ms)`, in ms.
        delay_ms: f64,
        /// Whether the delay exceeded `deadline_ms`.
        shed: bool,
    },
    /// The client's update arrives corrupted (non-finite values).
    Corrupt,
}

impl FaultPlan {
    /// A plan that injects no faults (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault kind can fire under this plan.
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0
            || self.straggler > 0.0
            || self.corrupt > 0.0
            || self.checkpoint_fail > 0.0
    }

    /// Validates parameter ranges: probabilities in `[0, 1]`, delays and
    /// deadlines finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("dropout", self.dropout),
            ("straggler", self.straggler),
            ("corrupt", self.corrupt),
            ("checkpoint_fail", self.checkpoint_fail),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault {name} probability {p} outside [0, 1]"));
            }
        }
        for (name, v) in [
            ("straggler_mean_ms", self.straggler_mean_ms),
            ("deadline_ms", self.deadline_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("fault {name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }

    /// The deterministic fault verdict for `client_id` at `round`.
    ///
    /// Fault kinds are mutually exclusive with precedence
    /// dropout > straggler > corruption; all four uniforms are drawn
    /// unconditionally so each knob's schedule is independent of the
    /// others' settings.
    pub fn client_fault(&self, run_seed: u64, round: u64, client_id: usize) -> ClientFault {
        if self.dropout <= 0.0 && self.straggler <= 0.0 && self.corrupt <= 0.0 {
            return ClientFault::None;
        }
        let mut rng = seed::fault_rng(run_seed, round, client_id as u64);
        let u_drop: f64 = rng.gen_range(0.0..1.0);
        let u_straggle: f64 = rng.gen_range(0.0..1.0);
        let u_delay: f64 = rng.gen_range(0.0..1.0);
        let u_corrupt: f64 = rng.gen_range(0.0..1.0);
        if u_drop < self.dropout {
            return ClientFault::Dropout;
        }
        if u_straggle < self.straggler {
            // Exponential inverse-CDF; 1 - u is in (0, 1] so ln never sees 0.
            let delay_ms = -self.straggler_mean_ms * (1.0 - u_delay).ln();
            let shed = self.deadline_ms > 0.0 && delay_ms > self.deadline_ms;
            return ClientFault::Straggler { delay_ms, shed };
        }
        if u_corrupt < self.corrupt {
            return ClientFault::Corrupt;
        }
        ClientFault::None
    }

    /// Whether checkpoint-write `attempt` (1-based) at `round` is injected
    /// to fail. Each attempt draws independently, so a failed first write
    /// can still succeed on retry.
    pub fn checkpoint_attempt_fails(&self, run_seed: u64, round: u64, attempt: usize) -> bool {
        if self.checkpoint_fail <= 0.0 {
            return false;
        }
        let mut rng = seed::fault_rng(run_seed, round, CHECKPOINT_UNIT);
        let mut u: f64 = 0.0;
        for _ in 0..attempt.max(1) {
            u = rng.gen_range(0.0..1.0);
        }
        u < self.checkpoint_fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultPlan {
        FaultPlan {
            dropout: 0.2,
            straggler: 0.3,
            straggler_mean_ms: 10.0,
            deadline_ms: 15.0,
            corrupt: 0.1,
            checkpoint_fail: 0.5,
        }
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for round in 0..10 {
            for client in 0..20 {
                assert_eq!(plan.client_fault(7, round, client), ClientFault::None);
            }
            assert!(!plan.checkpoint_attempt_fails(7, round, 1));
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = full_plan();
        for round in 0..20 {
            for client in 0..32 {
                assert_eq!(
                    plan.client_fault(42, round, client),
                    plan.client_fault(42, round, client)
                );
            }
            for attempt in 1..=3 {
                assert_eq!(
                    plan.checkpoint_attempt_fails(42, round, attempt),
                    plan.checkpoint_attempt_fails(42, round, attempt)
                );
            }
        }
    }

    #[test]
    fn schedule_depends_on_seed_round_and_client() {
        let plan = FaultPlan {
            dropout: 0.5,
            ..FaultPlan::none()
        };
        let base: Vec<_> = (0..64).map(|c| plan.client_fault(1, 0, c)).collect();
        let other_seed: Vec<_> = (0..64).map(|c| plan.client_fault(2, 0, c)).collect();
        let other_round: Vec<_> = (0..64).map(|c| plan.client_fault(1, 1, c)).collect();
        assert_ne!(base, other_seed);
        assert_ne!(base, other_round);
    }

    #[test]
    fn dropout_rate_is_roughly_honored() {
        let plan = FaultPlan {
            dropout: 0.2,
            ..FaultPlan::none()
        };
        let mut drops = 0usize;
        let total = 50 * 100;
        for round in 0..50 {
            for client in 0..100 {
                if plan.client_fault(9, round, client) == ClientFault::Dropout {
                    drops += 1;
                }
            }
        }
        let rate = drops as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.03, "empirical dropout rate {rate}");
    }

    #[test]
    fn dropout_schedule_is_independent_of_other_knobs() {
        // Adding corruption/straggling must not reshuffle which clients
        // drop: all uniforms are drawn in fixed order regardless of knobs.
        let drop_only = FaultPlan {
            dropout: 0.2,
            ..FaultPlan::none()
        };
        let combined = FaultPlan {
            dropout: 0.2,
            straggler: 0.4,
            straggler_mean_ms: 5.0,
            deadline_ms: 4.0,
            corrupt: 0.3,
            checkpoint_fail: 0.9,
        };
        for round in 0..20 {
            for client in 0..64 {
                let a = drop_only.client_fault(3, round, client) == ClientFault::Dropout;
                let b = combined.client_fault(3, round, client) == ClientFault::Dropout;
                assert_eq!(a, b, "round {round} client {client}");
            }
        }
    }

    #[test]
    fn straggler_delays_are_positive_and_shed_by_deadline() {
        let plan = FaultPlan {
            straggler: 1.0,
            straggler_mean_ms: 10.0,
            deadline_ms: 10.0,
            ..FaultPlan::none()
        };
        let mut shed = 0usize;
        let mut kept = 0usize;
        for client in 0..200 {
            match plan.client_fault(5, 0, client) {
                ClientFault::Straggler { delay_ms, shed: s } => {
                    assert!(delay_ms >= 0.0 && delay_ms.is_finite());
                    assert_eq!(s, delay_ms > 10.0);
                    if s {
                        shed += 1;
                    } else {
                        kept += 1;
                    }
                }
                other => panic!("expected straggler, got {other:?}"),
            }
        }
        // With mean == deadline, P(shed) = 1/e ≈ 0.37: both sides occur.
        assert!(shed > 20 && kept > 20, "shed {shed} kept {kept}");
    }

    #[test]
    fn zero_deadline_never_sheds() {
        let plan = FaultPlan {
            straggler: 1.0,
            straggler_mean_ms: 50.0,
            deadline_ms: 0.0,
            ..FaultPlan::none()
        };
        for client in 0..100 {
            match plan.client_fault(5, 3, client) {
                ClientFault::Straggler { shed, .. } => assert!(!shed),
                other => panic!("expected straggler, got {other:?}"),
            }
        }
    }

    #[test]
    fn checkpoint_attempts_draw_independently() {
        let plan = FaultPlan {
            checkpoint_fail: 0.5,
            ..FaultPlan::none()
        };
        // Over many rounds, some first attempts fail while a retry
        // succeeds — i.e. attempts are not all-or-nothing per round.
        let mut first_fails_retry_succeeds = 0;
        for round in 0..100 {
            if plan.checkpoint_attempt_fails(11, round, 1)
                && !plan.checkpoint_attempt_fails(11, round, 2)
            {
                first_fails_retry_succeeds += 1;
            }
        }
        assert!(first_fails_retry_succeeds > 5);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(full_plan().validate().is_ok());
        let bad_prob = FaultPlan {
            dropout: 1.5,
            ..FaultPlan::none()
        };
        assert!(bad_prob.validate().is_err());
        let neg = FaultPlan {
            straggler_mean_ms: -1.0,
            ..FaultPlan::none()
        };
        assert!(neg.validate().is_err());
        let nan = FaultPlan {
            deadline_ms: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(nan.validate().is_err());
    }
}
