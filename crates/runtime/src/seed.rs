//! Deterministic RNG stream derivation.
//!
//! Every source of randomness in a run is a pure function of
//! `(run_seed, domain, round, unit)`, where `domain` separates the
//! independent consumers (client training, adversary crafting, client
//! sampling, aggregation, evaluation) and `unit` identifies the client (or
//! is zero for round-global streams). Because no stream is ever shared
//! between clients, the execution schedule — sequential, or fanned over any
//! number of workers — cannot affect what any client draws, which is the
//! foundation of the engine's bit-for-bit determinism guarantee.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Independent randomness consumers within one run.
///
/// The discriminants are part of the checkpoint compatibility contract:
/// reordering them changes every derived stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Domain {
    /// Per-client local training (batch order, dropout, etc.).
    ClientTrain = 1,
    /// Per-compromised-client malicious update crafting.
    Adversary = 2,
    /// Round-level client sampling (unit = 0).
    Sampling = 3,
    /// Round-level aggregator randomness (unit = 0).
    Aggregation = 4,
    /// Evaluation-time randomness (held-out batch choice).
    Eval = 5,
    /// Round-level personalization setup (e.g. cluster initialization),
    /// consumed by `begin_round` hooks (unit = 0).
    RoundSetup = 6,
    /// Fault-injection decisions (client dropout, straggler delays, update
    /// corruption, checkpoint-write failures). Appended after the original
    /// six domains so enabling fault injection never shifts any previously
    /// derived stream.
    Fault = 7,
    /// Discrete-event simulator draws (arrival inter-times, virtual train
    /// durations, availability churn). The `round` coordinate carries a
    /// `(draw index, purpose)` pair packed by `sim::stream_key`, and `unit`
    /// is the virtual client id, so every draw is a pure function of its
    /// position in the client's own schedule — never of event-loop order or
    /// worker count. Appended after `Fault` so enabling simulation never
    /// shifts any previously derived stream.
    Sim = 8,
    /// Per-client data-shard generation for the lazy cohort engine. `round`
    /// is always 0 and `unit` is the client id, so a client's shard is a
    /// pure function of `(run_seed, client_id)` — which is what makes lazy
    /// materialization bitwise-invisible: generating a shard on first touch,
    /// evicting it, and regenerating it later always reproduces the same
    /// bytes. Appended after `Sim` so enabling lazy shards never shifts any
    /// previously derived stream.
    Shard = 9,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes `(run_seed, domain, round, unit)` into a single stream seed.
///
/// Each coordinate passes through a finalizer round so that adjacent
/// rounds/clients land in unrelated regions of seed space (a plain sum or
/// xor of small integers would make streams for neighbouring clients
/// trivially correlated under xoshiro's linear seeding).
pub fn mix(run_seed: u64, domain: Domain, round: u64, unit: u64) -> u64 {
    let mut h = finalize(run_seed ^ GOLDEN);
    h = finalize(h ^ (domain as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    h = finalize(h ^ round.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    finalize(h ^ unit.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
}

/// RNG stream for one `(run, round, client)` training job.
pub fn client_rng(run_seed: u64, round: u64, client_id: usize) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::ClientTrain, round, client_id as u64))
}

/// RNG stream for the adversary crafting client `client_id`'s update.
pub fn adversary_rng(run_seed: u64, round: u64, client_id: usize) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Adversary, round, client_id as u64))
}

/// Round-level RNG for client sampling.
pub fn sampling_rng(run_seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Sampling, round, 0))
}

/// Round-level RNG for the aggregator (e.g. coordinate sampling in Krum
/// variants, DP noise).
pub fn aggregation_rng(run_seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Aggregation, round, 0))
}

/// RNG for evaluation at a given round.
pub fn eval_rng(run_seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Eval, round, 0))
}

/// Round-level RNG for sequential personalization setup (`begin_round`).
pub fn round_setup_rng(run_seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::RoundSetup, round, 0))
}

/// RNG stream for fault-injection decisions about `unit` at `round`.
///
/// `unit` is a client id for per-client faults; reserved sentinel values
/// (see `fault::CHECKPOINT_UNIT`) carry round-global fault streams such as
/// checkpoint-write failures. Taking the unit directly as `u64` keeps the
/// sentinel space disjoint from any realistic client id.
pub fn fault_rng(run_seed: u64, round: u64, unit: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Fault, round, unit))
}

/// RNG stream for one simulator draw.
///
/// `stream` is a packed `(draw index, purpose)` key (see `sim::stream_key`)
/// and `unit` is the virtual client id. Each (client, purpose, index)
/// triple gets its own stream, which is what makes simulated schedules
/// invariant under both worker count and event interleaving: a client's
/// third inter-arrival gap is the same number no matter when the event loop
/// gets around to drawing it.
pub fn sim_rng(run_seed: u64, stream: u64, unit: u64) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Sim, stream, unit))
}

/// RNG stream generating client `client_id`'s data shard.
///
/// The stream depends only on `(run_seed, client_id)` — never on when (or
/// whether) the shard was previously materialized — so a lazily generated,
/// evicted and regenerated shard is bit-identical to an eagerly built one.
pub fn shard_rng(run_seed: u64, client_id: usize) -> StdRng {
    StdRng::seed_from_u64(mix(run_seed, Domain::Shard, 0, client_id as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(
            mix(7, Domain::ClientTrain, 3, 11),
            mix(7, Domain::ClientTrain, 3, 11)
        );
    }

    #[test]
    fn streams_are_separated() {
        let base = mix(7, Domain::ClientTrain, 3, 11);
        assert_ne!(base, mix(8, Domain::ClientTrain, 3, 11), "run seed");
        assert_ne!(base, mix(7, Domain::Adversary, 3, 11), "domain");
        assert_ne!(base, mix(7, Domain::ClientTrain, 4, 11), "round");
        assert_ne!(base, mix(7, Domain::ClientTrain, 3, 12), "client");
        assert_ne!(base, mix(7, Domain::Sim, 3, 11), "sim domain");
    }

    #[test]
    fn sim_streams_do_not_shift_existing_domains() {
        // Domain::Sim is appended; deriving sim streams must not perturb
        // what any pre-existing domain draws for the same coordinates.
        let before = mix(9, Domain::Fault, 4, 2);
        let _ = sim_rng(9, 4, 2);
        assert_eq!(before, mix(9, Domain::Fault, 4, 2));
        assert_ne!(mix(9, Domain::Sim, 4, 2), mix(9, Domain::Fault, 4, 2));
    }

    #[test]
    fn shard_streams_do_not_shift_existing_domains() {
        let before = mix(9, Domain::Sim, 4, 2);
        let _ = shard_rng(9, 2);
        assert_eq!(before, mix(9, Domain::Sim, 4, 2));
        assert_ne!(mix(9, Domain::Shard, 0, 2), mix(9, Domain::Sim, 0, 2));
    }

    #[test]
    fn neighbouring_clients_draw_unrelated_values() {
        // A weak mixer would give near-identical first draws for adjacent
        // client ids; require the first draws to differ across a span.
        let mut seen = std::collections::HashSet::new();
        for cid in 0..64 {
            let v: u64 = client_rng(42, 0, cid).gen_range(0..u64::MAX);
            assert!(seen.insert(v), "collision at client {cid}");
        }
    }

    #[test]
    fn rng_constructors_match_mix() {
        let mut a = client_rng(5, 2, 9);
        let mut b = StdRng::seed_from_u64(mix(5, Domain::ClientTrain, 2, 9));
        for _ in 0..8 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }
}
