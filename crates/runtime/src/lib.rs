//! collapois-runtime: deterministic round-execution engine.
//!
//! Owns the mechanics of executing federated rounds so that `collapois-fl`
//! can focus on the learning semantics:
//!
//! - [`seed`]: per-(run, round, client) RNG stream derivation. Every client
//!   trains off its own deterministically derived `StdRng`, so results are
//!   bit-identical regardless of execution order or worker count.
//! - [`pool`]: a scoped worker pool that fans independent jobs over threads
//!   and returns results in input order.
//! - [`checkpoint`]: versioned binary snapshots of run state for
//!   kill-and-resume semantics.
//! - [`trace`]: structured JSONL run traces (one event per line) that both
//!   humans and downstream tooling consume.
//! - [`fault`]: deterministic fault injection (dropout, stragglers, update
//!   corruption, checkpoint-write failures) whose schedules derive from the
//!   same seed machinery and are therefore worker-count-invariant.
//! - [`sim`]: a deterministic discrete-event simulator — virtual clock,
//!   priority event queue with `(time, seq)` tie-breaking, Poisson or
//!   trace-driven arrivals, availability churn — where each virtual client
//!   is an event, not a thread, enabling million-client schedules with
//!   bitwise-stable replays.

pub mod checkpoint;
pub mod fault;
pub mod pool;
pub mod seed;
pub mod sim;
pub mod trace;
