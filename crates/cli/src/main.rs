//! `collapois` — command-line experiment runner for the CollaPois
//! reproduction.
//!
//! ```text
//! collapois run   [--dataset image|text] [--alpha A] [--frac F]
//!                 [--attack collapois|dpois|mrepl|dba|label-flip|none]
//!                 [--defense none|dp|norm-bound|krum|rlr|median|trimmed-mean|
//!                            signsgd|flare|crfl|stat-filter|user-dp]
//!                 [--algo fedavg|feddc|metafed|ditto|clustered]
//!                 [--rounds T] [--clients N] [--seed S] [--topk K]
//!                 [--workers W] [--trace FILE] [--checkpoint-dir DIR]
//!                 [--checkpoint-every E] [--resume true] [--monitor true]
//!                 [--sim true] [--sim-arrival-ms A] [--sim-train-ms T]
//!                 [--sim-buffer K] [--sim-deadline-ms D] [--sim-decay P]
//!                 [--sim-up-ms U] [--sim-down-ms D] [--sim-concurrency C]
//! collapois sweep [--attack ...] [--defense ...] [--algo ...] — alpha sweep
//! collapois grid  SCENARIOS.toml [--out REPORT.jsonl] [--workers W]
//!                 [--fresh true] [--limit N] [--list true] — scenario matrix
//! collapois bound [--a 0.9] [--b 1.0] [--clients N] — Theorem 1 table
//! collapois trace --file RUN.jsonl — inspect a structured run trace
//! collapois help
//! ```

mod args;

use args::{ArgError, Args};
use collapois_core::scenario::{
    AttackKind, CohortMode, DatasetKind, DefenseKind, FlAlgo, Quantization, RunOptions, Scenario,
    ScenarioConfig, ScenarioModel, SimKnobs,
};
use collapois_core::theory::theorem1_bound;
use collapois_fl::server::round_records_from_events;
use collapois_grid::runner::{run_grid, CellStatus, GridRunOptions};
use collapois_grid::schema::GridSpec;
use collapois_runtime::fault::FaultPlan;
use collapois_runtime::trace::{read_trace, TraceEvent};
use std::path::{Path, PathBuf};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("try: collapois help");
            std::process::exit(2);
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv.iter().map(String::as_str)).map_err(|e| e.to_string())?;
    // `grid` takes the scenario file as a positional; every other command
    // takes none.
    if args.command.as_deref() != Some("grid") {
        args.expect_no_positionals().map_err(|e| e.to_string())?;
    }
    match args.command.as_deref() {
        Some("run") => cmd_run(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("grid") => cmd_grid(&args),
        Some("bound") => cmd_bound(&args),
        Some("trace") => cmd_trace(&args),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

fn print_help() {
    println!(
        "collapois — CollaPois reproduction experiment runner\n\n\
         commands:\n\
         \u{20}  run    run one scenario (attack x defense x FL algorithm)\n\
         \u{20}  sweep  sweep the Dirichlet alpha for a fixed configuration\n\
         \u{20}  grid   run a declarative scenario matrix from a TOML file\n\
         \u{20}  bound  print Theorem 1's |C| lower-bound table\n\
         \u{20}  trace  inspect a structured run trace (--file RUN.jsonl)\n\
         \u{20}  help   this message\n\n\
         grid (collapois grid SCENARIOS.toml; cells run deterministically and\n\
         resume by skipping rows already present in the report):\n\
         \u{20}  --out REPORT.jsonl   report path (default: <scenarios>.report.jsonl)\n\
         \u{20}  --workers W          worker threads per cell (default: the file's\n\
         \u{20}                       [run] workers; results are W-invariant)\n\
         \u{20}  --fresh true         ignore an existing report and rerun every cell\n\
         \u{20}  --limit N            execute at most N cells this invocation\n\
         \u{20}  --list true          print the expanded cells without running\n\n\
         common options:\n\
         \u{20}  --dataset image|text   --alpha A      --frac F       --seed S\n\
         \u{20}  --attack collapois|dpois|mrepl|dba|label-flip|semantic|none\n\
         \u{20}  --defense none|dp|norm-bound|krum|rlr|median|trimmed-mean|signsgd|\n\
         \u{20}            flare|crfl|stat-filter|user-dp|fine-prune\n\
         \u{20}  --algo fedavg|feddc|metafed|ditto|clustered|scaffold\n\
         \u{20}  --model mlp|cnn   --repeats R\n\
         \u{20}  --rounds T   --clients N   --topk K\n\
         \u{20}  --quant f32|f16|int8   client-update transport codec (deterministic\n\
         \u{20}                         RNE encode/decode round-trip; default f32)\n\
         \u{20}  --cohort auto|eager|lazy   client-shard materialization; auto goes\n\
         \u{20}                             lazy at >= 1024 clients\n\
         \u{20}  --shard-budget-mb MB   resident-shard LRU byte budget for lazy\n\
         \u{20}                         cohorts (0 = default 256 MB)\n\n\
         execution (bit-identical for any worker count):\n\
         \u{20}  --workers W            fan benign training over W threads\n\
         \u{20}  --trace FILE           write a JSONL run trace\n\
         \u{20}  --checkpoint-dir DIR   write periodic snapshots into DIR\n\
         \u{20}  --checkpoint-every E   snapshot cadence in rounds (default 5)\n\
         \u{20}  --resume true          resume from the newest intact snapshot in DIR\n\
         \u{20}  --monitor true         emit shift-detector alerts into the trace\n\
         \u{20}  --profile-rounds true  print the per-phase round-loop breakdown\n\n\
         fault injection (deterministic per seed; faults land in the trace):\n\
         \u{20}  --fault-dropout P        per-client per-round dropout probability\n\
         \u{20}  --fault-straggler P      per-client straggler probability\n\
         \u{20}  --fault-delay-ms M       mean straggler delay (exponential), ms\n\
         \u{20}  --fault-deadline-ms D    round deadline shedding stragglers (0 = none)\n\
         \u{20}  --fault-corrupt P        per-client in-flight corruption probability\n\
         \u{20}  --fault-checkpoint P     per-attempt checkpoint-write failure probability\n\n\
         buffered-async simulation (discrete-event, deterministic per seed;\n\
         any --sim-* flag implies --sim true; --rounds sets the flush target):\n\
         \u{20}  --sim true             run FedBuff on the virtual-time simulator\n\
         \u{20}  --sim-arrival-ms A     mean Poisson inter-arrival gap per client, ms\n\
         \u{20}  --sim-train-ms T       mean virtual training duration, ms\n\
         \u{20}  --sim-buffer K         flush after K buffered completions\n\
         \u{20}  --sim-deadline-ms D    virtual flush deadline (0 = none)\n\
         \u{20}  --sim-decay P          staleness weight exponent (1+s)^-P\n\
         \u{20}  --sim-up-ms U          mean available stretch for churn (0 = no churn)\n\
         \u{20}  --sim-down-ms D        mean offline stretch for churn\n\
         \u{20}  --sim-concurrency C    max clients training at once"
    );
}

const RUN_KEYS: &[&str] = &[
    "dataset",
    "alpha",
    "frac",
    "attack",
    "defense",
    "algo",
    "rounds",
    "clients",
    "seed",
    "topk",
    "model",
    "repeats",
    "quant",
    "cohort",
    "shard-budget-mb",
    "workers",
    "trace",
    "checkpoint-dir",
    "checkpoint-every",
    "resume",
    "monitor",
    "profile-rounds",
    "fault-dropout",
    "fault-straggler",
    "fault-delay-ms",
    "fault-deadline-ms",
    "fault-corrupt",
    "fault-checkpoint",
    "sim",
    "sim-arrival-ms",
    "sim-train-ms",
    "sim-buffer",
    "sim-deadline-ms",
    "sim-decay",
    "sim-up-ms",
    "sim-down-ms",
    "sim-concurrency",
];

/// The `--sim-*` knob keys: presence of any implies `--sim true`.
const SIM_KNOB_KEYS: &[&str] = &[
    "sim-arrival-ms",
    "sim-train-ms",
    "sim-buffer",
    "sim-deadline-ms",
    "sim-decay",
    "sim-up-ms",
    "sim-down-ms",
    "sim-concurrency",
];

fn parse_attack(s: &str) -> Result<AttackKind, String> {
    Ok(match s {
        "collapois" => AttackKind::CollaPois,
        "dpois" => AttackKind::DPois,
        "mrepl" => AttackKind::MRepl,
        "dba" => AttackKind::Dba,
        "label-flip" | "lflip" => AttackKind::LabelFlip,
        "semantic" => AttackKind::Semantic,
        "none" | "clean" => AttackKind::None,
        other => return Err(format!("unknown attack '{other}'")),
    })
}

fn parse_defense(s: &str) -> Result<DefenseKind, String> {
    let s = if s == "fine_prune" { "fine-prune" } else { s };
    DefenseKind::all()
        .iter()
        .copied()
        .find(|d| d.name() == s)
        .ok_or_else(|| format!("unknown defense '{s}'"))
}

fn parse_algo(s: &str) -> Result<FlAlgo, String> {
    Ok(match s {
        "fedavg" => FlAlgo::FedAvg,
        "feddc" => FlAlgo::FedDc,
        "metafed" => FlAlgo::MetaFed,
        "ditto" => FlAlgo::Ditto,
        "clustered" => FlAlgo::Clustered,
        "scaffold" => FlAlgo::Scaffold,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn build_config(args: &Args) -> Result<ScenarioConfig, String> {
    if let Some(k) = args.unknown_key(RUN_KEYS) {
        return Err(format!("unknown option --{k}"));
    }
    let err = |e: ArgError| e.to_string();
    let alpha: f64 = args.get_or("alpha", 0.1).map_err(err)?;
    let frac: f64 = args.get_or("frac", 0.01).map_err(err)?;
    let dataset = match args.get("dataset").unwrap_or("image") {
        "image" => DatasetKind::Image,
        "text" => DatasetKind::Text,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let mut cfg = match dataset {
        DatasetKind::Image => ScenarioConfig::quick_image(alpha, frac),
        DatasetKind::Text => ScenarioConfig::quick_text(alpha, frac),
    };
    cfg.attack = parse_attack(args.get("attack").unwrap_or("collapois"))?;
    cfg.defense = parse_defense(args.get("defense").unwrap_or("none"))?;
    cfg.algo = parse_algo(args.get("algo").unwrap_or("fedavg"))?;
    cfg.rounds = args.get_or("rounds", cfg.rounds).map_err(err)?;
    cfg.eval_every = (cfg.rounds / 4).max(1);
    cfg.num_clients = args.get_or("clients", cfg.num_clients).map_err(err)?;
    cfg.seed = args.get_or("seed", cfg.seed).map_err(err)?;
    cfg.model_kind = match args.get("model").unwrap_or("mlp") {
        "mlp" => ScenarioModel::Mlp,
        "cnn" | "lenet" => ScenarioModel::Cnn,
        other => return Err(format!("unknown model '{other}'")),
    };
    let quant = args.get("quant").unwrap_or("f32");
    cfg.quantization =
        Quantization::parse(quant).ok_or_else(|| format!("unknown quant '{quant}'"))?;
    cfg.cohort = match args.get("cohort").unwrap_or("auto") {
        "auto" => CohortMode::Auto,
        "eager" => CohortMode::Eager,
        "lazy" => CohortMode::Lazy,
        other => return Err(format!("unknown cohort mode '{other}'")),
    };
    cfg.shard_budget_mb = args
        .get_or("shard-budget-mb", cfg.shard_budget_mb)
        .map_err(err)?;
    Ok(cfg)
}

fn build_fault_plan(args: &Args) -> Result<FaultPlan, String> {
    let err = |e: ArgError| e.to_string();
    let none = FaultPlan::none();
    let plan = FaultPlan {
        dropout: args.get_or("fault-dropout", none.dropout).map_err(err)?,
        straggler: args
            .get_or("fault-straggler", none.straggler)
            .map_err(err)?,
        straggler_mean_ms: args
            .get_or("fault-delay-ms", none.straggler_mean_ms)
            .map_err(err)?,
        deadline_ms: args
            .get_or("fault-deadline-ms", none.deadline_ms)
            .map_err(err)?,
        corrupt: args.get_or("fault-corrupt", none.corrupt).map_err(err)?,
        checkpoint_fail: args
            .get_or("fault-checkpoint", none.checkpoint_fail)
            .map_err(err)?,
    };
    plan.validate()?;
    Ok(plan)
}

fn build_sim_knobs(args: &Args) -> Result<Option<SimKnobs>, String> {
    let err = |e: ArgError| e.to_string();
    let enabled = args.get_or("sim", false).map_err(err)?
        || SIM_KNOB_KEYS.iter().any(|k| args.get(k).is_some());
    if !enabled {
        return Ok(None);
    }
    let d = SimKnobs::default();
    Ok(Some(SimKnobs {
        arrival_mean_ms: args
            .get_or("sim-arrival-ms", d.arrival_mean_ms)
            .map_err(err)?,
        train_mean_ms: args.get_or("sim-train-ms", d.train_mean_ms).map_err(err)?,
        buffer_k: args.get_or("sim-buffer", d.buffer_k).map_err(err)?,
        flush_deadline_ms: args
            .get_or("sim-deadline-ms", d.flush_deadline_ms)
            .map_err(err)?,
        staleness_decay: args.get_or("sim-decay", d.staleness_decay).map_err(err)?,
        churn_up_ms: args.get_or("sim-up-ms", d.churn_up_ms).map_err(err)?,
        churn_down_ms: args.get_or("sim-down-ms", d.churn_down_ms).map_err(err)?,
        max_concurrency: args
            .get_or("sim-concurrency", d.max_concurrency)
            .map_err(err)?,
    }))
}

fn build_run_options(args: &Args) -> Result<RunOptions, String> {
    let err = |e: ArgError| e.to_string();
    Ok(RunOptions {
        workers: args.get_or("workers", 1).map_err(err)?,
        trace_path: args.get("trace").map(PathBuf::from),
        checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
        checkpoint_every: args.get_or("checkpoint-every", 0).map_err(err)?,
        resume: args.get_or("resume", false).map_err(err)?,
        monitor: args.get_or("monitor", false).map_err(err)?,
        profile_rounds: args.get_or("profile-rounds", false).map_err(err)?,
        fault: build_fault_plan(args)?,
        sim: build_sim_knobs(args)?,
    })
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let opts = build_run_options(args)?;
    let topk: f64 = args.get_or("topk", 25.0).map_err(|e| e.to_string())?;
    let repeats: usize = args.get_or("repeats", 1).map_err(|e| e.to_string())?;
    if repeats > 1 {
        let rep = Scenario::new(cfg).run_repeated(repeats);
        println!(
            "{repeats} runs: benign AC {:.2}% +/- {:.2}, attack SR {:.2}% +/- {:.2}",
            100.0 * rep.benign_ac_mean,
            100.0 * rep.benign_ac_std,
            100.0 * rep.attack_sr_mean,
            100.0 * rep.attack_sr_std
        );
        return Ok(());
    }
    println!(
        "scenario: {} | attack={} defense={} algo={} alpha={} |C|={} of {} | {} rounds",
        match cfg.dataset {
            DatasetKind::Image => "FEMNIST-sim",
            DatasetKind::Text => "Sentiment-sim",
        },
        cfg.attack.name(),
        cfg.defense.name(),
        cfg.algo.name(),
        cfg.alpha,
        cfg.num_compromised(),
        cfg.num_clients,
        cfg.rounds
    );
    if let Some(knobs) = &opts.sim {
        println!(
            "mode: buffered-async sim | arrival {} ms, train {} ms, K={}, deadline {}, \
             decay {}, concurrency {}",
            knobs.arrival_mean_ms,
            knobs.train_mean_ms,
            knobs.buffer_k,
            if knobs.flush_deadline_ms > 0.0 {
                format!("{} ms", knobs.flush_deadline_ms)
            } else {
                "none".to_string()
            },
            knobs.staleness_decay,
            knobs.max_concurrency
        );
    }
    let report = Scenario::new(cfg).run_with(&opts);
    if let Some(x) = &report.trojan {
        println!(
            "trojaned model X: clean acc {:.1}%, trigger success {:.1}%",
            100.0 * x.clean_accuracy,
            100.0 * x.trigger_success
        );
    }
    println!("\nround  benign AC  attack SR");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>8.2}%  {:>8.2}%",
            r.round,
            100.0 * r.benign_accuracy,
            100.0 * r.attack_success_rate
        );
    }
    let pop = report.population();
    let top = report.top_k(topk);
    println!(
        "\npopulation: AC {:.2}%, SR {:.2}%   top-{topk:.0}%: AC {:.2}%, SR {:.2}%",
        100.0 * pop.benign_ac,
        100.0 * pop.attack_sr,
        100.0 * top.benign_ac,
        100.0 * top.attack_sr
    );
    if !report.clusters.is_empty() {
        println!("\ncluster      clients  CS_k    attack SR");
        for c in &report.clusters {
            println!(
                "{:<12} {:>7}  {:.4}  {:>8.2}%",
                c.label,
                c.clients.len(),
                c.label_cosine,
                100.0 * c.attack_sr
            );
        }
    }
    if opts.profile_rounds {
        println!(
            "\nper-round profile: {}",
            report.profile.per_round_summary()
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let base = build_config(args)?;
    // The sweep honors --workers; per-run trace/checkpoint paths would
    // overwrite each other across alphas, so only the thread knob applies.
    let opts = RunOptions {
        workers: build_run_options(args)?.workers,
        ..RunOptions::default()
    };
    println!(
        "alpha sweep: attack={} defense={} algo={}",
        base.attack.name(),
        base.defense.name(),
        base.algo.name()
    );
    println!("{:<8} {:>10} {:>10}", "alpha", "benign AC", "attack SR");
    for alpha in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let mut cfg = base.clone();
        cfg.alpha = alpha;
        let report = Scenario::new(cfg).run_with(&opts);
        let last = report.final_round();
        println!(
            "{:<8} {:>9.2}% {:>9.2}%",
            alpha,
            100.0 * last.benign_accuracy,
            100.0 * last.attack_success_rate
        );
    }
    Ok(())
}

const GRID_KEYS: &[&str] = &["out", "workers", "fresh", "limit", "list"];

fn cmd_grid(args: &Args) -> Result<(), String> {
    if let Some(k) = args.unknown_key(GRID_KEYS) {
        return Err(format!("unknown option --{k}"));
    }
    args.expect_at_most_positionals(1)
        .map_err(|e| e.to_string())?;
    let scenario_path = args
        .positional(0)
        .ok_or("grid requires a scenario file: collapois grid SCENARIOS.toml")?;
    let err = |e: ArgError| e.to_string();
    let text = std::fs::read_to_string(scenario_path)
        .map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let spec = GridSpec::parse(&text).map_err(|e| format!("{scenario_path}: {e}"))?;
    let cells = spec
        .cells()
        .expect("GridSpec::parse validated the expansion");

    let axes: Vec<String> = spec
        .axis_summary()
        .iter()
        .map(|(k, n)| format!("{k}({n})"))
        .collect();
    println!(
        "grid '{}': {} cells [{}]",
        spec.name,
        cells.len(),
        axes.join(" x ")
    );
    if args.get_or("list", false).map_err(err)? {
        for cell in &cells {
            println!(
                "{:>4}  {}  config=0x{:016x}",
                cell.index, cell.id, cell.config_hash
            );
        }
        return Ok(());
    }

    let out = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_report_path(scenario_path));
    let opts = GridRunOptions {
        workers: args.get_or("workers", 0).map_err(err)?,
        fresh: args.get_or("fresh", false).map_err(err)?,
        limit: args.get_or("limit", 0).map_err(err)?,
    };
    let total = cells.len();
    let outcome = run_grid(&spec, &out, &opts, |cell, status| {
        let tag = match status {
            CellStatus::Skipped => "skip",
            CellStatus::Executed => "done",
        };
        println!("[{:>3}/{total}] {tag}  {}", cell.index + 1, cell.id);
    })
    .map_err(|e| format!("grid report {}: {e}", out.display()))?;
    println!(
        "{} executed, {} skipped, {} remaining -> {}",
        outcome.executed,
        outcome.skipped,
        outcome.remaining,
        outcome.report_path.display()
    );
    if !outcome.complete() {
        println!("rerun the same command to continue (completed cells are skipped)");
    }
    Ok(())
}

/// `scenarios/smoke.toml` → `scenarios/smoke.report.jsonl`.
fn default_report_path(scenario_path: &str) -> PathBuf {
    let p = Path::new(scenario_path);
    let stem = p
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "grid".to_string());
    p.with_file_name(format!("{stem}.report.jsonl"))
}

fn cmd_bound(args: &Args) -> Result<(), String> {
    let err = |e: ArgError| e.to_string();
    let a: f64 = args.get_or("a", 0.9).map_err(err)?;
    let b: f64 = args.get_or("b", 1.0).map_err(err)?;
    let n: usize = args.get_or("clients", 1000).map_err(err)?;
    if !(0.0 < a && a < b && b <= 1.0) {
        return Err("psi range must satisfy 0 < a < b <= 1".into());
    }
    println!("Theorem 1 lower bound |C| for N = {n}, psi ~ U[{a}, {b}]");
    println!("{:<8} 0.0      0.25     0.5      0.75     1.0", "mu\\sigma");
    for mu_step in 0..=6 {
        let mu = mu_step as f64 * 0.2;
        let mut row = format!("{mu:<8.1}");
        for sig_step in 0..=4 {
            let sigma = sig_step as f64 * 0.25;
            row.push_str(&format!(" {:<8.1}", theorem1_bound(mu, sigma, a, b, n)));
        }
        println!("{row}");
    }
    Ok(())
}

const TRACE_KEYS: &[&str] = &["file"];

fn cmd_trace(args: &Args) -> Result<(), String> {
    if let Some(k) = args.unknown_key(TRACE_KEYS) {
        return Err(format!("unknown option --{k}"));
    }
    let file = args.get("file").ok_or("trace requires --file RUN.jsonl")?;
    let events = read_trace(Path::new(file)).map_err(|e| e.to_string())?;
    let mut header_printed = false;
    for event in &events {
        match event {
            TraceEvent::RunStarted {
                run_seed,
                config_hash,
                num_clients,
                rounds,
                workers,
                aggregator,
                resumed_from,
            } => {
                println!(
                    "run: seed={run_seed} config=0x{config_hash:016x} clients={num_clients} \
                     rounds={rounds} workers={workers} aggregator={aggregator}{}",
                    match resumed_from {
                        Some(r) => format!(" (resumed from round {r})"),
                        None => String::new(),
                    }
                );
            }
            TraceEvent::RoundCompleted {
                round,
                aggregator: _,
                num_malicious,
                benign_norms,
                malicious_norms: _,
                agg_delta_norm,
                elapsed_ms,
            } => {
                if !header_printed {
                    println!("\nround  benign  malicious  |agg delta|        ms");
                    header_printed = true;
                }
                println!(
                    "{round:>5}  {:>6}  {num_malicious:>9}  {agg_delta_norm:>11.4}  {elapsed_ms:>8.1}",
                    benign_norms.len()
                );
            }
            TraceEvent::ShiftAlert {
                round,
                observed,
                baseline_median,
                z_score,
            } => {
                println!(
                    "  ! shift alert at round {round}: observed {observed:.4} vs median \
                     {baseline_median:.4} (z = {z_score:.1})"
                );
            }
            TraceEvent::CheckpointSaved { round, path } => {
                println!("  * checkpoint for round {round}: {path}");
            }
            TraceEvent::ClientDropped {
                round,
                client,
                cause,
                delay_ms,
            } => {
                if cause == "straggler" {
                    println!(
                        "  - round {round}: client {client} shed as straggler \
                         ({delay_ms:.1} ms past deadline budget)"
                    );
                } else {
                    println!("  - round {round}: client {client} dropped ({cause})");
                }
            }
            TraceEvent::UpdateRejected {
                round,
                client,
                reason,
            } => {
                println!("  - round {round}: update from client {client} rejected ({reason})");
            }
            TraceEvent::CheckpointWriteFailed {
                round,
                attempt,
                error,
                gave_up,
            } => {
                println!(
                    "  ! checkpoint write for round {round} failed on attempt {attempt}{}: {error}",
                    if *gave_up { " (gave up)" } else { "" }
                );
            }
            TraceEvent::RunCompleted {
                rounds_executed,
                elapsed_ms,
            } => {
                println!(
                    "\nrun completed: {rounds_executed} rounds in {:.2}s",
                    elapsed_ms / 1e3
                );
            }
            TraceEvent::ClientArrived {
                vtime_us,
                client,
                version,
            } => {
                println!(
                    "  > t={:.1}ms: client {client} arrived, fetched model v{version}",
                    *vtime_us as f64 / 1e3
                );
            }
            TraceEvent::ClientUnavailable {
                vtime_us,
                client,
                reason,
            } => {
                println!(
                    "  . t={:.1}ms: client {client} turned away ({reason})",
                    *vtime_us as f64 / 1e3
                );
            }
            TraceEvent::BufferFlushed {
                vtime_us,
                flush,
                size,
                mean_staleness,
                cause,
            } => {
                println!(
                    "  # t={:.1}ms: flush {flush} merged {size} updates \
                     (mean staleness {mean_staleness:.2}, {cause})",
                    *vtime_us as f64 / 1e3
                );
            }
            TraceEvent::RoundStarted { .. } => {}
        }
    }
    let records = round_records_from_events(&events);
    println!(
        "{} events, {} reconstructed round records",
        events.len(),
        records.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&["help".to_string()]).is_ok());
        assert!(run(&[]).is_ok());
        let e = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn config_builder_applies_options() {
        let args = Args::parse([
            "run",
            "--dataset",
            "text",
            "--alpha",
            "0.5",
            "--frac",
            "0.05",
            "--attack",
            "dpois",
            "--defense",
            "krum",
            "--algo",
            "feddc",
            "--rounds",
            "7",
            "--clients",
            "30",
            "--seed",
            "9",
            "--quant",
            "int8",
        ])
        .unwrap();
        let cfg = build_config(&args).unwrap();
        assert_eq!(cfg.dataset, DatasetKind::Text);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.attack, AttackKind::DPois);
        assert_eq!(cfg.defense, DefenseKind::Krum);
        assert_eq!(cfg.algo, FlAlgo::FedDc);
        assert_eq!(cfg.rounds, 7);
        assert_eq!(cfg.num_clients, 30);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.quantization, Quantization::Int8);
    }

    #[test]
    fn config_builder_applies_cohort_options() {
        let args = Args::parse(["run", "--cohort", "lazy", "--shard-budget-mb", "64"]).unwrap();
        let cfg = build_config(&args).unwrap();
        assert_eq!(cfg.cohort, CohortMode::Lazy);
        assert_eq!(cfg.shard_budget_mb, 64);
        let cfg = build_config(&Args::parse(["run"]).unwrap()).unwrap();
        assert_eq!(cfg.cohort, CohortMode::Auto);
        let args = Args::parse(["run", "--cohort", "maybe"]).unwrap();
        assert!(build_config(&args).unwrap_err().contains("maybe"));
    }

    #[test]
    fn config_builder_rejects_bad_input() {
        let args = Args::parse(["run", "--attack", "zeus"]).unwrap();
        assert!(build_config(&args).is_err());
        let args = Args::parse(["run", "--dataset", "audio"]).unwrap();
        assert!(build_config(&args).is_err());
        let args = Args::parse(["run", "--alfa", "1"]).unwrap();
        assert!(build_config(&args).unwrap_err().contains("--alfa"));
        let args = Args::parse(["run", "--quant", "int4"]).unwrap();
        assert!(build_config(&args).unwrap_err().contains("int4"));
    }

    #[test]
    fn run_options_parse() {
        let args = Args::parse([
            "run",
            "--workers",
            "4",
            "--trace",
            "/tmp/t.jsonl",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "3",
            "--resume",
            "true",
            "--monitor",
            "true",
        ])
        .unwrap();
        let opts = build_run_options(&args).unwrap();
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.trace_path.as_deref(), Some(Path::new("/tmp/t.jsonl")));
        assert_eq!(opts.checkpoint_dir.as_deref(), Some(Path::new("/tmp/ck")));
        assert_eq!(opts.checkpoint_every, 3);
        assert!(opts.resume);
        assert!(opts.monitor);
        // Defaults: sequential, nothing written.
        let defaults = build_run_options(&Args::parse(["run"]).unwrap()).unwrap();
        assert_eq!(
            defaults,
            RunOptions {
                workers: 1,
                ..RunOptions::default()
            }
        );
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let args = Args::parse([
            "run",
            "--fault-dropout",
            "0.2",
            "--fault-straggler",
            "0.1",
            "--fault-delay-ms",
            "40",
            "--fault-deadline-ms",
            "25",
            "--fault-corrupt",
            "0.05",
            "--fault-checkpoint",
            "0.5",
        ])
        .unwrap();
        let opts = build_run_options(&args).unwrap();
        assert_eq!(opts.fault.dropout, 0.2);
        assert_eq!(opts.fault.straggler, 0.1);
        assert_eq!(opts.fault.straggler_mean_ms, 40.0);
        assert_eq!(opts.fault.deadline_ms, 25.0);
        assert_eq!(opts.fault.corrupt, 0.05);
        assert_eq!(opts.fault.checkpoint_fail, 0.5);
        assert!(opts.fault.is_active());
        // Default: no faults.
        let defaults = build_run_options(&Args::parse(["run"]).unwrap()).unwrap();
        assert!(!defaults.fault.is_active());
        // Out-of-range probability is rejected before any run starts.
        let bad = Args::parse(["run", "--fault-dropout", "1.5"]).unwrap();
        assert!(build_run_options(&bad).is_err());
    }

    #[test]
    fn sim_flags_parse_and_imply_sim_mode() {
        // Off by default.
        let defaults = build_run_options(&Args::parse(["run"]).unwrap()).unwrap();
        assert!(defaults.sim.is_none());
        // --sim true alone enables the defaults.
        let opts = build_run_options(&Args::parse(["run", "--sim", "true"]).unwrap()).unwrap();
        assert_eq!(opts.sim, Some(SimKnobs::default()));
        // Any knob implies sim mode and overrides its default.
        let args = Args::parse([
            "run",
            "--sim-arrival-ms",
            "25",
            "--sim-buffer",
            "32",
            "--sim-deadline-ms",
            "120",
            "--sim-up-ms",
            "400",
            "--sim-down-ms",
            "100",
        ])
        .unwrap();
        let knobs = build_run_options(&args).unwrap().sim.expect("implied");
        assert_eq!(knobs.arrival_mean_ms, 25.0);
        assert_eq!(knobs.buffer_k, 32);
        assert_eq!(knobs.flush_deadline_ms, 120.0);
        assert_eq!(knobs.churn_up_ms, 400.0);
        assert_eq!(knobs.churn_down_ms, 100.0);
        assert_eq!(knobs.train_mean_ms, SimKnobs::default().train_mean_ms);
    }

    #[test]
    fn trace_command_validates_input() {
        let e = run(&["trace".to_string()]).unwrap_err();
        assert!(e.contains("--file"));
        let e = run(&[
            "trace".to_string(),
            "--file".to_string(),
            "/nonexistent/run.jsonl".to_string(),
        ])
        .unwrap_err();
        assert!(!e.is_empty());
    }

    #[test]
    fn bound_command_validates_psi() {
        let args = vec![
            "bound".to_string(),
            "--a".into(),
            "1.0".into(),
            "--b".into(),
            "0.5".into(),
        ];
        assert!(run(&args).is_err());
    }

    #[test]
    fn parse_helpers_cover_all_names() {
        for d in DefenseKind::all() {
            assert_eq!(parse_defense(d.name()).unwrap(), *d);
        }
        for (s, a) in [
            ("collapois", AttackKind::CollaPois),
            ("label-flip", AttackKind::LabelFlip),
            ("lflip", AttackKind::LabelFlip),
            ("none", AttackKind::None),
        ] {
            assert_eq!(parse_attack(s).unwrap(), a);
        }
        for s in ["fedavg", "feddc", "metafed", "ditto", "clustered"] {
            assert!(parse_algo(s).is_ok());
        }
    }

    #[test]
    fn grid_command_validates_input() {
        let e = run(&["grid".to_string()]).unwrap_err();
        assert!(e.contains("scenario file"), "{e}");
        let e = run(&["grid".to_string(), "/nonexistent/grid.toml".to_string()]).unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
        let e = run(&[
            "grid".to_string(),
            "a.toml".to_string(),
            "b.toml".to_string(),
        ])
        .unwrap_err();
        assert!(e.contains("b.toml"), "{e}");
        let e = run(&[
            "grid".to_string(),
            "a.toml".to_string(),
            "--frobnicate".to_string(),
            "1".to_string(),
        ])
        .unwrap_err();
        assert!(e.contains("--frobnicate"), "{e}");
        // A schema error is reported with the file it came from.
        let dir = std::env::temp_dir().join("collapois-cli-grid-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.toml");
        std::fs::write(
            &bad,
            "schema_version = 1\nname = \"x\"\n[base]\nalpha = -1.0\n",
        )
        .unwrap();
        let e = run(&["grid".to_string(), bad.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.contains("bad.toml") && e.contains("alpha"), "{e}");
    }

    #[test]
    fn grid_list_expands_without_running() {
        let dir = std::env::temp_dir().join("collapois-cli-grid-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("list.toml");
        std::fs::write(
            &path,
            "schema_version = 1\nname = \"list\"\n[base]\nrounds = 2\neval_every = 2\n\
             [axes]\ndefense = [\"none\", \"krum\"]\n",
        )
        .unwrap();
        let argv = vec![
            "grid".to_string(),
            path.to_string_lossy().into_owned(),
            "--list".to_string(),
            "true".to_string(),
        ];
        assert!(run(&argv).is_ok());
    }

    #[test]
    fn default_report_path_is_derived_from_the_scenario_stem() {
        assert_eq!(
            default_report_path("scenarios/smoke.toml"),
            PathBuf::from("scenarios/smoke.report.jsonl")
        );
        assert_eq!(
            default_report_path("paper.toml"),
            PathBuf::from("paper.report.jsonl")
        );
    }
}
