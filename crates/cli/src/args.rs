//! Minimal `--key value` argument parser (the allowed dependency set has no
//! clap).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional operands, and
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Error produced while parsing or extracting options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// An option's value could not be parsed into the requested type.
    BadValue {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
        /// Expected type/domain.
        expected: &'static str,
    },
    /// A token was not understood.
    UnexpectedToken(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingValue(k) => write!(f, "option --{k} requires a value"),
            Self::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "option --{key}: '{value}' is not a valid {expected}")
            }
            Self::UnexpectedToken(t) => write!(f, "unexpected argument '{t}'"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `tokens` (without the program name). Non-flag tokens after
    /// the subcommand are collected as positionals; commands that take
    /// none reject them via [`expect_no_positionals`](Self::expect_no_positionals).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on dangling flags.
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut args = Args::default();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            let tok = tok.as_ref();
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                args.options
                    .insert(key.to_string(), value.as_ref().to_string());
            } else if args.command.is_none() {
                args.command = Some(tok.to_string());
            } else {
                args.positionals.push(tok.to_string());
            }
        }
        Ok(args)
    }

    /// The `i`-th positional operand after the subcommand.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Errors on the first positional operand, for commands that take none.
    ///
    /// # Errors
    ///
    /// [`ArgError::UnexpectedToken`] naming the stray operand.
    pub fn expect_no_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(ArgError::UnexpectedToken(p.clone())),
        }
    }

    /// Errors on positionals beyond the first `n`.
    ///
    /// # Errors
    ///
    /// [`ArgError::UnexpectedToken`] naming the first excess operand.
    pub fn expect_at_most_positionals(&self, n: usize) -> Result<(), ArgError> {
        match self.positionals.get(n) {
            None => Ok(()),
            Some(p) => Err(ArgError::UnexpectedToken(p.clone())),
        }
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Whether any options were supplied that are not in `known` (typo
    /// guard). Returns the first unknown key.
    pub fn unknown_key(&self, known: &[&str]) -> Option<&str> {
        self.options
            .keys()
            .find(|k| !known.contains(&k.as_str()))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(["run", "--alpha", "0.1", "--rounds", "30"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("alpha"), Some("0.1"));
        assert_eq!(a.get_or("rounds", 0usize).unwrap(), 30);
        assert_eq!(a.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_dangling_flag() {
        let e = Args::parse(["run", "--alpha"]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("alpha".into()));
        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn collects_positionals_and_guards_commands_that_take_none() {
        let a = Args::parse(["grid", "scenarios/smoke.toml", "--workers", "2"]).unwrap();
        assert_eq!(a.positional(0), Some("scenarios/smoke.toml"));
        assert_eq!(a.positional(1), None);
        assert!(a.expect_at_most_positionals(1).is_ok());
        assert!(matches!(
            a.expect_no_positionals().unwrap_err(),
            ArgError::UnexpectedToken(_)
        ));
        let e = Args::parse(["run", "extra"])
            .unwrap()
            .expect_no_positionals()
            .unwrap_err();
        assert!(matches!(e, ArgError::UnexpectedToken(_)));
    }

    #[test]
    fn typed_errors_carry_context() {
        let a = Args::parse(["run", "--rounds", "banana"]).unwrap();
        let e = a.get_or("rounds", 1usize).unwrap_err();
        assert!(matches!(e, ArgError::BadValue { .. }));
    }

    #[test]
    fn unknown_key_guard() {
        let a = Args::parse(["run", "--alfa", "1"]).unwrap();
        assert_eq!(a.unknown_key(&["alpha"]), Some("alfa"));
        assert_eq!(a.unknown_key(&["alfa"]), None);
    }
}
