//! Property-based tests for the data substrate.

use collapois_data::federated::FederatedDataset;
use collapois_data::labels::{cumulative_label_distribution, label_histogram};
use collapois_data::poison::{poison_all, stamp_only, with_poisoned_fraction};
use collapois_data::sample::Dataset;
use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois_data::trigger::{DbaTrigger, PatchTrigger, Trigger, WaNetTrigger};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labelled(labels: &[usize], classes: usize) -> Dataset {
    let mut ds = Dataset::empty(&[1], classes);
    for &y in labels {
        ds.push(&[y as f32], y);
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Train/test/val splits partition the dataset for arbitrary fractions.
    #[test]
    fn split_partitions(
        seed in 0u64..1000,
        n in 3usize..60,
        train in 0.1f64..0.8,
        test in 0.05f64..0.2,
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let ds = labelled(&labels, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let (tr, te, va) = ds.split(&mut rng, train, test);
        prop_assert_eq!(tr.len() + te.len() + va.len(), n);
    }

    /// Poisoning a fraction appends exactly round(n·f) samples, all
    /// relabelled to the target class.
    #[test]
    fn poison_fraction_counts(
        seed in 0u64..1000,
        n in 4usize..40,
        frac in 0.0f64..1.0,
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let mut ds = Dataset::empty(&[1, 4, 4], 4);
        for &y in &labels {
            ds.push(&[0.2; 16], y);
        }
        let trigger = PatchTrigger::badnets(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mixed = with_poisoned_fraction(&mut rng, &ds, &trigger, 0, frac);
        let expected = n + (n as f64 * frac).round() as usize;
        prop_assert_eq!(mixed.len(), expected);
        for i in n..mixed.len() {
            prop_assert_eq!(mixed.label_of(i), 0);
        }
    }

    /// stamp_only preserves labels; poison_all rewrites them all.
    #[test]
    fn stamping_label_contracts(seed in 0u64..1000, n in 2usize..20) {
        let labels: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % 5).collect();
        let mut ds = Dataset::empty(&[1, 6, 6], 5);
        for &y in &labels {
            ds.push(&[0.5; 36], y);
        }
        let trigger = PatchTrigger::badnets(6);
        let stamped = stamp_only(&ds, &trigger);
        prop_assert_eq!(stamped.labels(), ds.labels());
        let poisoned = poison_all(&ds, &trigger, 2);
        prop_assert!(poisoned.labels().iter().all(|&y| y == 2));
    }

    /// WaNet keeps in-range pixels in range and DBA's composed pattern has
    /// exactly 4·patch² saturated pixels on a black image.
    #[test]
    fn trigger_pixel_contracts(
        seed in 0u64..1000,
        side in 8usize..24,
        strength in 0.5f64..4.0,
    ) {
        let wanet = WaNetTrigger::new(side, 4, strength, seed);
        let mut img: Vec<f32> =
            (0..side * side).map(|i| ((i * 13) % 97) as f32 / 96.0).collect();
        wanet.apply(&mut img);
        prop_assert!(img.iter().all(|&v| (-1e-4..=1.0001).contains(&v)));

        let patch = 2;
        if 2 * patch <= side {
            let dba = DbaTrigger::new(side, patch, 1.0);
            let mut black = vec![0.0f32; side * side];
            dba.apply(&mut black);
            let lit = black.iter().filter(|&&v| v == 1.0).count();
            prop_assert_eq!(lit, 4 * patch * patch);
        }
    }

    /// Cumulative label distributions are monotone and end at the sample
    /// count.
    #[test]
    fn cumulative_distribution_contract(labels in prop::collection::vec(0usize..6, 1..50)) {
        let ds = labelled(&labels, 6);
        let cl = cumulative_label_distribution(&ds);
        prop_assert_eq!(cl.len(), 6);
        for w in cl.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((cl[5] - labels.len() as f64).abs() < 1e-9);
        let hist = label_histogram(&ds);
        prop_assert_eq!(hist.iter().sum::<usize>(), labels.len());
    }

    /// Federated splits cover the source dataset for arbitrary alpha.
    #[test]
    fn federated_build_covers(seed in 0u64..200, alpha in 0.01f64..100.0) {
        let ds = SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 4,
            samples: 120,
            ..Default::default()
        })
        .generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let fed = FederatedDataset::build(&mut rng, &ds, 6, alpha);
        let total: usize = (0..6).map(|i| fed.client(i).len()).sum();
        prop_assert_eq!(total, 120);
        prop_assert!((fed.alpha() - alpha).abs() < 1e-12);
    }
}
