//! Dataset poisoning: trigger stamping plus target-class relabelling.
//!
//! Algorithm 1 line 3: the attacker embeds the Trojan into samples of the
//! auxiliary data and flips their labels to the target class, producing
//! `D_a^Troj`; the Trojaned model X is then trained on `D_a ∪ D_a^Troj`
//! (Eq. 1). The paper designates class 0 as the target.

use crate::sample::Dataset;
use crate::trigger::Trigger;
use rand::seq::SliceRandom;
use rand::Rng;

/// The target class the paper uses (`y^Troj = 0`).
pub const DEFAULT_TARGET_CLASS: usize = 0;

/// Returns a poisoned copy of every sample: trigger stamped, label set to
/// `target_class`.
///
/// # Panics
///
/// Panics if `target_class` is out of range for the dataset.
pub fn poison_all(ds: &Dataset, trigger: &dyn Trigger, target_class: usize) -> Dataset {
    assert!(target_class < ds.num_classes(), "target class out of range");
    let mut out = ds.clone();
    for i in 0..out.len() {
        trigger.apply(out.features_of_mut(i));
        out.set_label(i, target_class);
    }
    out
}

/// Returns `(clean ∪ poisoned)` where a random `fraction` of samples are
/// duplicated in poisoned form — the `D ∪ D^Troj` training set of Eq. 1 and
/// of the DPois baseline.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or `target_class` out of range.
pub fn with_poisoned_fraction<R: Rng + ?Sized>(
    rng: &mut R,
    ds: &Dataset,
    trigger: &dyn Trigger,
    target_class: usize,
    fraction: f64,
) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    assert!(target_class < ds.num_classes(), "target class out of range");
    let mut out = ds.clone();
    let n_poison = (ds.len() as f64 * fraction).round() as usize;
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(n_poison) {
        let mut features = ds.features_of(i).to_vec();
        trigger.apply(&mut features);
        out.push(&features, target_class);
    }
    out
}

/// Returns a copy with every label `y` flipped to `classes − 1 − y` — the
/// classic untargeted label-flipping Byzantine attack (no trigger, features
/// untouched). With two classes this is a full label inversion; with more
/// it is the `0→9, 1→8, …` permutation of the standard formulation.
pub fn flip_labels(ds: &Dataset) -> Dataset {
    let mut out = ds.clone();
    let classes = out.num_classes();
    for i in 0..out.len() {
        out.set_label(i, classes - 1 - out.label_of(i));
    }
    out
}

/// Stamps the trigger onto every sample of a copy of `ds` **without**
/// relabelling — the inference-time transformation used to measure Attack
/// SR (`x + T` in the paper's metric), keeping the true labels for
/// book-keeping.
pub fn stamp_only(ds: &Dataset, trigger: &dyn Trigger) -> Dataset {
    let mut out = ds.clone();
    for i in 0..out.len() {
        trigger.apply(out.features_of_mut(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::PatchTrigger;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(&[1, 4, 4], 3);
        for i in 0..12 {
            ds.push(&[0.5; 16], i % 3);
        }
        ds
    }

    #[test]
    fn poison_all_relabels_and_stamps() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let p = poison_all(&ds, &trigger, 0);
        assert_eq!(p.len(), ds.len());
        for i in 0..p.len() {
            assert_eq!(p.label_of(i), 0);
            assert!(p.features_of(i).contains(&1.0), "trigger missing");
        }
        // Original untouched.
        assert!(ds.features_of(0).iter().all(|&v| v == 0.5));
    }

    #[test]
    fn fraction_appends_poisoned_duplicates() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mixed = with_poisoned_fraction(&mut rng, &ds, &trigger, 0, 0.5);
        assert_eq!(mixed.len(), 18); // 12 clean + 6 poisoned
        let poisoned = (0..mixed.len())
            .filter(|&i| mixed.features_of(i).contains(&1.0))
            .count();
        assert_eq!(poisoned, 6);
    }

    #[test]
    fn stamp_only_keeps_labels() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let stamped = stamp_only(&ds, &trigger);
        for i in 0..ds.len() {
            assert_eq!(stamped.label_of(i), ds.label_of(i));
            assert!(stamped.features_of(i).contains(&1.0));
        }
    }

    #[test]
    fn flip_labels_is_an_involution() {
        let ds = toy();
        let flipped = flip_labels(&ds);
        assert_eq!(flipped.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(flipped.label_of(i), 2 - ds.label_of(i));
            assert_eq!(flipped.features_of(i), ds.features_of(i));
        }
        let back = flip_labels(&flipped);
        for i in 0..ds.len() {
            assert_eq!(back.label_of(i), ds.label_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let _ = poison_all(&ds, &trigger, 5);
    }
}
