//! Dataset poisoning: trigger stamping plus target-class relabelling.
//!
//! Algorithm 1 line 3: the attacker embeds the Trojan into samples of the
//! auxiliary data and flips their labels to the target class, producing
//! `D_a^Troj`; the Trojaned model X is then trained on `D_a ∪ D_a^Troj`
//! (Eq. 1). The paper designates class 0 as the target.

use crate::sample::Dataset;
use crate::trigger::Trigger;
use rand::seq::SliceRandom;
use rand::Rng;

/// The target class the paper uses (`y^Troj = 0`).
pub const DEFAULT_TARGET_CLASS: usize = 0;

/// Returns a poisoned copy of every sample: trigger stamped, label set to
/// `target_class`.
///
/// # Panics
///
/// Panics if `target_class` is out of range for the dataset.
pub fn poison_all(ds: &Dataset, trigger: &dyn Trigger, target_class: usize) -> Dataset {
    assert!(target_class < ds.num_classes(), "target class out of range");
    let mut out = ds.clone();
    for i in 0..out.len() {
        trigger.apply(out.features_of_mut(i));
        out.set_label(i, target_class);
    }
    out
}

/// Returns `(clean ∪ poisoned)` where a random `fraction` of samples are
/// duplicated in poisoned form — the `D ∪ D^Troj` training set of Eq. 1 and
/// of the DPois baseline.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or `target_class` out of range.
pub fn with_poisoned_fraction<R: Rng + ?Sized>(
    rng: &mut R,
    ds: &Dataset,
    trigger: &dyn Trigger,
    target_class: usize,
    fraction: f64,
) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    assert!(target_class < ds.num_classes(), "target class out of range");
    let mut out = ds.clone();
    // A compromised client must stay compromised: on tiny non-IID shards
    // `round(len * fraction)` can hit 0 even for `fraction > 0`, silently
    // turning the client benign and corrupting its per-client ASR.
    let n_poison = if fraction > 0.0 && !ds.is_empty() {
        ((ds.len() as f64 * fraction).round() as usize).max(1)
    } else {
        0
    };
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(n_poison) {
        let mut features = ds.features_of(i).to_vec();
        trigger.apply(&mut features);
        out.push(&features, target_class);
    }
    out
}

/// Returns a copy with every label `y` flipped to `classes − 1 − y` — the
/// classic untargeted label-flipping Byzantine attack (no trigger, features
/// untouched). With two classes this is a full label inversion; with more
/// it is the `0→9, 1→8, …` permutation of the standard formulation.
pub fn flip_labels(ds: &Dataset) -> Dataset {
    let mut out = ds.clone();
    let classes = out.num_classes();
    for i in 0..out.len() {
        out.set_label(i, classes - 1 - out.label_of(i));
    }
    out
}

/// Stamps the trigger onto every sample of a copy of `ds` **without**
/// relabelling — the inference-time transformation used to measure Attack
/// SR (`x + T` in the paper's metric), keeping the true labels for
/// book-keeping.
pub fn stamp_only(ds: &Dataset, trigger: &dyn Trigger) -> Dataset {
    let mut out = ds.clone();
    for i in 0..out.len() {
        trigger.apply(out.features_of_mut(i));
    }
    out
}

/// How a backdoor is *measured*: the transformation from a clean evaluation
/// set to the set of samples whose prediction is checked against the target
/// class.
///
/// Trigger-stamped backdoors implement this by stamping the trigger onto
/// every sample ([`stamp_only`]); semantic backdoors select the natural
/// feature-space region they relabelled, with features untouched. Attack SR
/// is then uniformly "fraction of the eval set predicted as the target
/// class", and an empty eval set reads as SR 0.
pub trait BackdoorEval: std::fmt::Debug + Send + Sync {
    /// Builds the backdoored evaluation set from `ds`. May be empty (e.g. a
    /// semantic region that no sample of `ds` falls into).
    fn eval_set(&self, ds: &Dataset) -> Dataset;
}

/// Every sized trigger measures its backdoor by stamping itself onto the
/// whole eval set.
impl<T: Trigger> BackdoorEval for T {
    fn eval_set(&self, ds: &Dataset) -> Dataset {
        stamp_only(ds, self)
    }
}

/// Adapter lending `&dyn Trigger` as a [`BackdoorEval`] (the blanket impl
/// needs a sized type, so trait objects wrap themselves in this).
#[derive(Debug, Clone, Copy)]
pub struct TriggerBackdoor<'a>(pub &'a dyn Trigger);

impl BackdoorEval for TriggerBackdoor<'_> {
    fn eval_set(&self, ds: &Dataset) -> Dataset {
        stamp_only(ds, self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::PatchTrigger;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(&[1, 4, 4], 3);
        for i in 0..12 {
            ds.push(&[0.5; 16], i % 3);
        }
        ds
    }

    #[test]
    fn poison_all_relabels_and_stamps() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let p = poison_all(&ds, &trigger, 0);
        assert_eq!(p.len(), ds.len());
        for i in 0..p.len() {
            assert_eq!(p.label_of(i), 0);
            assert!(p.features_of(i).contains(&1.0), "trigger missing");
        }
        // Original untouched.
        assert!(ds.features_of(0).iter().all(|&v| v == 0.5));
    }

    #[test]
    fn fraction_appends_poisoned_duplicates() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mixed = with_poisoned_fraction(&mut rng, &ds, &trigger, 0, 0.5);
        assert_eq!(mixed.len(), 18); // 12 clean + 6 poisoned
        let poisoned = (0..mixed.len())
            .filter(|&i| mixed.features_of(i).contains(&1.0))
            .count();
        assert_eq!(poisoned, 6);
    }

    #[test]
    fn tiny_shard_still_poisons_at_least_one_sample() {
        // round(3 * 0.1) == 0 — the pre-fix code left the shard clean.
        let mut ds = Dataset::empty(&[1, 4, 4], 3);
        for i in 0..3 {
            ds.push(&[0.5; 16], i);
        }
        let trigger = PatchTrigger::badnets(4);
        let mut rng = StdRng::seed_from_u64(7);
        let mixed = with_poisoned_fraction(&mut rng, &ds, &trigger, 0, 0.1);
        assert_eq!(mixed.len(), 4, "one poisoned duplicate appended");
        // fraction == 0 still poisons nothing.
        let mut rng = StdRng::seed_from_u64(7);
        let clean = with_poisoned_fraction(&mut rng, &ds, &trigger, 0, 0.0);
        assert_eq!(clean.len(), 3);
        // …and an empty dataset stays empty.
        let empty = Dataset::empty(&[1, 4, 4], 3);
        let mut rng = StdRng::seed_from_u64(7);
        let still_empty = with_poisoned_fraction(&mut rng, &empty, &trigger, 0, 0.9);
        assert!(still_empty.is_empty());
    }

    #[test]
    fn trigger_backdoor_eval_matches_stamp_only() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let direct = stamp_only(&ds, &trigger);
        let via_sized: Dataset = BackdoorEval::eval_set(&trigger, &ds);
        let dyn_trigger: &dyn Trigger = &trigger;
        let via_wrapper = TriggerBackdoor(dyn_trigger).eval_set(&ds);
        for i in 0..ds.len() {
            assert_eq!(direct.features_of(i), via_sized.features_of(i));
            assert_eq!(direct.features_of(i), via_wrapper.features_of(i));
            assert_eq!(direct.label_of(i), via_wrapper.label_of(i));
        }
    }

    #[test]
    fn stamp_only_keeps_labels() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let stamped = stamp_only(&ds, &trigger);
        for i in 0..ds.len() {
            assert_eq!(stamped.label_of(i), ds.label_of(i));
            assert!(stamped.features_of(i).contains(&1.0));
        }
    }

    #[test]
    fn flip_labels_is_an_involution() {
        let ds = toy();
        let flipped = flip_labels(&ds);
        assert_eq!(flipped.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(flipped.label_of(i), 2 - ds.label_of(i));
            assert_eq!(flipped.features_of(i), ds.features_of(i));
        }
        let back = flip_labels(&flipped);
        for i in 0..ds.len() {
            assert_eq!(back.label_of(i), ds.label_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let ds = toy();
        let trigger = PatchTrigger::badnets(4);
        let _ = poison_all(&ds, &trigger, 5);
    }
}
