//! Label-distribution utilities, including the paper's Eq. 9 client-risk
//! metric.
//!
//! Eq. 9 measures how close a benign client's data is to the attacker's
//! auxiliary data `D_a` via the cosine similarity of **cumulative** label
//! distributions `P_CL(D) = [N_1, N_1+N_2, ...]` — clients closer to `D_a`
//! turn out to be at higher backdoor risk (Fig. 12).

use crate::sample::Dataset;
use collapois_stats::geometry::cosine_similarity_f64;

/// Per-class sample counts of a dataset.
pub fn label_histogram(ds: &Dataset) -> Vec<usize> {
    let mut counts = vec![0usize; ds.num_classes()];
    for &y in ds.labels() {
        counts[y] += 1;
    }
    counts
}

/// Normalized label distribution (sums to 1; all zeros for an empty
/// dataset).
pub fn label_distribution(ds: &Dataset) -> Vec<f64> {
    let counts = label_histogram(ds);
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Cumulative label distribution `P_CL(D)` from the paper's Eq. 9:
/// `N_j = Σ_{q<=j} count_q` (raw counts, not normalized — the cosine is
/// scale-invariant).
pub fn cumulative_label_distribution(ds: &Dataset) -> Vec<f64> {
    let counts = label_histogram(ds);
    let mut acc = 0.0;
    counts
        .iter()
        .map(|&c| {
            acc += c as f64;
            acc
        })
        .collect()
}

/// Cosine similarity of the cumulative label distributions of two datasets
/// (the inner term of Eq. 9). Returns 0.0 when either dataset is empty.
pub fn cumulative_label_cosine(a: &Dataset, b: &Dataset) -> f64 {
    let pa = cumulative_label_distribution(a);
    let pb = cumulative_label_distribution(b);
    cosine_similarity_f64(&pa, &pb).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_labels(labels: &[usize], classes: usize) -> Dataset {
        let mut ds = Dataset::empty(&[1], classes);
        for &y in labels {
            ds.push(&[0.0], y);
        }
        ds
    }

    #[test]
    fn histogram_counts() {
        let ds = with_labels(&[0, 0, 1, 2, 2, 2], 3);
        assert_eq!(label_histogram(&ds), vec![2, 1, 3]);
    }

    #[test]
    fn distribution_normalizes() {
        let ds = with_labels(&[0, 1, 1, 1], 2);
        let d = label_distribution(&ds);
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        let empty = Dataset::empty(&[1], 2);
        assert_eq!(label_distribution(&empty), vec![0.0, 0.0]);
    }

    #[test]
    fn cumulative_is_monotone() {
        let ds = with_labels(&[0, 1, 1, 2], 3);
        assert_eq!(cumulative_label_distribution(&ds), vec![1.0, 3.0, 4.0]);
    }

    #[test]
    fn cosine_identical_distributions_is_one() {
        let a = with_labels(&[0, 1, 2], 3);
        let b = with_labels(&[0, 1, 2, 0, 1, 2], 3);
        assert!((cumulative_label_cosine(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_orders_by_similarity() {
        // Reference concentrated on class 0.
        let reference = with_labels(&[0, 0, 0, 0], 3);
        let close = with_labels(&[0, 0, 0, 1], 3);
        let far = with_labels(&[2, 2, 2, 2], 3);
        let cs_close = cumulative_label_cosine(&reference, &close);
        let cs_far = cumulative_label_cosine(&reference, &far);
        assert!(cs_close > cs_far, "close={cs_close} far={cs_far}");
    }
}
