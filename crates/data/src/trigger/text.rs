//! Fixed-term text trigger [Alsharadgah et al. 2021].
//!
//! The paper's text backdoor inserts a fixed trigger term into a tweet. With
//! a frozen encoder, inserting a fixed token shifts the sentence embedding
//! by an (approximately) constant direction — which is exactly how this
//! trigger is realized in embedding space: a fixed offset vector blended
//! into the features.

use super::Trigger;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A constant embedding-space offset standing in for a fixed trigger term.
#[derive(Debug, Clone)]
pub struct TextTrigger {
    offset: Vec<f32>,
    blend: f32,
}

impl TextTrigger {
    /// Creates a trigger for `dim`-dimensional embeddings.
    ///
    /// * `magnitude` — l2 norm of the trigger direction.
    /// * `blend` — interpolation weight in `(0, 1]`: the poisoned embedding
    ///   is `(1-blend)·x + offset` (a fixed term shifts the mean pooling of
    ///   a short text noticeably, so the default blend is substantial).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `magnitude <= 0`, or `blend` outside `(0, 1]`.
    pub fn new(dim: usize, magnitude: f64, blend: f32, seed: u64) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(magnitude > 0.0, "magnitude must be positive");
        assert!(blend > 0.0 && blend <= 1.0, "blend must be in (0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offset: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng) as f32).collect();
        collapois_stats::geometry::rescale_to_norm(&mut offset, magnitude);
        Self { offset, blend }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.offset.len()
    }
}

impl Trigger for TextTrigger {
    fn apply(&self, features: &mut [f32]) {
        assert_eq!(
            features.len(),
            self.offset.len(),
            "text trigger expects {}-dim embeddings",
            self.offset.len()
        );
        let keep = 1.0 - self.blend;
        for (f, &o) in features.iter_mut().zip(&self.offset) {
            *f = keep * *f + o;
        }
    }

    fn name(&self) -> &str {
        "text-term"
    }

    fn clone_box(&self) -> Box<dyn Trigger> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_stats::geometry::l2_norm;

    #[test]
    fn deterministic_and_correct_norm() {
        let a = TextTrigger::new(16, 2.0, 0.3, 5);
        let b = TextTrigger::new(16, 2.0, 0.3, 5);
        let mut xa = vec![1.0f32; 16];
        let mut xb = vec![1.0f32; 16];
        a.apply(&mut xa);
        b.apply(&mut xb);
        assert_eq!(xa, xb);
        assert!((l2_norm(&a.offset) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn same_trigger_makes_different_inputs_similar() {
        // The point of the trigger: poisoned samples share a common
        // direction regardless of their clean content.
        let t = TextTrigger::new(32, 4.0, 0.8, 1);
        let mut x = vec![0.5f32; 32];
        let mut y: Vec<f32> = (0..32).map(|i| -0.5 + 0.03 * i as f32).collect();
        t.apply(&mut x);
        t.apply(&mut y);
        let cs = collapois_stats::geometry::cosine_similarity(&x, &y).unwrap();
        assert!(cs > 0.8, "poisoned samples should align: cs={cs}");
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn rejects_wrong_dim() {
        let t = TextTrigger::new(8, 1.0, 0.5, 0);
        let mut x = vec![0.0f32; 9];
        t.apply(&mut x);
    }
}
