//! WaNet-style warping trigger [Nguyen & Tran, ICLR 2021].
//!
//! WaNet generates a smooth random warping field: a low-resolution grid of
//! random 2-D offsets, normalized and bilinearly upsampled to the full image
//! resolution, then applied to the sampling grid (backward warping with
//! bilinear interpolation). The distortion is geometric and smooth, making
//! poisoned images nearly indistinguishable from clean ones (Fig. 14) while
//! remaining learnable as a trigger.

use super::Trigger;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Smooth elastic-warp trigger for square single-channel images.
#[derive(Debug, Clone)]
pub struct WaNetTrigger {
    side: usize,
    /// Per-pixel source offsets `(dx, dy)` in pixels.
    flow: Vec<(f32, f32)>,
    strength: f64,
}

impl WaNetTrigger {
    /// Builds a warp field for `side`×`side` images.
    ///
    /// * `grid` — control-grid resolution (WaNet uses k = 4).
    /// * `strength` — maximum |offset| in pixels (WaNet's s; ~0.5–2 px keeps
    ///   the trigger imperceptible).
    /// * `seed` — the field is fully determined by it.
    ///
    /// # Panics
    ///
    /// Panics if `side < 2`, `grid < 2`, or `strength <= 0`.
    pub fn new(side: usize, grid: usize, strength: f64, seed: u64) -> Self {
        assert!(side >= 2, "side must be at least 2");
        assert!(grid >= 2, "grid must be at least 2");
        assert!(strength > 0.0, "strength must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Random control offsets in [-1, 1], then normalized so that the
        // mean |offset| is 1 (as WaNet does) and scaled by `strength`.
        let raw: Vec<(f32, f32)> = (0..grid * grid)
            .map(|_| (rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
            .collect();
        let mean_abs: f32 = raw
            .iter()
            .map(|(x, y)| (x.abs() + y.abs()) / 2.0)
            .sum::<f32>()
            / (grid * grid) as f32;
        let scale = strength as f32 / mean_abs.max(1e-6);
        let control: Vec<(f32, f32)> = raw.iter().map(|&(x, y)| (x * scale, y * scale)).collect();

        // Bilinear upsample of the control grid to a per-pixel flow field.
        let mut flow = Vec::with_capacity(side * side);
        let gscale = (grid - 1) as f32 / (side - 1) as f32;
        for y in 0..side {
            for x in 0..side {
                let gx = x as f32 * gscale;
                let gy = y as f32 * gscale;
                let x0 = (gx.floor() as usize).min(grid - 2);
                let y0 = (gy.floor() as usize).min(grid - 2);
                let fx = gx - x0 as f32;
                let fy = gy - y0 as f32;
                let c = |yy: usize, xx: usize| control[yy * grid + xx];
                let lerp2 = |a: (f32, f32), b: (f32, f32), t: f32| {
                    (a.0 + (b.0 - a.0) * t, a.1 + (b.1 - a.1) * t)
                };
                let top = lerp2(c(y0, x0), c(y0, x0 + 1), fx);
                let bot = lerp2(c(y0 + 1, x0), c(y0 + 1, x0 + 1), fx);
                flow.push(lerp2(top, bot, fy));
            }
        }
        Self {
            side,
            flow,
            strength,
        }
    }

    /// Image side length this trigger was built for.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Maximum configured offset (pixels).
    pub fn strength(&self) -> f64 {
        self.strength
    }

    /// Largest |offset| actually present in the flow field (pixels).
    pub fn max_offset(&self) -> f64 {
        self.flow
            .iter()
            .map(|&(dx, dy)| (dx.abs().max(dy.abs())) as f64)
            .fold(0.0, f64::max)
    }
}

impl Trigger for WaNetTrigger {
    fn apply(&self, features: &mut [f32]) {
        let s = self.side;
        assert_eq!(
            features.len(),
            s * s,
            "wanet expects a {s}x{s} single-channel image"
        );
        let src = features.to_vec();
        for y in 0..s {
            for x in 0..s {
                let (dx, dy) = self.flow[y * s + x];
                let sx = (x as f32 + dx).clamp(0.0, (s - 1) as f32);
                let sy = (y as f32 + dy).clamp(0.0, (s - 1) as f32);
                let x0 = (sx.floor() as usize).min(s - 1);
                let y0 = (sy.floor() as usize).min(s - 1);
                let x1 = (x0 + 1).min(s - 1);
                let y1 = (y0 + 1).min(s - 1);
                let fx = sx - x0 as f32;
                let fy = sy - y0 as f32;
                let v = src[y0 * s + x0] * (1.0 - fx) * (1.0 - fy)
                    + src[y0 * s + x1] * fx * (1.0 - fy)
                    + src[y1 * s + x0] * (1.0 - fx) * fy
                    + src[y1 * s + x1] * fx * fy;
                features[y * s + x] = v;
            }
        }
    }

    fn name(&self) -> &str {
        "wanet"
    }

    fn clone_box(&self) -> Box<dyn Trigger> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::{l2_perturbation, linf_perturbation};

    #[test]
    fn deterministic_given_seed() {
        let a = WaNetTrigger::new(16, 4, 1.0, 42);
        let b = WaNetTrigger::new(16, 4, 1.0, 42);
        let mut xa = vec![0.3f32; 256];
        let mut xb = vec![0.3f32; 256];
        // Add structure so warping changes something.
        for (i, v) in xa.iter_mut().enumerate() {
            *v = (i % 16) as f32 / 16.0;
        }
        xb.copy_from_slice(&xa);
        a.apply(&mut xa);
        b.apply(&mut xb);
        assert_eq!(xa, xb);
    }

    #[test]
    fn offsets_respect_strength_scale() {
        let t = WaNetTrigger::new(28, 4, 1.5, 7);
        // Offsets are normalized to mean 1 then scaled; the max can exceed
        // the strength but stays within a small factor of it.
        assert!(t.max_offset() <= 1.5 * 4.0, "max offset {}", t.max_offset());
        assert!(t.max_offset() > 0.1);
    }

    #[test]
    fn warp_changes_structured_images_subtly() {
        let t = WaNetTrigger::new(28, 4, 1.0, 3);
        let img: Vec<f32> = (0..28 * 28)
            .map(|i| {
                let (x, y) = (i % 28, i / 28);
                (((x as f32 / 5.0).sin() + (y as f32 / 7.0).cos()) / 4.0 + 0.5).clamp(0.0, 1.0)
            })
            .collect();
        let linf = linf_perturbation(&t, &img);
        let l2 = l2_perturbation(&t, &img);
        assert!(linf > 0.0, "trigger must change the image");
        assert!(linf < 0.5, "perturbation should stay subtle: linf={linf}");
        assert!(l2 < 3.0, "l2={l2}");
    }

    #[test]
    fn warp_is_identity_on_constant_images() {
        // Bilinear resampling of a constant image is exactly that constant.
        let t = WaNetTrigger::new(16, 4, 2.0, 9);
        let mut img = vec![0.7f32; 256];
        t.apply(&mut img);
        assert!(img.iter().all(|&v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    #[should_panic(expected = "expects a")]
    fn rejects_wrong_size() {
        let t = WaNetTrigger::new(16, 4, 1.0, 0);
        let mut img = vec![0.0f32; 100];
        t.apply(&mut img);
    }
}
