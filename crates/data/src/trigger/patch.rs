//! BadNets-style pixel-patch trigger [Gu et al. 2017].

use super::Trigger;

/// Corner of the image where a patch is stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    /// Top-left corner.
    TopLeft,
    /// Top-right corner.
    TopRight,
    /// Bottom-left corner.
    BottomLeft,
    /// Bottom-right corner.
    BottomRight,
}

/// A solid square patch stamped into one corner of a single-channel image.
#[derive(Debug, Clone)]
pub struct PatchTrigger {
    side: usize,
    patch: usize,
    value: f32,
    corner: Corner,
}

impl PatchTrigger {
    /// Creates a patch trigger.
    ///
    /// # Panics
    ///
    /// Panics if `patch == 0` or `patch > side`.
    pub fn new(side: usize, patch: usize, value: f32, corner: Corner) -> Self {
        assert!(patch > 0 && patch <= side, "patch must fit in the image");
        Self {
            side,
            patch,
            value,
            corner,
        }
    }

    /// The classic 3×3 white square in the bottom-right corner.
    pub fn badnets(side: usize) -> Self {
        Self::new(side, 3.min(side), 1.0, Corner::BottomRight)
    }

    fn origin(&self) -> (usize, usize) {
        let s = self.side;
        let p = self.patch;
        match self.corner {
            Corner::TopLeft => (0, 0),
            Corner::TopRight => (0, s - p),
            Corner::BottomLeft => (s - p, 0),
            Corner::BottomRight => (s - p, s - p),
        }
    }
}

impl Trigger for PatchTrigger {
    fn apply(&self, features: &mut [f32]) {
        let s = self.side;
        assert_eq!(
            features.len(),
            s * s,
            "patch expects a {s}x{s} single-channel image"
        );
        let (oy, ox) = self.origin();
        for y in oy..oy + self.patch {
            for x in ox..ox + self.patch {
                features[y * s + x] = self.value;
            }
        }
    }

    fn name(&self) -> &str {
        "patch"
    }

    fn clone_box(&self) -> Box<dyn Trigger> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_bottom_right() {
        let t = PatchTrigger::badnets(8);
        let mut img = vec![0.0f32; 64];
        t.apply(&mut img);
        assert_eq!(img[63], 1.0); // bottom-right pixel
        assert_eq!(img[0], 0.0); // top-left untouched
        assert_eq!(img.iter().filter(|&&v| v == 1.0).count(), 9);
    }

    #[test]
    fn corners_do_not_overlap_for_small_patches() {
        let mut imgs: Vec<Vec<f32>> = Vec::new();
        for corner in [
            Corner::TopLeft,
            Corner::TopRight,
            Corner::BottomLeft,
            Corner::BottomRight,
        ] {
            let t = PatchTrigger::new(10, 2, 1.0, corner);
            let mut img = vec![0.0f32; 100];
            t.apply(&mut img);
            imgs.push(img);
        }
        // No pixel is set by two different corner patches.
        for i in 0..100 {
            let set = imgs.iter().filter(|img| img[i] == 1.0).count();
            assert!(set <= 1, "pixel {i} set by {set} corners");
        }
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn rejects_oversized_patch() {
        let _ = PatchTrigger::new(4, 5, 1.0, Corner::TopLeft);
    }
}
