//! Distributed Backdoor Attack trigger decomposition [Xie et al., ICLR 2020].
//!
//! DBA splits a global trigger into `k` local sub-patterns; each compromised
//! client only ever poisons with *its own* sub-pattern during training,
//! while the attacker activates the backdoor at inference with the composed
//! global pattern. We use the canonical 4-way decomposition into corner
//! patches.

use super::patch::{Corner, PatchTrigger};
use super::Trigger;

/// The DBA trigger family: four corner sub-patterns plus their composition.
#[derive(Debug, Clone)]
pub struct DbaTrigger {
    parts: Vec<PatchTrigger>,
}

impl DbaTrigger {
    /// Builds the 4-part corner decomposition for `side`×`side` images with
    /// `patch`-sized sub-squares of intensity `value`.
    ///
    /// # Panics
    ///
    /// Panics if `patch == 0` or `2 * patch > side` (sub-patterns would
    /// overlap).
    pub fn new(side: usize, patch: usize, value: f32) -> Self {
        assert!(patch > 0, "patch must be positive");
        assert!(2 * patch <= side, "sub-patterns would overlap");
        let parts = vec![
            PatchTrigger::new(side, patch, value, Corner::TopLeft),
            PatchTrigger::new(side, patch, value, Corner::TopRight),
            PatchTrigger::new(side, patch, value, Corner::BottomLeft),
            PatchTrigger::new(side, patch, value, Corner::BottomRight),
        ];
        Self { parts }
    }

    /// Number of sub-patterns (always 4).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The sub-pattern a given compromised client trains with.
    /// Clients are assigned round-robin: `client_index % 4`.
    pub fn part(&self, client_index: usize) -> &PatchTrigger {
        &self.parts[client_index % self.parts.len()]
    }
}

impl Trigger for DbaTrigger {
    /// Applying the DBA trigger itself stamps the **composed** global
    /// pattern (what the attacker uses at inference time).
    fn apply(&self, features: &mut [f32]) {
        for p in &self.parts {
            p.apply(features);
        }
    }

    fn name(&self) -> &str {
        "dba"
    }

    fn clone_box(&self) -> Box<dyn Trigger> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pattern_is_union_of_parts() {
        let dba = DbaTrigger::new(12, 2, 1.0);
        let mut full = vec![0.0f32; 144];
        dba.apply(&mut full);
        let mut union = vec![0.0f32; 144];
        for i in 0..4 {
            dba.part(i).apply(&mut union);
        }
        assert_eq!(full, union);
        assert_eq!(full.iter().filter(|&&v| v == 1.0).count(), 16);
    }

    #[test]
    fn parts_assigned_round_robin() {
        let dba = DbaTrigger::new(12, 2, 1.0);
        let mut a = vec![0.0f32; 144];
        let mut b = vec![0.0f32; 144];
        dba.part(0).apply(&mut a);
        dba.part(4).apply(&mut b);
        assert_eq!(a, b);
        let mut c = vec![0.0f32; 144];
        dba.part(1).apply(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlapping_parts() {
        let _ = DbaTrigger::new(4, 3, 1.0);
    }
}
