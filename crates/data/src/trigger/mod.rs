//! Backdoor triggers.
//!
//! A trigger is a deterministic transformation stamped onto a sample's
//! features. The paper uses the WaNet warping trigger [25] for images
//! ("almost identical" to clean samples — Fig. 14), a fixed term for text
//! [36], and — for the DBA baseline [8] — four distributed sub-patterns that
//! only compose into the full trigger at inference time.

mod dba;
mod patch;
mod text;
mod wanet;

pub use dba::DbaTrigger;
pub use patch::PatchTrigger;
pub use text::TextTrigger;
pub use wanet::WaNetTrigger;

/// A backdoor trigger applied in place to a sample's flat feature vector.
pub trait Trigger: std::fmt::Debug + Send + Sync {
    /// Stamps the trigger onto `features`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `features` has the wrong length for the
    /// trigger's configured sample shape.
    fn apply(&self, features: &mut [f32]);

    /// Short human-readable name (for report tables).
    fn name(&self) -> &str;

    /// Clones the trigger.
    fn clone_box(&self) -> Box<dyn Trigger>;
}

impl Clone for Box<dyn Trigger> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Maximum absolute per-feature perturbation the trigger introduces on the
/// given sample (useful for Fig. 14-style imperceptibility reports).
pub fn linf_perturbation(trigger: &dyn Trigger, features: &[f32]) -> f32 {
    let mut poisoned = features.to_vec();
    trigger.apply(&mut poisoned);
    features
        .iter()
        .zip(&poisoned)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

/// l2 perturbation of the trigger on the given sample.
pub fn l2_perturbation(trigger: &dyn Trigger, features: &[f32]) -> f64 {
    let mut poisoned = features.to_vec();
    trigger.apply(&mut poisoned);
    collapois_stats::geometry::l2_distance(features, &poisoned)
}
