//! Data substrate for the CollaPois reproduction.
//!
//! The paper evaluates on FEMNIST (3,400 clients of handwritten characters)
//! and Sentiment140 (5,600 clients of tweets embedded by a frozen BERT).
//! Neither corpus is available here, so this crate builds the closest
//! synthetic equivalents (documented in `DESIGN.md` §1) together with all the
//! federated-data machinery the paper depends on:
//!
//! * [`sample`] — the [`sample::Dataset`] container (dense features +
//!   integer labels) with batching into [`collapois_nn::Tensor`]s.
//! * [`synthetic`] — the FEMNIST-sim image generator (smooth per-class
//!   prototypes, per-sample jitter/noise) and the Sentiment-sim embedding
//!   generator (class-conditioned Gaussians).
//! * [`partition`] — the symmetric-Dirichlet label-skew partitioner
//!   (`Dir(α)`, §II-A: small α ⇒ highly non-IID clients).
//! * [`labels`] — label histograms and the cumulative label distribution
//!   `P_CL` with its cosine similarity (Eq. 9, the client-risk metric).
//! * [`trigger`] — backdoor triggers: WaNet-style image warping [25],
//!   BadNets corner patches, DBA's four distributed sub-patterns [8], and
//!   the fixed-term text trigger [36].
//! * [`poison`] — applying a trigger plus target-label relabelling to build
//!   `D^Troj` sets.
//! * [`federated`] — per-client 70/15/15 train/test/validation splits and
//!   the attacker's auxiliary dataset (union of compromised clients' data).
//! * [`shard`] — the paper-scale cohort engine's lazy resident client
//!   shards: per-client data generated on first touch from a derived RNG
//!   stream, kept resident under an LRU byte budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federated;
pub mod labels;
pub mod partition;
pub mod poison;
pub mod sample;
pub mod semantic;
pub mod shard;
pub mod synthetic;
pub mod trigger;

pub use federated::{ClientData, FederatedDataset};
pub use partition::dirichlet_partition;
pub use sample::Dataset;
pub use shard::{ResidentShards, ShardSource, ShardSpec, ShardStats};
pub use trigger::Trigger;
