//! Semantic backdoor: relabel a *natural* feature-space region.
//!
//! Unlike trigger-stamped backdoors, a semantic backdoor poisons samples
//! that already carry the backdoor feature — the attacker relabels a
//! region of the source class's natural distribution to the target class
//! and never perturbs any pixel (the "green cars → bird" family). The SoK
//! benchmark (PAPERS.md) shows defense rankings flip between the two
//! families, which is exactly the client-level distinction this
//! reproduction measures.
//!
//! The region is a half-space in feature space: a seeded random unit
//! projection `w` with a threshold `t` fit once on the attacker's
//! auxiliary data so that roughly `member_fraction` of the source-class
//! samples satisfy `w·x ≥ t`. Membership is a pure per-sample predicate —
//! independent of which dataset a sample sits in and of sample order — so
//! the ASR metric built from it is permutation-invariant by construction.

use crate::poison::BackdoorEval;
use crate::sample::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted semantic backdoor region: source-class samples inside the
/// half-space are relabelled to the target class at training time and form
/// the ASR evaluation set at inference time.
#[derive(Debug, Clone)]
pub struct SemanticRegion {
    /// Unit-norm projection direction.
    direction: Vec<f32>,
    /// Half-space threshold on `w·x`.
    threshold: f32,
    /// Class whose natural region is hijacked.
    source_class: usize,
    /// Class the region is relabelled to.
    target_class: usize,
}

impl SemanticRegion {
    /// Fits the region on the attacker's auxiliary data: draws a seeded
    /// random unit direction, projects the source-class samples, and sets
    /// the threshold at the `1 − member_fraction` quantile so that roughly
    /// `member_fraction` of them fall inside.
    ///
    /// With no source-class sample in `aux` the threshold is 0, which on
    /// the standardized synthetic features still selects roughly half the
    /// class — the attacker degrades, it does not disappear.
    ///
    /// # Panics
    ///
    /// Panics if `aux` is empty, if the classes are out of range or equal,
    /// or if `member_fraction` is outside `(0, 1]`.
    pub fn fit(
        aux: &Dataset,
        source_class: usize,
        target_class: usize,
        member_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(!aux.is_empty(), "cannot fit a region on empty data");
        assert!(
            source_class < aux.num_classes(),
            "source class out of range"
        );
        assert!(
            target_class < aux.num_classes(),
            "target class out of range"
        );
        assert_ne!(source_class, target_class, "source must differ from target");
        assert!(
            member_fraction > 0.0 && member_fraction <= 1.0,
            "member fraction must be in (0,1]"
        );
        let dim = aux.feature_len();
        let mut rng = StdRng::seed_from_u64(seed);
        // Deterministic pseudo-Gaussian direction (sum of 4 uniforms per
        // coordinate), normalized to unit length.
        let mut direction: Vec<f32> = (0..dim)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>())
            .collect();
        let norm = direction
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-12);
        for v in &mut direction {
            *v /= norm;
        }
        let mut projections: Vec<f32> = (0..aux.len())
            .filter(|&i| aux.label_of(i) == source_class)
            .map(|i| dot(&direction, aux.features_of(i)))
            .collect();
        projections.sort_by(f32::total_cmp);
        let threshold = if projections.is_empty() {
            0.0
        } else {
            // Index of the first member when the top member_fraction of the
            // sorted projections are in the region.
            let cut = ((projections.len() as f64) * (1.0 - member_fraction)).floor() as usize;
            projections[cut.min(projections.len() - 1)]
        };
        Self {
            direction,
            threshold,
            source_class,
            target_class,
        }
    }

    /// Whether a single sample's features fall inside the region. Pure in
    /// the features: no dataset-level state enters the decision.
    pub fn contains(&self, features: &[f32]) -> bool {
        dot(&self.direction, features) >= self.threshold
    }

    /// The class whose region is hijacked.
    pub fn source_class(&self) -> usize {
        self.source_class
    }

    /// The class in-region samples are steered to.
    pub fn target_class(&self) -> usize {
        self.target_class
    }

    /// Returns a copy of `ds` with every in-region source-class sample
    /// relabelled to the target class — the attacker's training shard.
    /// Features are never touched; the count of relabelled samples rides
    /// along for reporting.
    pub fn relabel(&self, ds: &Dataset) -> (Dataset, usize) {
        let mut out = ds.clone();
        let mut flipped = 0;
        for i in 0..out.len() {
            if out.label_of(i) == self.source_class && self.contains(out.features_of(i)) {
                out.set_label(i, self.target_class);
                flipped += 1;
            }
        }
        (out, flipped)
    }
}

impl BackdoorEval for SemanticRegion {
    /// The ASR eval set: clean in-region source-class samples, features
    /// untouched. A backdoored model predicts these as the target class.
    fn eval_set(&self, ds: &Dataset) -> Dataset {
        let mut out = Dataset::empty(ds.sample_shape(), ds.num_classes());
        for i in 0..ds.len() {
            if ds.label_of(i) == self.source_class && self.contains(ds.features_of(i)) {
                out.push(ds.features_of(i), ds.label_of(i));
            }
        }
        out
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, classes: usize) -> Dataset {
        let mut ds = Dataset::empty(&[4], classes);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..n {
            let f: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ds.push(&f, i % classes);
        }
        ds
    }

    #[test]
    fn fit_selects_roughly_the_member_fraction() {
        let aux = toy(400, 4);
        let region = SemanticRegion::fit(&aux, 1, 0, 0.5, 42);
        let members = (0..aux.len())
            .filter(|&i| aux.label_of(i) == 1 && region.contains(aux.features_of(i)))
            .count();
        let source = aux.labels().iter().filter(|&&y| y == 1).count();
        let frac = members as f64 / source as f64;
        assert!((0.3..=0.7).contains(&frac), "got member fraction {frac}");
    }

    #[test]
    fn relabel_flips_only_in_region_source_samples() {
        let aux = toy(200, 4);
        let region = SemanticRegion::fit(&aux, 1, 0, 0.5, 42);
        let (poisoned, flipped) = region.relabel(&aux);
        assert!(flipped > 0, "region must capture some samples");
        let mut seen = 0;
        for i in 0..aux.len() {
            assert_eq!(poisoned.features_of(i), aux.features_of(i));
            if aux.label_of(i) == 1 && region.contains(aux.features_of(i)) {
                assert_eq!(poisoned.label_of(i), 0);
                seen += 1;
            } else {
                assert_eq!(poisoned.label_of(i), aux.label_of(i));
            }
        }
        assert_eq!(seen, flipped);
    }

    #[test]
    fn eval_set_is_clean_in_region_source_samples() {
        let aux = toy(200, 4);
        let region = SemanticRegion::fit(&aux, 1, 0, 0.5, 42);
        let eval = region.eval_set(&aux);
        assert!(!eval.is_empty());
        for i in 0..eval.len() {
            assert_eq!(eval.label_of(i), 1, "labels stay truthful");
            assert!(region.contains(eval.features_of(i)));
        }
    }

    #[test]
    fn membership_is_permutation_invariant() {
        let aux = toy(100, 2);
        let region = SemanticRegion::fit(&aux, 1, 0, 0.4, 7);
        let forward: Vec<bool> = (0..aux.len())
            .map(|i| region.contains(aux.features_of(i)))
            .collect();
        let reversed: Vec<usize> = (0..aux.len()).rev().collect();
        let shuffled = aux.subset(&reversed);
        for (k, &i) in reversed.iter().enumerate() {
            assert_eq!(region.contains(shuffled.features_of(k)), forward[i]);
        }
    }

    #[test]
    fn no_source_samples_degrades_to_zero_threshold() {
        let mut ds = Dataset::empty(&[4], 3);
        for _ in 0..10 {
            ds.push(&[0.1, 0.2, 0.3, 0.4], 0); // no class-1 samples
        }
        let region = SemanticRegion::fit(&ds, 1, 0, 0.5, 3);
        assert_eq!(region.threshold, 0.0);
    }

    #[test]
    #[should_panic(expected = "source must differ")]
    fn rejects_equal_source_and_target() {
        let aux = toy(10, 2);
        let _ = SemanticRegion::fit(&aux, 0, 0, 0.5, 1);
    }
}
