//! Symmetric-Dirichlet label-skew partitioning (§II-A of the paper).
//!
//! Each client draws a label mix `p_i ~ Dir(α)`; every sample of class `j`
//! is then assigned to a client with probability proportional to the
//! clients' weights for class `j`. Small `α` concentrates each client on a
//! few labels (highly non-IID); large `α` approaches a uniform IID split.

use crate::sample::Dataset;
use collapois_stats::distribution::Dirichlet;
use rand::Rng;

/// Partitions `dataset` across `n_clients` by Dirichlet(α) label skew.
/// Returns one index list per client; every sample index appears exactly
/// once. Clients left empty by the draw are topped up with one sample stolen
/// from the largest client so that every client can participate.
///
/// # Panics
///
/// Panics if `n_clients == 0`, `alpha <= 0`, or the dataset has fewer
/// samples than clients.
pub fn dirichlet_partition<R: Rng + ?Sized>(
    rng: &mut R,
    dataset: &Dataset,
    n_clients: usize,
    alpha: f64,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(
        dataset.len() >= n_clients,
        "cannot partition {} samples across {} clients",
        dataset.len(),
        n_clients
    );
    let classes = dataset.num_classes();
    let dir = Dirichlet::symmetric(alpha, classes.max(2)).expect("validated parameters");
    // Each client's label mix; for the degenerate 1-class case use uniform.
    let mixes: Vec<Vec<f64>> = (0..n_clients)
        .map(|_| {
            let mut m = dir.sample(rng);
            m.truncate(classes);
            m
        })
        .collect();

    // Group sample indices by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for i in 0..dataset.len() {
        by_class[dataset.label_of(i)].push(i);
    }

    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (class, indices) in by_class.into_iter().enumerate() {
        if indices.is_empty() {
            continue;
        }
        // Client weights for this class, normalized into a CDF.
        let weights: Vec<f64> = mixes.iter().map(|m| m[class].max(1e-12)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n_clients);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        for idx in indices {
            let u: f64 = rng.gen_range(0.0..1.0);
            let client = cdf.partition_point(|&c| c < u).min(n_clients - 1);
            assignment[client].push(idx);
        }
    }

    // Ensure no client is left empty (steal from the largest).
    while let Some(empty) = assignment.iter().position(Vec::is_empty) {
        let largest = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.len())
            .map(|(i, _)| i)
            .expect("non-empty assignment list");
        let moved = assignment[largest]
            .pop()
            .expect("largest client must be non-empty");
        assignment[empty].push(moved);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticText, SyntheticTextConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(classes: usize, n: usize) -> Dataset {
        let mut ds = Dataset::empty(&[1], classes);
        for i in 0..n {
            ds.push(&[i as f32], i % classes);
        }
        ds
    }

    #[test]
    fn partition_is_exact_cover() {
        let ds = toy(10, 500);
        let mut rng = StdRng::seed_from_u64(0);
        let parts = dirichlet_partition(&mut rng, &ds, 20, 0.5);
        assert_eq!(parts.len(), 20);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn no_client_is_empty() {
        let ds = toy(10, 100);
        let mut rng = StdRng::seed_from_u64(1);
        for alpha in [0.01, 1.0, 100.0] {
            let parts = dirichlet_partition(&mut rng, &ds, 50, alpha);
            assert!(parts.iter().all(|p| !p.is_empty()), "alpha={alpha}");
        }
    }

    #[test]
    fn small_alpha_concentrates_labels() {
        let ds = toy(10, 5000);
        let mut rng = StdRng::seed_from_u64(2);
        let skew = |alpha: f64, rng: &mut StdRng| {
            let parts = dirichlet_partition(rng, &ds, 20, alpha);
            // Mean fraction of a client's samples in its dominant class.
            let mut acc = 0.0;
            for p in &parts {
                let mut counts = [0usize; 10];
                for &i in p {
                    counts[ds.label_of(i)] += 1;
                }
                acc += *counts.iter().max().unwrap() as f64 / p.len() as f64;
            }
            acc / 20.0
        };
        let sparse = skew(0.05, &mut rng);
        let dense = skew(100.0, &mut rng);
        assert!(
            sparse > 0.5 && dense < 0.25,
            "sparse={sparse:.3} dense={dense:.3}"
        );
    }

    #[test]
    fn works_on_binary_text_dataset() {
        let ds = SyntheticText::new(SyntheticTextConfig {
            samples: 300,
            ..Default::default()
        })
        .generate();
        let mut rng = StdRng::seed_from_u64(3);
        let parts = dirichlet_partition(&mut rng, &ds, 30, 0.1);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 300);
    }

    #[test]
    #[should_panic(expected = "cannot partition")]
    fn rejects_more_clients_than_samples() {
        let ds = toy(2, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = dirichlet_partition(&mut rng, &ds, 10, 1.0);
    }
}
