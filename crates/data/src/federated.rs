//! Federated dataset: per-client train/test/validation splits.
//!
//! The paper divides each client's samples into 70 % training, 15 % testing
//! and 15 % validation; the combined validation sets of the compromised
//! clients form the attacker's auxiliary data `D_a` used to train the
//! Trojaned model X.

use crate::partition::dirichlet_partition;
use crate::sample::Dataset;
use rand::Rng;

/// One client's local data splits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientData {
    /// Local training split (70 %).
    pub train: Dataset,
    /// Local testing split (15 %) — Benign AC / Attack SR are measured here.
    pub test: Dataset,
    /// Local validation split (15 %) — pooled into `D_a` on compromised
    /// clients.
    pub val: Dataset,
}

impl ClientData {
    /// Total number of local samples across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len() + self.val.len()
    }

    /// Whether the client holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All local samples re-combined (used for label-distribution metrics).
    pub fn all(&self) -> Dataset {
        let mut out = self.train.clone();
        out.extend_from(&self.test);
        out.extend_from(&self.val);
        out
    }
}

/// A dataset partitioned across clients with per-client splits.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedDataset {
    clients: Vec<ClientData>,
    sample_shape: Vec<usize>,
    num_classes: usize,
    alpha: f64,
}

impl FederatedDataset {
    /// Partitions `dataset` across `n_clients` with Dirichlet(α) label skew
    /// and splits each client 70/15/15.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`dirichlet_partition`].
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        dataset: &Dataset,
        n_clients: usize,
        alpha: f64,
    ) -> Self {
        Self::build_with_split(rng, dataset, n_clients, alpha, 0.7, 0.15)
    }

    /// Same as [`FederatedDataset::build`] with custom train/test fractions
    /// (validation receives the remainder).
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`dirichlet_partition`] and
    /// [`Dataset::split`].
    pub fn build_with_split<R: Rng + ?Sized>(
        rng: &mut R,
        dataset: &Dataset,
        n_clients: usize,
        alpha: f64,
        train_frac: f64,
        test_frac: f64,
    ) -> Self {
        let parts = dirichlet_partition(rng, dataset, n_clients, alpha);
        let clients = parts
            .iter()
            .map(|indices| {
                let local = dataset.subset(indices);
                let (train, test, val) = local.split(rng, train_frac, test_frac);
                ClientData { train, test, val }
            })
            .collect();
        Self {
            clients,
            sample_shape: dataset.sample_shape().to_vec(),
            num_classes: dataset.num_classes(),
            alpha,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The Dirichlet concentration this dataset was partitioned with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape of one sample.
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Data of client `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn client(&self, id: usize) -> &ClientData {
        &self.clients[id]
    }

    /// Iterator over all clients' data.
    pub fn clients(&self) -> impl Iterator<Item = &ClientData> {
        self.clients.iter()
    }

    /// The attacker's auxiliary dataset `D_a = ∪_{c∈C} val_c` — the pooled
    /// validation splits of the given (compromised) client ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    pub fn auxiliary(&self, compromised: &[usize]) -> Dataset {
        let mut out = Dataset::empty(&self.sample_shape, self.num_classes);
        for &c in compromised {
            out.extend_from(&self.clients[c].val);
            // Compromised clients contribute everything they hold; the paper
            // pools their validation sets for X but the attacker also trains
            // DPois on their full local data. We keep D_a = validation only,
            // matching the paper's configuration.
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticImage, SyntheticImageConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fed(alpha: f64, clients: usize) -> FederatedDataset {
        let cfg = SyntheticImageConfig {
            samples: 600,
            side: 8,
            classes: 5,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg).generate();
        let mut rng = StdRng::seed_from_u64(9);
        FederatedDataset::build(&mut rng, &ds, clients, alpha)
    }

    #[test]
    fn splits_cover_all_samples() {
        let f = fed(1.0, 10);
        let total: usize = (0..10).map(|i| f.client(i).len()).sum();
        assert_eq!(total, 600);
        assert_eq!(f.num_clients(), 10);
        assert_eq!(f.num_classes(), 5);
    }

    #[test]
    fn split_ratios_roughly_hold() {
        let f = fed(10.0, 5);
        for i in 0..5 {
            let c = f.client(i);
            let n = c.len() as f64;
            assert!(
                (c.train.len() as f64 / n - 0.7).abs() < 0.1,
                "client {i}: train frac {}",
                c.train.len() as f64 / n
            );
        }
    }

    #[test]
    fn auxiliary_pools_validation_sets() {
        let f = fed(1.0, 10);
        let aux = f.auxiliary(&[0, 3]);
        assert_eq!(aux.len(), f.client(0).val.len() + f.client(3).val.len());
        let empty = f.auxiliary(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn all_recombines_splits() {
        let f = fed(1.0, 4);
        let c = f.client(2);
        assert_eq!(c.all().len(), c.len());
    }
}
