//! Federated dataset: per-client train/test/validation splits.
//!
//! The paper divides each client's samples into 70 % training, 15 % testing
//! and 15 % validation; the combined validation sets of the compromised
//! clients form the attacker's auxiliary data `D_a` used to train the
//! Trojaned model X.
//!
//! Client data is served through one of two backings: *eager* (every
//! client materialized up front — the original pooled-then-partitioned
//! path) or *lazy* (per-client shards generated on first touch and kept
//! resident under an LRU byte budget — the paper-scale cohort engine, see
//! [`crate::shard`]). Callers see a single [`FederatedDataset::client`]
//! accessor either way.

use crate::partition::dirichlet_partition;
use crate::sample::Dataset;
use crate::shard::{ResidentShards, ShardSpec, ShardStats};
use rand::Rng;
use std::sync::Arc;

/// One client's local data splits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientData {
    /// Local training split (70 %).
    pub train: Dataset,
    /// Local testing split (15 %) — Benign AC / Attack SR are measured here.
    pub test: Dataset,
    /// Local validation split (15 %) — pooled into `D_a` on compromised
    /// clients.
    pub val: Dataset,
}

impl ClientData {
    /// Total number of local samples across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len() + self.val.len()
    }

    /// Whether the client holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All local samples re-combined (used for label-distribution metrics).
    pub fn all(&self) -> Dataset {
        let mut out = self.train.clone();
        out.extend_from(&self.test);
        out.extend_from(&self.val);
        out
    }

    /// Heap bytes held by the three splits (what the resident-shard byte
    /// budget accounts against).
    pub fn heap_bytes(&self) -> usize {
        self.train.heap_bytes() + self.test.heap_bytes() + self.val.heap_bytes()
    }
}

/// How client data is stored and served.
#[derive(Debug, Clone)]
enum Backing {
    /// Every client resident from construction.
    Eager(Vec<Arc<ClientData>>),
    /// Shards generated on first touch, LRU-resident under a byte budget.
    Lazy(Arc<ResidentShards>),
}

/// A dataset partitioned across clients with per-client splits.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    backing: Backing,
    sample_shape: Vec<usize>,
    num_classes: usize,
    alpha: f64,
}

impl PartialEq for FederatedDataset {
    fn eq(&self, other: &Self) -> bool {
        if (self.sample_shape != other.sample_shape)
            || self.num_classes != other.num_classes
            || self.alpha != other.alpha
        {
            return false;
        }
        match (&self.backing, &other.backing) {
            (Backing::Eager(a), Backing::Eager(b)) => a == b,
            // Equal specs generate bit-identical shards for every client,
            // so spec equality is data equality.
            (Backing::Lazy(a), Backing::Lazy(b)) => {
                a.spec() == b.spec() && a.num_clients() == b.num_clients()
            }
            _ => false,
        }
    }
}

impl FederatedDataset {
    /// Partitions `dataset` across `n_clients` with Dirichlet(α) label skew
    /// and splits each client 70/15/15.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`dirichlet_partition`].
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        dataset: &Dataset,
        n_clients: usize,
        alpha: f64,
    ) -> Self {
        Self::build_with_split(rng, dataset, n_clients, alpha, 0.7, 0.15)
    }

    /// Same as [`FederatedDataset::build`] with custom train/test fractions
    /// (validation receives the remainder).
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`dirichlet_partition`] and
    /// [`Dataset::split`].
    pub fn build_with_split<R: Rng + ?Sized>(
        rng: &mut R,
        dataset: &Dataset,
        n_clients: usize,
        alpha: f64,
        train_frac: f64,
        test_frac: f64,
    ) -> Self {
        let parts = dirichlet_partition(rng, dataset, n_clients, alpha);
        let clients = parts
            .iter()
            .map(|indices| {
                let local = dataset.subset(indices);
                let (train, test, val) = local.split(rng, train_frac, test_frac);
                Arc::new(ClientData { train, test, val })
            })
            .collect();
        Self {
            backing: Backing::Eager(clients),
            sample_shape: dataset.sample_shape().to_vec(),
            num_classes: dataset.num_classes(),
            alpha,
        }
    }

    /// A lazily materialized cohort: `n_clients` shards generated on first
    /// touch per `spec` and kept resident under `budget_bytes` (see
    /// [`ResidentShards`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0` or `budget_bytes == 0`.
    pub fn lazy(spec: ShardSpec, n_clients: usize, budget_bytes: usize) -> Self {
        let sample_shape = spec.source().sample_shape();
        let num_classes = spec.source().num_classes();
        let alpha = spec.alpha();
        Self {
            backing: Backing::Lazy(Arc::new(ResidentShards::new(spec, n_clients, budget_bytes))),
            sample_shape,
            num_classes,
            alpha,
        }
    }

    /// Every client of `spec` materialized up front — the eager reference
    /// the lazy backing must be bitwise-indistinguishable from (pinned by
    /// the cohort-engine golden fixture).
    pub fn eager_from_shards(spec: &ShardSpec, n_clients: usize) -> Self {
        let clients = (0..n_clients)
            .map(|id| Arc::new(spec.generate_client(id)))
            .collect();
        Self {
            backing: Backing::Eager(clients),
            sample_shape: spec.source().sample_shape(),
            num_classes: spec.source().num_classes(),
            alpha: spec.alpha(),
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        match &self.backing {
            Backing::Eager(clients) => clients.len(),
            Backing::Lazy(store) => store.num_clients(),
        }
    }

    /// The Dirichlet concentration this dataset was partitioned with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape of one sample.
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Data of client `id`. Cheap on the eager backing (an `Arc` clone);
    /// on the lazy backing a first touch generates the shard and repeat
    /// touches are resident-cache hits.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn client(&self, id: usize) -> Arc<ClientData> {
        match &self.backing {
            Backing::Eager(clients) => Arc::clone(&clients[id]),
            Backing::Lazy(store) => store.get(id),
        }
    }

    /// Residency counters of the lazy backing (`None` when eager).
    pub fn shard_stats(&self) -> Option<ShardStats> {
        match &self.backing {
            Backing::Eager(_) => None,
            Backing::Lazy(store) => Some(store.stats()),
        }
    }

    /// The attacker's auxiliary dataset `D_a = ∪_{c∈C} val_c` — the pooled
    /// validation splits of the given (compromised) client ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    pub fn auxiliary(&self, compromised: &[usize]) -> Dataset {
        let mut out = Dataset::empty(&self.sample_shape, self.num_classes);
        for &c in compromised {
            out.extend_from(&self.client(c).val);
            // Compromised clients contribute everything they hold; the paper
            // pools their validation sets for X but the attacker also trains
            // DPois on their full local data. We keep D_a = validation only,
            // matching the paper's configuration.
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardSource;
    use crate::synthetic::{SyntheticImage, SyntheticImageConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fed(alpha: f64, clients: usize) -> FederatedDataset {
        let cfg = SyntheticImageConfig {
            samples: 600,
            side: 8,
            classes: 5,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg).generate();
        let mut rng = StdRng::seed_from_u64(9);
        FederatedDataset::build(&mut rng, &ds, clients, alpha)
    }

    fn shard_spec(seed: u64) -> ShardSpec {
        let gen = SyntheticImage::new(SyntheticImageConfig {
            samples: 1,
            side: 8,
            classes: 5,
            ..Default::default()
        });
        ShardSpec::new(ShardSource::Image(gen), 40, 1.0, seed)
    }

    #[test]
    fn splits_cover_all_samples() {
        let f = fed(1.0, 10);
        let total: usize = (0..10).map(|i| f.client(i).len()).sum();
        assert_eq!(total, 600);
        assert_eq!(f.num_clients(), 10);
        assert_eq!(f.num_classes(), 5);
    }

    #[test]
    fn split_ratios_roughly_hold() {
        let f = fed(10.0, 5);
        for i in 0..5 {
            let c = f.client(i);
            let n = c.len() as f64;
            assert!(
                (c.train.len() as f64 / n - 0.7).abs() < 0.1,
                "client {i}: train frac {}",
                c.train.len() as f64 / n
            );
        }
    }

    #[test]
    fn auxiliary_pools_validation_sets() {
        let f = fed(1.0, 10);
        let aux = f.auxiliary(&[0, 3]);
        assert_eq!(aux.len(), f.client(0).val.len() + f.client(3).val.len());
        let empty = f.auxiliary(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn all_recombines_splits() {
        let f = fed(1.0, 4);
        let c = f.client(2);
        assert_eq!(c.all().len(), c.len());
    }

    #[test]
    fn lazy_and_eager_shard_backings_agree() {
        let lazy = FederatedDataset::lazy(shard_spec(11), 12, 1 << 22);
        let eager = FederatedDataset::eager_from_shards(&shard_spec(11), 12);
        assert_eq!(lazy.num_clients(), eager.num_clients());
        assert_eq!(lazy.sample_shape(), eager.sample_shape());
        // Scrambled lazy access order must not matter.
        for id in [7, 0, 11, 3, 7, 0] {
            assert_eq!(lazy.client(id), eager.client(id));
        }
        assert_eq!(lazy.auxiliary(&[2, 9]), eager.auxiliary(&[2, 9]));
        assert!(lazy.shard_stats().is_some());
        assert!(eager.shard_stats().is_none());
    }

    #[test]
    fn equality_follows_the_backing() {
        let a = FederatedDataset::lazy(shard_spec(11), 12, 1 << 22);
        let b = FederatedDataset::lazy(shard_spec(11), 12, 1 << 22);
        let c = FederatedDataset::lazy(shard_spec(12), 12, 1 << 22);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Lazy never equals eager, even over the same spec: the comparison
        // would otherwise force full materialization.
        assert_ne!(a, FederatedDataset::eager_from_shards(&shard_spec(11), 12));
    }
}
