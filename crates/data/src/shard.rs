//! Lazy resident client shards — the data side of the paper-scale cohort
//! engine.
//!
//! A *shard* is one client's [`ClientData`], generated on first touch as a
//! pure function of `(seed, client_id)` through the dedicated
//! [`Domain::Shard`](collapois_runtime::seed::Domain) RNG stream: the
//! client draws its own Dirichlet(α) label mix, renders
//! `samples_per_client` samples from the resident class prototypes, and
//! splits them 70/15/15 — all from a stream that depends on nothing but the
//! seed and the client id. Because the stream never depends on *when* (or
//! whether) the shard was previously materialized, laziness is
//! bitwise-invisible: generating a shard on demand, evicting it under
//! memory pressure and regenerating it later always reproduces the same
//! bytes as materializing every client eagerly up front.
//!
//! [`ResidentShards`] keeps generated shards resident across rounds in
//! sharded maps behind an LRU byte budget, so a cohort-sampling round
//! touches only the sampled shards and a 5 000-client run fits a fixed
//! bytes-per-client envelope. The cache-hit path is allocation-free (one
//! map lock, one `HashMap` lookup, one `Arc` clone).

use crate::federated::ClientData;
use crate::sample::Dataset;
use crate::synthetic::{SyntheticImage, SyntheticText};
use collapois_runtime::seed::shard_rng;
use collapois_stats::distribution::Dirichlet;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Resident per-class generator state shared by every shard: the image
/// prototypes or text cluster centers. Held once per run regardless of
/// client count.
#[derive(Debug, Clone)]
pub enum ShardSource {
    /// FEMNIST-sim prototypes ([`SyntheticImage`]).
    Image(SyntheticImage),
    /// Sentiment-sim cluster centers ([`SyntheticText`]).
    Text(SyntheticText),
}

impl ShardSource {
    /// Shape of one sample.
    pub fn sample_shape(&self) -> Vec<usize> {
        match self {
            Self::Image(g) => {
                let s = g.config().side;
                vec![1, s, s]
            }
            Self::Text(g) => vec![g.config().dim],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        match self {
            Self::Image(g) => g.config().classes,
            Self::Text(g) => g.config().classes,
        }
    }

    fn render<R: Rng + ?Sized>(&self, rng: &mut R, class: usize, out: &mut [f32]) {
        match self {
            Self::Image(g) => g.render_sample(rng, class, out),
            Self::Text(g) => g.render_sample(rng, class, out),
        }
    }
}

impl PartialEq for ShardSource {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Image(a), Self::Image(b)) => a.config() == b.config(),
            (Self::Text(a), Self::Text(b)) => a.config() == b.config(),
            _ => false,
        }
    }
}

/// Everything needed to generate any client's shard: the resident source
/// plus the per-client recipe. Two equal specs generate bit-identical
/// shards for every client id.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    source: ShardSource,
    samples_per_client: usize,
    alpha: f64,
    train_frac: f64,
    test_frac: f64,
    seed: u64,
}

impl ShardSpec {
    /// Creates a spec with the paper's 70/15/15 split.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_client == 0` or `alpha <= 0`.
    pub fn new(source: ShardSource, samples_per_client: usize, alpha: f64, seed: u64) -> Self {
        assert!(
            samples_per_client > 0,
            "samples_per_client must be positive"
        );
        assert!(alpha > 0.0, "alpha must be positive");
        Self {
            source,
            samples_per_client,
            alpha,
            train_frac: 0.7,
            test_frac: 0.15,
            seed,
        }
    }

    /// The resident generator state.
    pub fn source(&self) -> &ShardSource {
        &self.source
    }

    /// The Dirichlet concentration each client's label mix is drawn with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples every client's shard holds.
    pub fn samples_per_client(&self) -> usize {
        self.samples_per_client
    }

    /// Generates client `client_id`'s shard from scratch.
    ///
    /// Pure in `(self, client_id)`: the RNG stream is
    /// [`shard_rng`]`(seed, client_id)` and nothing else, so repeated calls
    /// — in any order, from any thread, after any number of evictions —
    /// return identical data.
    pub fn generate_client(&self, client_id: usize) -> ClientData {
        let mut rng = shard_rng(self.seed, client_id);
        let classes = self.source.num_classes();
        // The client's own label mix — the same symmetric-Dirichlet skew
        // `dirichlet_partition` applies to a pooled dataset, drawn per
        // client instead of per population.
        let dir = Dirichlet::symmetric(self.alpha, classes.max(2)).expect("validated parameters");
        let mut mix = dir.sample(&mut rng);
        mix.truncate(classes);
        let total: f64 = mix.iter().map(|w| w.max(1e-12)).sum();
        let mut cdf = Vec::with_capacity(classes);
        let mut acc = 0.0;
        for w in &mix {
            acc += w.max(1e-12) / total;
            cdf.push(acc);
        }

        let shape = self.source.sample_shape();
        let mut ds = Dataset::empty(&shape, classes);
        let mut buf = vec![0.0f32; shape.iter().product()];
        for _ in 0..self.samples_per_client {
            let u: f64 = rng.gen_range(0.0..1.0);
            let class = cdf.partition_point(|&c| c < u).min(classes - 1);
            self.source.render(&mut rng, class, &mut buf);
            ds.push(&buf, class);
        }
        let (train, test, val) = ds.split(&mut rng, self.train_frac, self.test_frac);
        ClientData { train, test, val }
    }
}

/// Point-in-time counters of a [`ResidentShards`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Bytes currently held by resident shards.
    pub resident_bytes: usize,
    /// The LRU byte budget residency is kept under.
    pub budget_bytes: usize,
    /// Lookups served from a resident shard.
    pub hits: u64,
    /// Lookups that generated the shard.
    pub misses: u64,
    /// Shards evicted to stay under budget.
    pub evictions: u64,
}

/// The map-shard count: lookups for different clients contend only when
/// their ids collide modulo this.
const MAP_SHARDS: usize = 16;

/// Lazily generated client shards, kept resident across rounds under an
/// LRU byte budget.
///
/// Lookups are served from `MAP_SHARDS` independently locked maps; a miss
/// generates the shard under its map's lock (so concurrent requests for
/// the same client wait for one generation instead of duplicating it)
/// while the other maps stay serviceable. After an insert pushes residency
/// over budget, the globally least-recently-touched shard is evicted —
/// never the one just requested — until the budget holds again.
pub struct ResidentShards {
    spec: ShardSpec,
    num_clients: usize,
    budget_bytes: usize,
    maps: Vec<Mutex<HashMap<usize, Entry>>>,
    clock: AtomicU64,
    resident_bytes: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Entry {
    data: Arc<ClientData>,
    bytes: usize,
    last_touch: u64,
}

impl ResidentShards {
    /// Creates an empty store for `num_clients` clients under
    /// `budget_bytes` of resident shard data.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0` or `budget_bytes == 0`.
    pub fn new(spec: ShardSpec, num_clients: usize, budget_bytes: usize) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(budget_bytes > 0, "budget must be positive");
        Self {
            spec,
            num_clients,
            budget_bytes,
            maps: (0..MAP_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            clock: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The generation recipe.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of clients this store serves.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Client `id`'s shard: resident if touched recently, regenerated from
    /// the derived RNG stream otherwise. Either way the returned data is
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_clients`.
    pub fn get(&self, id: usize) -> Arc<ClientData> {
        assert!(id < self.num_clients, "client {id} out of bounds");
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let data = {
            let mut map = self.maps[id % MAP_SHARDS]
                .lock()
                .expect("shard map poisoned");
            if let Some(e) = map.get_mut(&id) {
                e.last_touch = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&e.data);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let data = Arc::new(self.spec.generate_client(id));
            let bytes = data.heap_bytes();
            self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
            map.insert(
                id,
                Entry {
                    data: Arc::clone(&data),
                    bytes,
                    last_touch: now,
                },
            );
            data
        };
        self.evict_over_budget(id);
        data
    }

    /// Current counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Evicts least-recently-touched shards (never `protected`) until the
    /// budget holds. Map locks are taken one at a time, so this cannot
    /// deadlock against concurrent lookups.
    fn evict_over_budget(&self, protected: usize) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.budget_bytes {
            let mut victim: Option<(usize, u64)> = None;
            for m in &self.maps {
                let map = m.lock().expect("shard map poisoned");
                for (&cid, e) in map.iter() {
                    if cid == protected {
                        continue;
                    }
                    if victim.is_none_or(|(_, t)| e.last_touch < t) {
                        victim = Some((cid, e.last_touch));
                    }
                }
            }
            // Only the protected shard is resident: the budget cannot be
            // met without evicting the data the caller is about to use.
            let Some((cid, touch)) = victim else { return };
            let mut map = self.maps[cid % MAP_SHARDS]
                .lock()
                .expect("shard map poisoned");
            // A racing lookup may have refreshed (or a racing eviction
            // removed) the victim since it was chosen; rescan if so.
            if let Some(e) = map.get(&cid) {
                if e.last_touch == touch {
                    let e = map.remove(&cid).expect("checked present");
                    self.resident_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl std::fmt::Debug for ResidentShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ResidentShards")
            .field("num_clients", &self.num_clients)
            .field("resident_bytes", &s.resident_bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticImageConfig, SyntheticTextConfig};

    fn image_spec(seed: u64) -> ShardSpec {
        let gen = SyntheticImage::new(SyntheticImageConfig {
            side: 8,
            classes: 4,
            samples: 1, // unused by per-client rendering; must be positive
            noise: 0.05,
            max_shift: 1,
            seed,
        });
        ShardSpec::new(ShardSource::Image(gen), 24, 0.5, seed)
    }

    fn text_spec(seed: u64) -> ShardSpec {
        let gen = SyntheticText::new(SyntheticTextConfig {
            dim: 16,
            classes: 2,
            clusters_per_class: 3,
            samples: 1,
            noise: 0.6,
            seed,
        });
        ShardSpec::new(ShardSource::Text(gen), 24, 0.5, seed)
    }

    #[test]
    fn generation_is_pure_per_client() {
        for spec in [image_spec(7), text_spec(7)] {
            let a = spec.generate_client(11);
            let b = spec.generate_client(11);
            assert_eq!(a, b, "same client twice");
            assert_ne!(a, spec.generate_client(12), "distinct clients");
        }
    }

    #[test]
    fn shards_split_per_the_paper() {
        let c = image_spec(3).generate_client(0);
        assert_eq!(c.len(), 24);
        assert_eq!(c.train.len(), 17); // round(24 * 0.7)
        assert_eq!(c.test.len(), 4); // round(24 * 0.15)
        assert_eq!(c.val.len(), 3);
    }

    #[test]
    fn lazy_store_matches_direct_generation() {
        let store = ResidentShards::new(image_spec(9), 32, 1 << 20);
        // Scrambled access order, with repeats.
        for id in [5, 0, 31, 5, 17, 0, 8] {
            assert_eq!(*store.get(id), image_spec(9).generate_client(id));
        }
        let s = store.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 5);
    }

    #[test]
    fn eviction_keeps_residency_under_budget_and_stays_bitwise_invisible() {
        let spec = image_spec(4);
        let one_shard = Arc::new(spec.generate_client(0)).heap_bytes();
        // Budget for roughly three shards: touching 16 must evict.
        let store = ResidentShards::new(spec.clone(), 16, 3 * one_shard + 1);
        for id in 0..16 {
            let _ = store.get(id);
            assert!(
                store.stats().resident_bytes <= store.stats().budget_bytes,
                "over budget after touching client {id}"
            );
        }
        let s = store.stats();
        assert!(s.evictions >= 12, "expected evictions, got {}", s.evictions);
        // Regenerated-after-eviction shards are identical to fresh ones.
        assert_eq!(*store.get(0), spec.generate_client(0));
    }

    #[test]
    fn lru_keeps_the_recently_touched_shard() {
        let spec = image_spec(5);
        let one_shard = Arc::new(spec.generate_client(0)).heap_bytes();
        let store = ResidentShards::new(spec, 8, 2 * one_shard + 1);
        let _ = store.get(0);
        let _ = store.get(1);
        let _ = store.get(0); // refresh 0: client 1 is now the LRU
        let _ = store.get(2); // evicts 1
        let before = store.stats();
        let _ = store.get(0);
        assert_eq!(
            store.stats().hits,
            before.hits + 1,
            "client 0 stayed resident"
        );
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let spec = image_spec(6);
        let store = Arc::new(ResidentShards::new(spec.clone(), 64, 1 << 30));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                let spec = spec.clone();
                std::thread::spawn(move || {
                    for i in 0..64 {
                        let id = (i * 7 + t * 13) % 64;
                        assert_eq!(*store.get(id), spec.generate_client(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().hits + store.stats().misses, 256);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_client() {
        let store = ResidentShards::new(image_spec(1), 4, 1 << 20);
        let _ = store.get(4);
    }
}
