//! Dense dataset container with tensor batching.

use collapois_nn::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset stored as contiguous features plus integer labels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    sample_shape: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates an empty dataset for samples of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `sample_shape` is empty or `num_classes == 0`.
    pub fn empty(sample_shape: &[usize], num_classes: usize) -> Self {
        assert!(!sample_shape.is_empty(), "sample shape must be non-empty");
        assert!(num_classes > 0, "num_classes must be positive");
        Self {
            features: Vec::new(),
            labels: Vec::new(),
            sample_shape: sample_shape.to_vec(),
            num_classes,
        }
    }

    /// Creates a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent or any label is out of range.
    pub fn from_parts(
        features: Vec<f32>,
        labels: Vec<usize>,
        sample_shape: &[usize],
        num_classes: usize,
    ) -> Self {
        let per: usize = sample_shape.iter().product();
        assert_eq!(
            features.len(),
            labels.len() * per,
            "features/labels mismatch"
        );
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "label out of range"
        );
        let mut ds = Self::empty(sample_shape, num_classes);
        ds.features = features;
        ds.labels = labels;
        ds
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample feature count.
    pub fn feature_len(&self) -> usize {
        self.sample_shape.iter().product()
    }

    /// Shape of a single sample (without the batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature slice of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features_of(&self, i: usize) -> &[f32] {
        let per = self.feature_len();
        &self.features[i * per..(i + 1) * per]
    }

    /// Mutable feature slice of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features_of_mut(&mut self, i: usize) -> &mut [f32] {
        let per = self.feature_len();
        &mut self.features[i * per..(i + 1) * per]
    }

    /// Label of sample `i`.
    pub fn label_of(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Sets the label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range.
    pub fn set_label(&mut self, i: usize, label: usize) {
        assert!(label < self.num_classes, "label {label} out of range");
        self.labels[i] = label;
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature length or label is inconsistent.
    pub fn push(&mut self, features: &[f32], label: usize) {
        assert_eq!(
            features.len(),
            self.feature_len(),
            "feature length mismatch"
        );
        assert!(label < self.num_classes, "label {label} out of range");
        self.features.extend_from_slice(features);
        self.labels.push(label);
    }

    /// Appends every sample of `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes or class counts differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(
            self.sample_shape, other.sample_shape,
            "sample shape mismatch"
        );
        assert_eq!(self.num_classes, other.num_classes, "class count mismatch");
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }

    /// A new dataset containing the given sample indices (cloned).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::empty(&self.sample_shape, self.num_classes);
        for &i in indices {
            out.push(self.features_of(i), self.labels[i]);
        }
        out
    }

    /// Batches the whole dataset into a `[N, sample_shape...]` tensor plus
    /// its labels.
    pub fn as_batch(&self) -> (Tensor, Vec<usize>) {
        let mut shape = Vec::with_capacity(self.sample_shape.len() + 1);
        shape.push(self.len());
        shape.extend_from_slice(&self.sample_shape);
        (
            Tensor::from_vec(self.features.clone(), &shape),
            self.labels.clone(),
        )
    }

    /// Batches the given indices into a tensor plus labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch_of(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let per = self.feature_len();
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features_of(i));
            labels.push(self.labels[i]);
        }
        let mut shape = Vec::with_capacity(self.sample_shape.len() + 1);
        shape.push(indices.len());
        shape.extend_from_slice(&self.sample_shape);
        (Tensor::from_vec(data, &shape), labels)
    }

    /// Random minibatch of up to `size` samples (without replacement).
    pub fn minibatch<R: Rng + ?Sized>(&self, rng: &mut R, size: usize) -> (Tensor, Vec<usize>) {
        let mut idx = Vec::new();
        let mut x = Tensor::default();
        let mut y = Vec::new();
        self.minibatch_into(rng, size, &mut idx, &mut x, &mut y);
        (x, y)
    }

    /// In-place [`Dataset::minibatch`]: fills the caller-owned index,
    /// feature and label buffers, reusing their heap allocations across
    /// calls. Draws from `rng` in exactly the same sequence as `minibatch`
    /// (the full index range is shuffled, then truncated), so both variants
    /// leave any shared RNG in an identical state.
    pub fn minibatch_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        size: usize,
        idx: &mut Vec<usize>,
        x: &mut Tensor,
        y: &mut Vec<usize>,
    ) {
        idx.clear();
        idx.extend(0..self.len());
        idx.shuffle(rng);
        idx.truncate(size.min(self.len()));
        self.batch_into(idx, x, y);
    }

    /// In-place [`Dataset::batch_of`]: writes the selected samples into the
    /// caller-owned tensor and label buffer.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch_into(&self, indices: &[usize], x: &mut Tensor, y: &mut Vec<usize>) {
        let per = self.feature_len();
        x.resize_batch(indices.len(), &self.sample_shape);
        let data = x.data_mut();
        y.clear();
        for (row, &i) in indices.iter().enumerate() {
            data[row * per..(row + 1) * per].copy_from_slice(self.features_of(i));
            y.push(self.labels[i]);
        }
    }

    /// Heap bytes held by this dataset's feature and label buffers
    /// (capacity, not length — the number the resident-shard byte budget
    /// accounts against).
    pub fn heap_bytes(&self) -> usize {
        self.features.capacity() * std::mem::size_of::<f32>()
            + self.labels.capacity() * std::mem::size_of::<usize>()
            + self.sample_shape.capacity() * std::mem::size_of::<usize>()
    }

    /// Splits into `(train, test, val)` datasets by the given fractions
    /// after a seeded shuffle (the paper uses 70/15/15).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum to more than 1.
    pub fn split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        train_frac: f64,
        test_frac: f64,
    ) -> (Dataset, Dataset, Dataset) {
        assert!(
            train_frac >= 0.0 && test_frac >= 0.0,
            "fractions must be non-negative"
        );
        assert!(
            train_frac + test_frac <= 1.0 + 1e-9,
            "fractions must sum to at most 1"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train = (self.len() as f64 * train_frac).round() as usize;
        let n_test = (self.len() as f64 * test_frac).round() as usize;
        let n_train = n_train.min(self.len());
        let n_test = n_test.min(self.len() - n_train);
        let train = self.subset(&idx[..n_train]);
        let test = self.subset(&idx[n_train..n_train + n_test]);
        let val = self.subset(&idx[n_train + n_test..]);
        (train, test, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(&[2], 3);
        for i in 0..9 {
            ds.push(&[i as f32, -(i as f32)], i % 3);
        }
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 9);
        assert_eq!(ds.feature_len(), 2);
        assert_eq!(ds.features_of(4), &[4.0, -4.0]);
        assert_eq!(ds.label_of(4), 1);
    }

    #[test]
    fn subset_preserves_order() {
        let ds = toy();
        let sub = ds.subset(&[8, 0, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.features_of(0), &[8.0, -8.0]);
        assert_eq!(sub.label_of(1), 0);
    }

    #[test]
    fn batch_shapes() {
        let ds = toy();
        let (x, y) = ds.as_batch();
        assert_eq!(x.shape(), &[9, 2]);
        assert_eq!(y.len(), 9);
        let (xb, yb) = ds.batch_of(&[1, 2]);
        assert_eq!(xb.shape(), &[2, 2]);
        assert_eq!(yb, vec![1, 2]);
    }

    #[test]
    fn minibatch_without_replacement() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = ds.minibatch(&mut rng, 5);
        assert_eq!(x.batch(), 5);
        assert_eq!(y.len(), 5);
        // Requesting more than available returns everything.
        let (x, _) = ds.minibatch(&mut rng, 100);
        assert_eq!(x.batch(), 9);
    }

    #[test]
    fn minibatch_into_matches_allocating_path() {
        let ds = toy();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut idx = Vec::new();
        let mut x = Tensor::default();
        let mut y = Vec::new();
        // Varying sizes exercise buffer reuse (grow and shrink).
        for size in [5usize, 3, 9, 1] {
            let (xa, ya) = ds.minibatch(&mut rng_a, size);
            ds.minibatch_into(&mut rng_b, size, &mut idx, &mut x, &mut y);
            assert_eq!(x, xa);
            assert_eq!(y, ya);
        }
    }

    #[test]
    fn split_is_a_partition() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, te, va) = ds.split(&mut rng, 0.7, 0.15);
        assert_eq!(tr.len() + te.len() + va.len(), ds.len());
        // Union of features matches the original multiset.
        let mut all: Vec<f32> = Vec::new();
        for d in [&tr, &te, &va] {
            for i in 0..d.len() {
                all.push(d.features_of(i)[0]);
            }
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..9).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = toy();
        let b = toy();
        a.extend_from(&b);
        assert_eq!(a.len(), 18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let mut ds = Dataset::empty(&[1], 2);
        ds.push(&[0.0], 2);
    }

    #[test]
    fn set_label_works() {
        let mut ds = toy();
        ds.set_label(0, 2);
        assert_eq!(ds.label_of(0), 2);
    }
}
