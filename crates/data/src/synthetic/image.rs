//! FEMNIST-sim: procedurally generated grayscale image classes.
//!
//! Each class gets a smooth random prototype (a low-resolution random grid
//! bilinearly upsampled to the full side length, mimicking the stroke-scale
//! structure of handwritten characters). A sample is its class prototype
//! after a small random translation plus pixel noise, clamped to `[0, 1]`.
//! The task is easily learnable yet non-trivial, and samples of the same
//! class are correlated — the property the paper's non-IID analysis needs.

use crate::sample::Dataset;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticImageConfig {
    /// Square image side length (pixels).
    pub side: usize,
    /// Number of classes.
    pub classes: usize,
    /// Total number of samples to generate.
    pub samples: usize,
    /// Std-dev of per-pixel Gaussian noise.
    pub noise: f64,
    /// Maximum |translation| in pixels applied per sample.
    pub max_shift: usize,
    /// RNG seed (prototypes and samples are fully determined by it).
    pub seed: u64,
}

impl Default for SyntheticImageConfig {
    fn default() -> Self {
        Self {
            side: 28,
            classes: 10,
            samples: 10_000,
            noise: 0.08,
            max_shift: 2,
            seed: 7,
        }
    }
}

/// Generator for the FEMNIST-sim dataset.
#[derive(Debug, Clone)]
pub struct SyntheticImage {
    config: SyntheticImageConfig,
    prototypes: Vec<Vec<f32>>, // one side*side image per class
}

impl SyntheticImage {
    /// Builds the generator (creates the per-class prototypes).
    ///
    /// # Panics
    ///
    /// Panics if `side < 4`, `classes == 0`, or `samples == 0`.
    pub fn new(config: SyntheticImageConfig) -> Self {
        assert!(config.side >= 4, "side must be at least 4");
        assert!(config.classes > 0, "classes must be positive");
        assert!(config.samples > 0, "samples must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let prototypes = (0..config.classes)
            .map(|_| smooth_field(&mut rng, config.side, 7))
            .collect();
        Self { config, prototypes }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &SyntheticImageConfig {
        &self.config
    }

    /// The prototype image of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn prototype(&self, class: usize) -> &[f32] {
        &self.prototypes[class]
    }

    /// Generates the full dataset (shape `[1, side, side]` per sample,
    /// class-balanced up to rounding).
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5EED));
        let mut ds = Dataset::empty(&[1, cfg.side, cfg.side], cfg.classes);
        let mut buf = vec![0.0f32; cfg.side * cfg.side];
        for i in 0..cfg.samples {
            let class = i % cfg.classes;
            self.render_sample(&mut rng, class, &mut buf);
            ds.push(&buf, class);
        }
        ds
    }

    /// Renders one sample of `class` into `out` (length `side²`). Shared by
    /// [`SyntheticImage::generate`] and the per-client shard generator.
    pub(crate) fn render_sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: usize,
        out: &mut [f32],
    ) {
        let s = self.config.side as isize;
        let max = self.config.max_shift as isize;
        let dx = if max > 0 {
            rng.gen_range(-max..=max)
        } else {
            0
        };
        let dy = if max > 0 {
            rng.gen_range(-max..=max)
        } else {
            0
        };
        let proto = &self.prototypes[class];
        for y in 0..s {
            for x in 0..s {
                let sx = (x + dx).clamp(0, s - 1);
                let sy = (y + dy).clamp(0, s - 1);
                let v = proto[(sy * s + sx) as usize]
                    + (self.config.noise * standard_normal(rng)) as f32;
                out[(y * s + x) as usize] = v.clamp(0.0, 1.0);
            }
        }
    }
}

/// A smooth random field in `[0, 1]`: random `grid×grid` control values
/// bilinearly upsampled to `side×side`.
fn smooth_field<R: Rng + ?Sized>(rng: &mut R, side: usize, grid: usize) -> Vec<f32> {
    let control: Vec<f32> = (0..grid * grid).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut out = vec![0.0f32; side * side];
    let scale = (grid - 1) as f32 / (side - 1) as f32;
    for y in 0..side {
        for x in 0..side {
            let gx = x as f32 * scale;
            let gy = y as f32 * scale;
            let x0 = gx.floor() as usize;
            let y0 = gy.floor() as usize;
            let x1 = (x0 + 1).min(grid - 1);
            let y1 = (y0 + 1).min(grid - 1);
            let fx = gx - x0 as f32;
            let fy = gy - y0 as f32;
            let v = control[y0 * grid + x0] * (1.0 - fx) * (1.0 - fy)
                + control[y0 * grid + x1] * fx * (1.0 - fy)
                + control[y1 * grid + x0] * (1.0 - fx) * fy
                + control[y1 * grid + x1] * fx * fy;
            out[y * side + x] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::optim::Sgd;
    use collapois_nn::zoo::ModelSpec;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticImageConfig {
            samples: 50,
            ..Default::default()
        };
        let a = SyntheticImage::new(cfg).generate();
        let b = SyntheticImage::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn values_in_unit_interval() {
        let cfg = SyntheticImageConfig {
            samples: 100,
            side: 16,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg).generate();
        for i in 0..ds.len() {
            assert!(ds.features_of(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn classes_are_balanced() {
        let cfg = SyntheticImageConfig {
            samples: 100,
            classes: 10,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg).generate();
        let mut counts = [0usize; 10];
        for &y in ds.labels() {
            counts[y] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn task_is_learnable_by_mlp() {
        let cfg = SyntheticImageConfig {
            side: 12,
            classes: 4,
            samples: 200,
            noise: 0.05,
            max_shift: 1,
            seed: 3,
        };
        let ds = SyntheticImage::new(cfg).generate();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = ModelSpec::mlp(12 * 12, &[32], 4).build(&mut rng);
        let mut opt = Sgd::new(0.3);
        let (x, y) = ds.as_batch();
        let x = x.reshaped(&[200, 144]);
        for _ in 0..60 {
            model.train_batch(&x, &y, &mut opt);
        }
        assert!(
            model.evaluate(&x, &y) > 0.9,
            "acc={}",
            model.evaluate(&x, &y)
        );
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let gen = SyntheticImage::new(SyntheticImageConfig::default());
        let d: f32 = gen
            .prototype(0)
            .iter()
            .zip(gen.prototype(1))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1.0, "prototypes nearly identical: {d}");
    }
}
