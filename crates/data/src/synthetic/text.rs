//! Sentiment-sim: class-conditioned Gaussian embedding vectors.
//!
//! The paper's Sentiment pipeline freezes a BERT tokenizer/encoder and trains
//! only a small fully connected head, so the effective learning problem is a
//! classifier over fixed sentence embeddings. This generator reproduces that
//! regime: each class has a mean embedding direction, and samples are that
//! mean plus isotropic Gaussian noise. Optional sub-topic structure (several
//! cluster centers per class) keeps the task from being linearly trivial.

use crate::sample::Dataset;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic text-embedding dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTextConfig {
    /// Embedding dimension (stand-in for the BERT sentence embedding).
    pub dim: usize,
    /// Number of classes (2 for sentiment).
    pub classes: usize,
    /// Sub-topic clusters per class.
    pub clusters_per_class: usize,
    /// Total number of samples.
    pub samples: usize,
    /// Within-cluster noise std-dev.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticTextConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            classes: 2,
            clusters_per_class: 3,
            samples: 20_000,
            noise: 0.6,
            seed: 11,
        }
    }
}

/// Generator for the Sentiment-sim dataset.
#[derive(Debug, Clone)]
pub struct SyntheticText {
    config: SyntheticTextConfig,
    centers: Vec<Vec<f32>>, // classes * clusters_per_class centers
}

impl SyntheticText {
    /// Builds the generator (draws the cluster centers).
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(config: SyntheticTextConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.classes > 0, "classes must be positive");
        assert!(
            config.clusters_per_class > 0,
            "clusters_per_class must be positive"
        );
        assert!(config.samples > 0, "samples must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centers = (0..config.classes * config.clusters_per_class)
            .map(|_| {
                (0..config.dim)
                    .map(|_| standard_normal(&mut rng) as f32)
                    .collect::<Vec<f32>>()
            })
            .collect();
        Self { config, centers }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &SyntheticTextConfig {
        &self.config
    }

    /// Cluster center `cluster` of `class`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn center(&self, class: usize, cluster: usize) -> &[f32] {
        &self.centers[class * self.config.clusters_per_class + cluster]
    }

    /// Generates the full dataset (shape `[dim]` per sample, class-balanced
    /// up to rounding).
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBEEF));
        let mut ds = Dataset::empty(&[cfg.dim], cfg.classes);
        let mut buf = vec![0.0f32; cfg.dim];
        for i in 0..cfg.samples {
            let class = i % cfg.classes;
            self.render_sample(&mut rng, class, &mut buf);
            ds.push(&buf, class);
        }
        ds
    }

    /// Renders one sample of `class` into `out` (length `dim`): a random
    /// sub-topic center plus isotropic noise. Shared by
    /// [`SyntheticText::generate`] and the per-client shard generator; draws
    /// from `rng` in exactly the sequence the inlined `generate` loop did.
    pub(crate) fn render_sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: usize,
        out: &mut [f32],
    ) {
        let cfg = &self.config;
        let cluster = rng.gen_range(0..cfg.clusters_per_class);
        let center = self.center(class, cluster);
        for (b, &c) in out.iter_mut().zip(center) {
            *b = c + (cfg.noise * standard_normal(rng)) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::optim::Sgd;
    use collapois_nn::zoo::ModelSpec;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticTextConfig {
            samples: 64,
            ..Default::default()
        };
        assert_eq!(
            SyntheticText::new(cfg).generate(),
            SyntheticText::new(cfg).generate()
        );
    }

    #[test]
    fn shapes_and_balance() {
        let cfg = SyntheticTextConfig {
            samples: 100,
            ..Default::default()
        };
        let ds = SyntheticText::new(cfg).generate();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.sample_shape(), &[64]);
        let ones = ds.labels().iter().filter(|&&y| y == 1).count();
        assert_eq!(ones, 50);
    }

    #[test]
    fn task_is_learnable_by_head() {
        let cfg = SyntheticTextConfig {
            dim: 32,
            samples: 400,
            noise: 0.4,
            ..Default::default()
        };
        let ds = SyntheticText::new(cfg).generate();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = ModelSpec::mlp(32, &[16], 2).build(&mut rng);
        let mut opt = Sgd::new(0.2);
        let (x, y) = ds.as_batch();
        for _ in 0..80 {
            model.train_batch(&x, &y, &mut opt);
        }
        assert!(
            model.evaluate(&x, &y) > 0.95,
            "acc={}",
            model.evaluate(&x, &y)
        );
    }
}
