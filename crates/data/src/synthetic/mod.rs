//! Synthetic dataset generators standing in for the paper's corpora.
//!
//! See `DESIGN.md` §1 for the substitution rationale: the mechanisms the
//! paper studies (non-IID gradient scatter, trigger learnability,
//! label-mix/auxiliary-data proximity) depend only on having a learnable
//! class structure, which both generators provide deterministically from a
//! seed.

mod image;
mod text;

pub use image::{SyntheticImage, SyntheticImageConfig};
pub use text::{SyntheticText, SyntheticTextConfig};
