//! Fine-Pruning [Liu et al., RAID 2018] — prune dormant units, then
//! measure what is left of the backdoor.
//!
//! Patch-style backdoors tend to hide in units that clean data rarely
//! activates; pruning the least-activated hidden units therefore removes
//! them with little clean-accuracy cost. Warping triggers (WaNet) re-use the
//! same units as clean features, so pruning cannot separate them — the
//! evasion the paper relies on (§II-B).
//!
//! The implementation targets single-hidden-layer MLPs (the scenario
//! models): it ranks hidden units by mean ReLU activation over clean data
//! and zeroes the incoming and outgoing weights of the lowest fraction.

use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;

/// Outcome of a pruning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Indices of the pruned hidden units.
    pub pruned_units: Vec<usize>,
    /// Mean activation of every hidden unit on the clean data (pre-pruning).
    pub activations: Vec<f64>,
    /// Model parameters after pruning.
    pub pruned_params: Vec<f32>,
}

/// Prunes the `fraction` least-activated hidden units of a
/// `ModelSpec::Mlp { hidden: [h], .. }` model.
///
/// # Panics
///
/// Panics if the spec is not a single-hidden-layer MLP, the dataset is
/// empty, or `fraction` is outside `[0, 1)`.
pub fn fine_prune(
    model: &mut Sequential,
    spec: &ModelSpec,
    clean: &Dataset,
    fraction: f64,
) -> PruneOutcome {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    assert!(!clean.is_empty(), "need clean data");
    let (input, hidden, classes) = match spec {
        ModelSpec::Mlp {
            input,
            hidden,
            classes,
        } if hidden.len() == 1 => (*input, hidden[0], *classes),
        _ => panic!("fine_prune supports single-hidden-layer MLPs"),
    };
    assert_eq!(
        clean.feature_len(),
        input,
        "dataset does not match the model input"
    );

    let mut params = model.params();
    let w1_len = hidden * input;
    let b1_off = w1_len;
    let w2_off = b1_off + hidden;
    let b2_off = w2_off + classes * hidden;
    assert_eq!(
        params.len(),
        b2_off + classes,
        "unexpected MLP parameter layout"
    );

    // Mean ReLU activation per hidden unit on the clean data, averaged over
    // a strided sample of at most 256 points. The stride spans the whole
    // dataset: taking the *first* 256 samples instead would bias unit
    // rankings on class-ordered shards (e.g. all class-0 first), and class
    // composition is exactly what drives which units look dormant.
    let mut activations = vec![0.0f64; hidden];
    let n = clean.len().min(256);
    for s in 0..n {
        let x = clean.features_of(s * clean.len() / n);
        for j in 0..hidden {
            let row = &params[j * input..(j + 1) * input];
            let mut acc = params[b1_off + j];
            for (w, &xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            // f32::max(NaN, 0.0) returns 0.0, which would disguise a unit
            // corrupted by the fault layer as a dormant one; keep the NaN
            // so the ranking below can place it deterministically.
            activations[j] += if acc.is_nan() {
                f64::NAN
            } else {
                f64::from(acc.max(0.0))
            };
        }
    }
    for a in &mut activations {
        *a /= n as f64;
    }

    // Rank ascending and prune the bottom fraction. total_cmp: the fault
    // layer can deliver non-finite params, and a NaN activation must rank
    // (above every finite value, so NaN units are pruned last), not panic.
    let mut order: Vec<usize> = (0..hidden).collect();
    order.sort_by(|&a, &b| activations[a].total_cmp(&activations[b]));
    let n_prune = ((hidden as f64) * fraction).floor() as usize;
    let pruned_units: Vec<usize> = order.into_iter().take(n_prune).collect();
    for &j in &pruned_units {
        for i in 0..input {
            params[j * input + i] = 0.0;
        }
        params[b1_off + j] = 0.0;
        for c in 0..classes {
            params[w2_off + c * hidden + j] = 0.0;
        }
    }
    model.set_params(&params);
    PruneOutcome {
        pruned_units,
        activations,
        pruned_params: params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clean_dataset(rng: &mut StdRng) -> Dataset {
        let mut ds = Dataset::empty(&[1, 4, 4], 2);
        for i in 0..80 {
            let class = i % 2;
            let base = if class == 0 { 0.25f32 } else { 0.75 };
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0))
                .collect();
            ds.push(&img, class);
        }
        ds
    }

    #[test]
    fn pruning_keeps_clean_accuracy() {
        let mut rng = StdRng::seed_from_u64(0);
        let clean = clean_dataset(&mut rng);
        let spec = ModelSpec::mlp(16, &[32], 2);
        let mut model = spec.build(&mut rng);
        let mut opt = Sgd::new(0.3);
        for _ in 0..200 {
            let (x, y) = clean.minibatch(&mut rng, 32);
            model.train_batch(&x, &y, &mut opt);
        }
        let (x, y) = clean.as_batch();
        let before = model.evaluate(&x, &y);
        let outcome = fine_prune(&mut model, &spec, &clean, 0.3);
        assert_eq!(outcome.pruned_units.len(), 9); // floor(32 * 0.3)
        let after = model.evaluate(&x, &y);
        assert!(
            after > before - 0.15,
            "pruning dormant units must keep accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn prunes_least_activated_units() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = clean_dataset(&mut rng);
        let spec = ModelSpec::mlp(16, &[8], 2);
        let mut model = spec.build(&mut rng);
        let outcome = fine_prune(&mut model, &spec, &clean, 0.25);
        assert_eq!(outcome.pruned_units.len(), 2);
        let max_pruned = outcome
            .pruned_units
            .iter()
            .map(|&j| outcome.activations[j])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_kept = (0..8)
            .filter(|j| !outcome.pruned_units.contains(j))
            .map(|j| outcome.activations[j])
            .fold(f64::INFINITY, f64::min);
        assert!(max_pruned <= min_kept + 1e-12);
    }

    #[test]
    fn pruned_units_are_dead() {
        let mut rng = StdRng::seed_from_u64(2);
        let clean = clean_dataset(&mut rng);
        let spec = ModelSpec::mlp(16, &[8], 2);
        let mut model = spec.build(&mut rng);
        let outcome = fine_prune(&mut model, &spec, &clean, 0.5);
        // The pruned rows/columns are fully zeroed.
        let params = model.params();
        for &j in &outcome.pruned_units {
            for i in 0..16 {
                assert_eq!(params[j * 16 + i], 0.0);
            }
            assert_eq!(params[8 * 16 + j], 0.0); // bias
        }
    }

    /// 384 samples, two constant per-class feature vectors. The 256-sample
    /// stride picks indices `i` with `i mod 3 != 2`, which is 128 samples
    /// of each class under BOTH a class-sorted and an interleaved layout —
    /// so the ranking must agree. The pre-fix "first 256" selection saw
    /// 192/64 vs 128/128 and ranked differently.
    fn two_class_arrangements() -> (Dataset, Dataset) {
        let class_features = |c: usize| -> Vec<f32> {
            (0..16)
                .map(|i| {
                    if c == 0 {
                        0.1 + 0.05 * i as f32
                    } else {
                        0.9 - 0.04 * i as f32
                    }
                })
                .collect()
        };
        let mut sorted = Dataset::empty(&[1, 4, 4], 2);
        for c in 0..2 {
            for _ in 0..192 {
                sorted.push(&class_features(c), c);
            }
        }
        let mut interleaved = Dataset::empty(&[1, 4, 4], 2);
        for i in 0..384 {
            interleaved.push(&class_features(i % 2), i % 2);
        }
        (sorted, interleaved)
    }

    #[test]
    fn ranking_is_invariant_to_class_ordering() {
        let (sorted, interleaved) = two_class_arrangements();
        let spec = ModelSpec::mlp(16, &[32], 2);
        let mut rng = StdRng::seed_from_u64(5);
        let reference = spec.build(&mut rng);
        let mut a = reference.clone();
        let mut b = reference.clone();
        let out_sorted = fine_prune(&mut a, &spec, &sorted, 0.25);
        let out_interleaved = fine_prune(&mut b, &spec, &interleaved, 0.25);
        assert_eq!(
            out_sorted.pruned_units, out_interleaved.pruned_units,
            "unit ranking must not depend on sample order"
        );
        assert_eq!(out_sorted.pruned_params, out_interleaved.pruned_params);
    }

    #[test]
    fn nan_params_degrade_gracefully() {
        let mut rng = StdRng::seed_from_u64(6);
        let clean = clean_dataset(&mut rng);
        let spec = ModelSpec::mlp(16, &[8], 2);
        let mut model = spec.build(&mut rng);
        // Corrupt unit 0's incoming weights the way the fault layer can.
        let mut params = model.params();
        for i in 0..16 {
            params[i] = f32::NAN;
        }
        model.set_params(&params);
        let outcome = fine_prune(&mut model, &spec, &clean, 0.25);
        assert_eq!(outcome.pruned_units.len(), 2, "still prunes the quota");
        assert!(
            !outcome.pruned_units.contains(&0),
            "NaN activations rank above finite ones and survive"
        );
        assert!(outcome.activations[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "single-hidden-layer")]
    fn rejects_deep_models() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ModelSpec::mlp(4, &[8, 8], 2);
        let mut model = spec.build(&mut rng);
        let clean = {
            let mut ds = Dataset::empty(&[4], 2);
            ds.push(&[0.0; 4], 0);
            ds
        };
        let _ = fine_prune(&mut model, &spec, &clean, 0.2);
    }
}
