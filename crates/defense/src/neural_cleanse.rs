//! Neural Cleanse [Wang et al., S&P 2019] — trigger reverse-engineering.
//!
//! For every candidate target class, optimize an additive pattern `p` and a
//! soft mask `m` such that `x' = (1−m)·x + m·p` is classified as the class
//! for (almost) all clean inputs, while keeping `‖m‖₁` minimal. A genuinely
//! backdoored class admits a *small* trigger; its mask norm stands out as a
//! low outlier under the median-absolute-deviation (MAD) rule.
//!
//! Input gradients come from
//! [`collapois_nn::model::Sequential::input_gradient`]; the mask/pattern are
//! optimized by projected gradient descent. Localized patch triggers are
//! recoverable this way; WaNet's input-*dependent* warp is not representable
//! as `(m, p)`, which is exactly why the paper's trigger evades this
//! defense.

use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_stats::descriptive::median;

/// Neural Cleanse configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanseConfig {
    /// Optimization steps per class.
    pub steps: usize,
    /// Step size for mask/pattern updates.
    pub lr: f32,
    /// Weight of the `‖m‖₁` sparsity penalty.
    pub mask_penalty: f32,
    /// Batch of clean samples used per optimization step.
    pub batch: usize,
    /// MAD anomaly-index threshold (the paper of record uses 2).
    pub anomaly_threshold: f64,
}

impl Default for CleanseConfig {
    fn default() -> Self {
        Self {
            steps: 150,
            lr: 0.5,
            mask_penalty: 0.05,
            batch: 24,
            anomaly_threshold: 2.0,
        }
    }
}

/// Per-class reverse-engineering outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassTrigger {
    /// The candidate target class.
    pub class: usize,
    /// l1 norm of the optimized mask (the outlier statistic).
    pub mask_l1: f64,
    /// Fraction of clean inputs flipped to `class` by the optimized trigger.
    pub flip_rate: f64,
}

/// Full Neural Cleanse report.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanseReport {
    /// One entry per class.
    pub triggers: Vec<ClassTrigger>,
    /// Classes whose mask norm is an anomalously *low* outlier.
    pub flagged_classes: Vec<usize>,
    /// The MAD-based anomaly index of each class.
    pub anomaly_index: Vec<f64>,
}

/// Runs Neural Cleanse against `model` using `clean` data.
///
/// # Panics
///
/// Panics if `clean` is empty.
pub fn neural_cleanse(
    model: &mut Sequential,
    clean: &Dataset,
    cfg: &CleanseConfig,
) -> CleanseReport {
    assert!(!clean.is_empty(), "need clean data");
    let dim = clean.feature_len();
    let classes = clean.num_classes();
    let mut triggers = Vec::with_capacity(classes);
    for class in 0..classes {
        triggers.push(reverse_engineer(model, clean, class, dim, cfg));
    }

    // MAD outlier detection on the mask norms (low side only).
    let norms: Vec<f64> = triggers.iter().map(|t| t.mask_l1).collect();
    let med = median(&norms);
    let deviations: Vec<f64> = norms.iter().map(|n| (n - med).abs()).collect();
    let mad = median(&deviations).max(1e-9);
    // 1.4826 makes MAD consistent with the std of a normal distribution.
    let anomaly_index: Vec<f64> = norms.iter().map(|n| (med - n) / (1.4826 * mad)).collect();
    let flagged_classes: Vec<usize> = anomaly_index
        .iter()
        .enumerate()
        .filter(|(i, &a)| a > cfg.anomaly_threshold && triggers[*i].flip_rate > 0.75)
        .map(|(i, _)| i)
        .collect();
    CleanseReport {
        triggers,
        flagged_classes,
        anomaly_index,
    }
}

/// Optimizes `(mask, pattern)` flipping clean inputs to `class`.
fn reverse_engineer(
    model: &mut Sequential,
    clean: &Dataset,
    class: usize,
    dim: usize,
    cfg: &CleanseConfig,
) -> ClassTrigger {
    // Parameterize mask in [0,1] directly with projection (simpler than the
    // tanh reparameterization and adequate at this scale).
    let mut mask = vec![0.3f32; dim];
    let mut pattern = vec![0.5f32; dim];

    for step in 0..cfg.steps {
        // Deterministic rotating batch.
        let start = (step * cfg.batch) % clean.len();
        let idx: Vec<usize> = (0..cfg.batch.min(clean.len()))
            .map(|k| (start + k) % clean.len())
            .collect();
        let (x, _) = clean.batch_of(&idx);
        let n = x.batch();
        // Apply trigger: x' = (1−m)x + m·p.
        let mut stamped = x.clone();
        for s in 0..n {
            let row = stamped.sample_mut(s);
            for ((v, &m), &p) in row.iter_mut().zip(&mask).zip(&pattern) {
                *v = (1.0 - m) * *v + m * p;
            }
        }
        let labels = vec![class; n];
        let (gx, _) = model.input_gradient(&stamped, &labels);
        // Chain rule: dL/dm_j = Σ_batch gx_j · (p_j − x_j); dL/dp_j = Σ gx_j · m_j.
        let mut gm = vec![0.0f32; dim];
        let mut gp = vec![0.0f32; dim];
        for s in 0..n {
            let grow = gx.sample(s);
            let xrow = x.sample(s);
            for j in 0..dim {
                gm[j] += grow[j] * (pattern[j] - xrow[j]);
                gp[j] += grow[j] * mask[j];
            }
        }
        for j in 0..dim {
            // Loss + sparsity penalty on the mask.
            mask[j] = (mask[j] - cfg.lr * (gm[j] + cfg.mask_penalty)).clamp(0.0, 1.0);
            pattern[j] = (pattern[j] - cfg.lr * gp[j]).clamp(0.0, 1.0);
        }
    }

    // Evaluate the optimized trigger.
    let eval_n = clean.len().min(64);
    let idx: Vec<usize> = (0..eval_n).collect();
    let (x, _) = clean.batch_of(&idx);
    let mut stamped = x.clone();
    for s in 0..eval_n {
        let row = stamped.sample_mut(s);
        for ((v, &m), &p) in row.iter_mut().zip(&mask).zip(&pattern) {
            *v = (1.0 - m) * *v + m * p;
        }
    }
    let preds = model.predict(&stamped);
    let flip_rate = preds.iter().filter(|&&p| p == class).count() as f64 / eval_n.max(1) as f64;
    let mask_l1: f64 = mask.iter().map(|&m| m as f64).sum();
    ClassTrigger {
        class,
        mask_l1,
        flip_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::optim::Sgd;
    use collapois_nn::zoo::ModelSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Model with a strong patch backdoor into class 0.
    fn backdoored_model() -> (Sequential, Dataset) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut clean = Dataset::empty(&[1, 4, 4], 3);
        for i in 0..90 {
            let class = i % 3;
            let base = 0.2 + 0.3 * class as f32;
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.08..0.08f32)).clamp(0.0, 1.0))
                .collect();
            clean.push(&img, class);
        }
        let mut train = clean.clone();
        for i in 0..clean.len() {
            let mut img = clean.features_of(i).to_vec();
            img[15] = 1.0; // single saturated corner pixel
            img[14] = 1.0;
            train.push(&img, 0);
        }
        let spec = ModelSpec::mlp(16, &[24], 3);
        let mut model = spec.build(&mut rng);
        let mut opt = Sgd::new(0.3);
        for _ in 0..400 {
            let (x, y) = train.minibatch(&mut rng, 32);
            model.train_batch(&x, &y, &mut opt);
        }
        (model, clean)
    }

    #[test]
    fn recovers_small_trigger_for_backdoored_class() {
        let (mut model, clean) = backdoored_model();
        let report = neural_cleanse(&mut model, &clean, &CleanseConfig::default());
        let t0 = &report.triggers[0];
        assert!(
            t0.flip_rate > 0.8,
            "reverse-engineered trigger must flip to class 0: {}",
            t0.flip_rate
        );
        // The backdoored class admits the smallest mask.
        let min_other = report.triggers[1..]
            .iter()
            .map(|t| t.mask_l1)
            .fold(f64::INFINITY, f64::min);
        assert!(
            t0.mask_l1 < min_other,
            "class 0 mask {} should be smallest (others min {})",
            t0.mask_l1,
            min_other
        );
    }

    #[test]
    fn clean_model_flags_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut clean = Dataset::empty(&[1, 4, 4], 3);
        for i in 0..90 {
            let class = i % 3;
            let base = 0.2 + 0.3 * class as f32;
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.08..0.08f32)).clamp(0.0, 1.0))
                .collect();
            clean.push(&img, class);
        }
        let spec = ModelSpec::mlp(16, &[24], 3);
        let mut model = spec.build(&mut rng);
        let mut opt = Sgd::new(0.3);
        for _ in 0..300 {
            let (x, y) = clean.minibatch(&mut rng, 32);
            model.train_batch(&x, &y, &mut opt);
        }
        let report = neural_cleanse(&mut model, &clean, &CleanseConfig::default());
        // Symmetric classes: no anomalously small mask.
        assert!(
            report.flagged_classes.is_empty(),
            "clean model flagged: {:?} (anomaly {:?})",
            report.flagged_classes,
            report.anomaly_index
        );
    }
}
