//! Inference-phase backdoor defenses.
//!
//! The paper (§II-B) selects the WaNet warping trigger precisely because it
//! "evades commonly used detection methods like Neural Cleanse,
//! Fine-Pruning, and STRIP". This crate implements those three classical
//! defenses so that claim can be evaluated in-repo:
//!
//! * [`strip`] — STRIP [Gao et al., ACSAC 2019]: superimpose clean samples
//!   onto the input and measure prediction entropy; trigger-dominated inputs
//!   keep a low entropy under perturbation.
//! * [`neural_cleanse`] — Neural Cleanse [Wang et al., S&P 2019]: for each
//!   class, optimize a minimal additive pattern + mask that flips all inputs
//!   to that class; an anomalously small pattern norm flags a backdoored
//!   class (detected via the median-absolute-deviation outlier rule).
//! * [`fine_pruning`] — Fine-Pruning [Liu et al., RAID 2018]: prune the
//!   hidden units least activated by clean data (where patch-style backdoors
//!   hide), then measure how much of the backdoor survives.
//!
//! These defenses detect *localized, input-agnostic* perturbations; WaNet's
//! smooth per-pixel warp has neither property, which is why it slips
//! through — a shape the `inference_defenses` bench target reproduces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fine_pruning;
pub mod neural_cleanse;
pub mod strip;

pub use fine_pruning::{fine_prune, PruneOutcome};
pub use neural_cleanse::{neural_cleanse, CleanseConfig, CleanseReport};
pub use strip::{strip_score, StripConfig, StripReport};
