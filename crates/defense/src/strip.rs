//! STRIP [Gao et al., ACSAC 2019] — perturbation-entropy backdoor
//! screening.
//!
//! For a suspect input, STRIP blends it with many clean samples and looks at
//! the entropy of the model's predictions. A clean input, once perturbed,
//! yields uncertain (high-entropy) predictions. A strongly triggered input
//! keeps being classified as the target class — low entropy — because the
//! (localized) trigger survives the blend. Inputs whose mean entropy falls
//! below a threshold calibrated on clean data are flagged.

use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_nn::tensor::Tensor;
use collapois_stats::descriptive::{mean, quantile};
use rand::Rng;

/// STRIP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripConfig {
    /// Number of clean samples blended onto each suspect input.
    pub overlays: usize,
    /// Blend weight of the overlay (`x' = (1−w)·x + w·overlay`).
    pub blend: f32,
    /// False-positive budget used to calibrate the entropy threshold on the
    /// clean distribution (e.g. 0.05 = flag the lowest 5 % of clean inputs).
    pub fpr: f64,
}

impl Default for StripConfig {
    fn default() -> Self {
        Self {
            overlays: 16,
            blend: 0.5,
            fpr: 0.05,
        }
    }
}

/// Result of screening a batch of suspect samples.
#[derive(Debug, Clone, PartialEq)]
pub struct StripReport {
    /// Mean perturbation entropy of each suspect sample.
    pub entropies: Vec<f64>,
    /// Entropy threshold calibrated on the clean set.
    pub threshold: f64,
    /// Indices of flagged (entropy < threshold) samples.
    pub flagged: Vec<usize>,
}

impl StripReport {
    /// Fraction of suspect inputs flagged as backdoored.
    pub fn detection_rate(&self) -> f64 {
        if self.entropies.is_empty() {
            return 0.0;
        }
        self.flagged.len() as f64 / self.entropies.len() as f64
    }
}

/// Mean prediction entropy of `sample` under `cfg.overlays` random clean
/// overlays.
pub fn strip_score<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut Sequential,
    sample: &[f32],
    clean: &Dataset,
    cfg: &StripConfig,
) -> f64 {
    assert!(!clean.is_empty(), "need clean overlay data");
    let mut entropies = Vec::with_capacity(cfg.overlays);
    for _ in 0..cfg.overlays {
        let overlay = clean.features_of(rng.gen_range(0..clean.len()));
        let blended: Vec<f32> = sample
            .iter()
            .zip(overlay)
            .map(|(x, o)| (1.0 - cfg.blend) * x + cfg.blend * o)
            .collect();
        let mut shape = vec![1usize];
        shape.extend_from_slice(clean.sample_shape());
        let t = Tensor::from_vec(blended, &shape);
        let probs = model.predict_proba(&t);
        let h: f64 = probs
            .row(0)
            .iter()
            .map(|&p| {
                let p = p.max(1e-12) as f64;
                -p * p.ln()
            })
            .sum();
        entropies.push(h);
    }
    mean(&entropies)
}

/// Screens `suspects` against the entropy distribution of `clean` samples.
///
/// # Panics
///
/// Panics if `clean` is empty or `cfg.fpr` is outside `(0, 1)`.
pub fn strip_screen<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut Sequential,
    suspects: &Dataset,
    clean: &Dataset,
    cfg: &StripConfig,
) -> StripReport {
    assert!(cfg.fpr > 0.0 && cfg.fpr < 1.0, "fpr must be in (0,1)");
    assert!(!clean.is_empty(), "need clean calibration data");
    // Calibrate the threshold on clean inputs.
    let clean_scores: Vec<f64> = (0..clean.len().min(64))
        .map(|i| strip_score(rng, model, clean.features_of(i), clean, cfg))
        .collect();
    let threshold = quantile(&clean_scores, cfg.fpr);

    let entropies: Vec<f64> = (0..suspects.len())
        .map(|i| strip_score(rng, model, suspects.features_of(i), clean, cfg))
        .collect();
    let flagged: Vec<usize> = entropies
        .iter()
        .enumerate()
        .filter(|(_, &h)| h < threshold)
        .map(|(i, _)| i)
        .collect();
    StripReport {
        entropies,
        threshold,
        flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::optim::Sgd;
    use collapois_nn::zoo::ModelSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A model trained so that a saturated corner patch forces class 0.
    fn backdoored_setup() -> (Sequential, Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(0);
        // 2 clean classes: low vs high mean intensity, 4x4 images.
        let mut clean = Dataset::empty(&[1, 4, 4], 2);
        for i in 0..60 {
            let class = i % 2;
            let base = if class == 0 { 0.25f32 } else { 0.75 };
            let img: Vec<f32> = (0..16)
                .map(|_| (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0))
                .collect();
            clean.push(&img, class);
        }
        // Poisoned copies: bright 2x2 patch, label 0.
        let mut poisoned = Dataset::empty(&[1, 4, 4], 2);
        for i in 0..clean.len() {
            let mut img = clean.features_of(i).to_vec();
            img[0] = 1.0;
            img[1] = 1.0;
            img[4] = 1.0;
            img[5] = 1.0;
            poisoned.push(&img, 0);
        }
        let mut train = clean.clone();
        train.extend_from(&poisoned);
        let spec = ModelSpec::mlp(16, &[16], 2);
        let mut model = spec.build(&mut rng);
        let mut opt = Sgd::new(0.3);
        for _ in 0..300 {
            let (x, y) = train.minibatch(&mut rng, 32);
            model.train_batch(&x, &y, &mut opt);
        }
        (model, clean, poisoned)
    }

    #[test]
    fn triggered_inputs_have_lower_entropy() {
        let (mut model, clean, poisoned) = backdoored_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = StripConfig::default();
        let clean_h: Vec<f64> = (0..10)
            .map(|i| strip_score(&mut rng, &mut model, clean.features_of(i), &clean, &cfg))
            .collect();
        let poison_h: Vec<f64> = (0..10)
            .map(|i| strip_score(&mut rng, &mut model, poisoned.features_of(i), &clean, &cfg))
            .collect();
        assert!(
            mean(&poison_h) < mean(&clean_h),
            "patch-triggered inputs must keep low entropy: {} vs {}",
            mean(&poison_h),
            mean(&clean_h)
        );
    }

    #[test]
    fn screen_flags_patch_trigger() {
        let (mut model, clean, poisoned) = backdoored_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = StripConfig {
            fpr: 0.2,
            ..Default::default()
        };
        let suspects = poisoned.subset(&(0..20).collect::<Vec<_>>());
        let report = strip_screen(&mut rng, &mut model, &suspects, &clean, &cfg);
        assert!(
            report.detection_rate() > 0.3,
            "patch trigger should be caught: rate={}",
            report.detection_rate()
        );
    }

    #[test]
    fn empty_suspects_yield_empty_report() {
        let (mut model, clean, _) = backdoored_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let suspects = Dataset::empty(&[1, 4, 4], 2);
        let report = strip_screen(
            &mut rng,
            &mut model,
            &suspects,
            &clean,
            &StripConfig::default(),
        );
        assert_eq!(report.detection_rate(), 0.0);
        assert!(report.flagged.is_empty());
    }
}
