//! Fig. 6 — attack stealthiness: angles between malicious/benign gradients
//! and a set of sampled background gradients (FEMNIST-sim, ψ ~ U[0.95, 0.99]
//! with a shared clipping bound).
//!
//! Paper shape: compromised clients' angle statistics (mean and variance)
//! blend into the benign clients' — the two groups are "blended and
//! modestly different".

use collapois_bench::{num, Scale, Table};
use collapois_core::analysis::split_updates;
use collapois_core::collapois::CollaPoisConfig;
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_core::stealth::gradient_features;
use collapois_stats::descriptive::Summary;

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.1));
    cfg.attack = AttackKind::CollaPois;
    // The paper's stealth configuration: narrow psi plus clipping into the
    // benign magnitude range.
    cfg.collapois = CollaPoisConfig {
        psi_low: 0.95,
        psi_high: 0.99,
        clip_bound: Some(0.8),
        min_norm: None,
    };
    cfg.collect_updates = true;
    cfg.rounds = cfg.rounds.max(20);
    cfg.eval_every = cfg.rounds;
    cfg.seed = 606;
    let report = collapois_bench::run_scenario(cfg);

    // Background = benign updates of even rounds; measured groups come from
    // odd rounds (disjoint samples, mimicking the attacker's sampled clean
    // gradients).
    let mut background = Vec::new();
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        let (b, m) = split_updates(updates, &report.compromised);
        if r.round % 2 == 0 {
            background.extend(b);
        } else {
            benign.extend(b);
            malicious.extend(m);
        }
    }
    let bf = gradient_features(&benign, &background).expect("benign features");
    let mf = gradient_features(&malicious, &background).expect("malicious features");
    let bs = Summary::of(&bf.angles);
    let ms = Summary::of(&mf.angles);
    let bm = Summary::of(&bf.magnitudes);
    let mm = Summary::of(&mf.magnitudes);

    let mut table = Table::new(&[
        "group",
        "mean angle (deg)",
        "angle std",
        "mean |grad|",
        "|grad| std",
    ]);
    table.row(&[
        "benign".into(),
        num(bs.mean.to_degrees(), 2),
        num(bs.std.to_degrees(), 2),
        num(bm.mean, 4),
        num(bm.std, 4),
    ]);
    table.row(&[
        "compromised".into(),
        num(ms.mean.to_degrees(), 2),
        num(ms.std.to_degrees(), 2),
        num(mm.mean, 4),
        num(mm.std, 4),
    ]);
    table.print("Fig. 6: angles/magnitudes of malicious vs benign gradients against sampled background (psi~U[0.95,0.99], clipped)");
    println!(
        "\nPaper shape: the compromised group's mean angle and variance sit within the\n\
         benign group's range — malicious gradients blend into the background."
    );
}
