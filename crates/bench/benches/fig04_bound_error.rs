//! Fig. 4 — accuracy of the attacker's Theorem 1 estimate as a function of
//! α (FEMNIST-sim).
//!
//! The attacker estimates the benign-angle statistics `(μ_α, σ)` from the
//! first ten training rounds and plugs them into Eq. 5; the reference uses
//! the full run. The paper reports the relative error of the resulting |C|
//! bound: small (≈2.2 % at α = 0.01, ≈0.6 % at α = 100) but growing as α
//! shrinks.
//!
//! At this simulation scale the measured benign angles sit near 90° —
//! `2 − σ² − μ_α² < 0`, so Eq. 5's bound is 0 ("any coordinated set
//! succeeds") at every α, and the |C|-relative error is degenerate. The
//! table therefore reports the attacker's relative error on μ_α itself (the
//! quantity whose estimate drives the bound) next to the implied bound and
//! the Hoeffding half-width, preserving the figure's question: *how fast
//! can the attacker estimate the diversity statistics, and how does α
//! affect it?*

use collapois_bench::{num, pct, Scale, Table};
use collapois_core::analysis::split_updates;
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_core::theory::theorem1::{estimate_angle_stats, theorem1_bound};
use collapois_stats::geometry::{angles_to_reference, mean_vector};
use collapois_stats::hoeffding;

fn main() {
    let scale = Scale::from_env();
    let alphas = [0.01, 0.1, 1.0, 10.0, 100.0];
    let mut table = Table::new(&[
        "alpha",
        "mu (deg, full run)",
        "mu error (first 10 rounds)",
        "sigma error",
        "implied |C| bound",
        "hoeffding eps (deg)",
    ]);
    for &alpha in &alphas {
        let mut cfg = scale.apply(ScenarioConfig::quick_image(alpha, 0.1));
        cfg.attack = AttackKind::CollaPois;
        cfg.collect_updates = true;
        cfg.rounds = cfg.rounds.max(30);
        cfg.eval_every = cfg.rounds;
        cfg.seed = 404;
        let n = cfg.num_clients;
        let (a, b) = (cfg.collapois.psi_low, cfg.collapois.psi_high);
        let report = collapois_bench::run_scenario(cfg);

        let mut early = Vec::new();
        let mut all = Vec::new();
        for r in &report.records {
            let Some(updates) = &r.updates else { continue };
            let (benign, malicious) = split_updates(updates, &report.compromised);
            let Some(mal_dir) = mean_vector(&malicious) else {
                continue;
            };
            let angles = angles_to_reference(&benign, &mal_dir);
            if r.round < 10 {
                early.extend(angles.iter().copied());
            }
            all.extend(angles);
        }
        if early.len() < 2 || all.len() < 2 {
            table.row(&[
                format!("{alpha}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let sample = estimate_angle_stats(&early);
        let truth = estimate_angle_stats(&all);
        let mu_err = ((sample.mu - truth.mu) / truth.mu).abs();
        let sigma_err = if truth.sigma > 1e-9 {
            ((sample.sigma - truth.sigma) / truth.sigma).abs()
        } else {
            0.0
        };
        let bound = theorem1_bound(sample.mu, sample.sigma, a, b, n);
        let eps = hoeffding::deviation(early.len(), 0.0, std::f64::consts::PI, 0.05);
        table.row(&[
            format!("{alpha}"),
            num(truth.mu.to_degrees(), 2),
            pct(mu_err),
            pct(sigma_err),
            num(bound, 2),
            num(eps.to_degrees(), 2),
        ]);
    }
    table.print("Fig. 4: attacker's Theorem 1 estimation error vs alpha (FEMNIST-sim, first 10 rounds vs full run)");
    println!(
        "\nPaper shape: the estimate from <10 rounds is within a few percent of the\n\
         full-run statistics, with the error growing as alpha shrinks. At this scale\n\
         the measured mu exceeds sqrt(2) rad, so Eq. 5's bound is 0 at every alpha\n\
         (any coordinated cohort suffices in the worst-case model)."
    );
}
