//! Ablation — the dynamic-rate range `ψ ~ U[a,b]` and the shared clipping
//! bound `A` trade attack speed against stealth (§IV-D).
//!
//! Wider/lower ψ ranges slow convergence toward X; tighter clipping bounds
//! shrink malicious magnitudes into the benign band (lower 3σ flag rate) at
//! the cost of pull strength per round.

use collapois_bench::{pct, Scale, Table};
use collapois_core::analysis::split_updates;
use collapois_core::collapois::CollaPoisConfig;
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_core::stealth::stealth_battery;

fn run(collapois: CollaPoisConfig) -> (f64, f64, f64) {
    let scale = Scale::from_env();
    let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.05));
    cfg.attack = AttackKind::CollaPois;
    cfg.collapois = collapois;
    cfg.collect_updates = true;
    cfg.seed = 4242;
    let report = collapois_bench::run_scenario(cfg);
    let last = report.final_round();

    let mut background = Vec::new();
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        let (b, m) = split_updates(updates, &report.compromised);
        if r.round % 2 == 0 {
            background.extend(b);
        } else {
            benign.extend(b);
            malicious.extend(m);
        }
    }
    let flag_rate = stealth_battery(&benign, &malicious, &background)
        .map(|rep| rep.three_sigma_rate)
        .unwrap_or(f64::NAN);
    (last.benign_accuracy, last.attack_success_rate, flag_rate)
}

fn main() {
    let mut table = Table::new(&[
        "psi range",
        "clip bound",
        "benign ac",
        "attack sr",
        "3-sigma flag rate",
    ]);
    let cases = [
        (0.5, 0.6, None),
        (0.9, 1.0, None),
        (0.95, 0.99, None),
        (0.9, 1.0, Some(1.0)),
        (0.9, 1.0, Some(0.5)),
        (0.95, 0.99, Some(0.8)),
    ];
    for (a, b, clip) in cases {
        let cfg = CollaPoisConfig {
            psi_low: a,
            psi_high: b,
            clip_bound: clip,
            min_norm: None,
        };
        let (ac, sr, flag) = run(cfg);
        table.row(&[
            format!("U[{a}, {b}]"),
            clip.map(|c| format!("{c}")).unwrap_or_else(|| "-".into()),
            pct(ac),
            pct(sr),
            if flag.is_nan() { "-".into() } else { pct(flag) },
        ]);
    }
    table
        .print("Ablation: psi range and clipping bound vs effectiveness and stealth (FEMNIST-sim)");
    println!(
        "\nReading: the paper's U[0.9,1] keeps the pull strong; narrowing psi and adding\n\
         the clip bound suppresses the 3-sigma flag rate while preserving Attack SR."
    );
}
