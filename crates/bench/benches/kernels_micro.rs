//! Micro-benchmarks of the blocked kernels against the naive reference
//! oracle (`collapois_nn::kernels::{blocked, reference}`) and of the
//! explicit-SIMD tier against blocked (`kernels::simd`; on hosts without
//! AVX2 the simd rows delegate to blocked, so they read as parity).
//!
//! These back the kernel-layer PRs' acceptance numbers: the blocked matmul
//! must beat the reference by ≥2× at 256×256×256 and the Krum pairwise
//! squared-distance matrix by ≥1.5× at 20 clients × 10k parameters; the
//! SIMD tier must beat blocked by ≥2× on at least one of matmul, axpy or
//! krum_pairwise on an AVX2 host. The quant group measures the f16/int8
//! client-update codec round-trip bandwidth.

use collapois_fl::quant::Quantization;
use collapois_nn::kernels::{blocked, reference, simd};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn randvec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_matmul(c: &mut Criterion) {
    let (m, k, n) = (256, 256, 256);
    let mut rng = StdRng::seed_from_u64(1);
    let a = randvec(&mut rng, m * k);
    let b = randvec(&mut rng, k * n);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("matmul_256x256x256");
    group.bench_function("blocked", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            blocked::matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            black_box(&out);
        });
    });
    group.bench_function("simd", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            simd::matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            black_box(&out);
        });
    });
    group.bench_function("reference", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            reference::matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            black_box(&out);
        });
    });
    group.finish();
}

fn bench_krum_pairwise(c: &mut Criterion) {
    // 20 clients × 10k parameters: the server-side Krum distance matrix.
    let (clients, dim) = (20, 10_000);
    let mut rng = StdRng::seed_from_u64(2);
    let vs: Vec<Vec<f32>> = (0..clients).map(|_| randvec(&mut rng, dim)).collect();
    let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();

    let mut group = c.benchmark_group("krum_pairwise_20x10k");
    group.bench_function("blocked", |bch| {
        bch.iter(|| black_box(blocked::pairwise_sq_distances(black_box(&refs))));
    });
    group.bench_function("simd", |bch| {
        bch.iter(|| black_box(simd::pairwise_sq_distances(black_box(&refs))));
    });
    group.bench_function("reference", |bch| {
        bch.iter(|| black_box(reference::pairwise_sq_distances(black_box(&refs))));
    });
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    // The element-wise update applied once per client per merge in the
    // pooled tree-reduction aggregators: y += alpha * x over a
    // full-model-sized vector.
    let dim = 100_000;
    let mut rng = StdRng::seed_from_u64(4);
    let x = randvec(&mut rng, dim);
    let mut y = randvec(&mut rng, dim);

    let mut group = c.benchmark_group("axpy_100k");
    group.bench_function("blocked", |bch| {
        bch.iter(|| {
            blocked::axpy(&mut y, black_box(1.000001f32), black_box(&x));
            black_box(&y);
        });
    });
    group.bench_function("simd", |bch| {
        bch.iter(|| {
            simd::axpy(&mut y, black_box(1.000001f32), black_box(&x));
            black_box(&y);
        });
    });
    group.finish();
}

fn bench_quant_roundtrip(c: &mut Criterion) {
    // Transport-codec bandwidth: one encode/decode round-trip of a
    // full-model-sized client delta, as the server applies it per
    // accepted update.
    let dim = 100_000;
    let mut rng = StdRng::seed_from_u64(5);
    let delta = randvec(&mut rng, dim);
    let mut buf = delta.clone();

    let mut group = c.benchmark_group("quant_roundtrip_100k");
    for codec in [Quantization::F16, Quantization::Int8] {
        group.bench_function(codec.name(), |bch| {
            bch.iter(|| {
                buf.copy_from_slice(&delta);
                codec.roundtrip_inplace(black_box(&mut buf));
                black_box(&buf);
            });
        });
    }
    group.finish();
}

fn bench_trimmed_mean(c: &mut Criterion) {
    // Coordinate-wise trimming at β = 0.2. At 20 values per coordinate the
    // blocked kernel's small-`n` cutoff makes it sort like the reference
    // (parity expected); at 5000 the partial-select path kicks in.
    for (clients, dim) in [(20usize, 10_000usize), (5_000, 100)] {
        let trim = clients / 5;
        let mut rng = StdRng::seed_from_u64(3);
        let columns: Vec<Vec<f32>> = (0..dim).map(|_| randvec(&mut rng, clients)).collect();
        let mut scratch = vec![0.0f32; clients];

        let name = format!("trimmed_mean_{clients}x{dim}");
        let mut group = c.benchmark_group(&name);
        group.bench_function("blocked", |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                for col in &columns {
                    scratch.copy_from_slice(col);
                    acc += blocked::trimmed_mean_inplace(&mut scratch, trim);
                }
                black_box(acc)
            });
        });
        group.bench_function("reference", |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                for col in &columns {
                    scratch.copy_from_slice(col);
                    acc += reference::trimmed_mean_inplace(&mut scratch, trim);
                }
                black_box(acc)
            });
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_matmul,
    bench_krum_pairwise,
    bench_axpy,
    bench_quant_roundtrip,
    bench_trimmed_mean
);
criterion_main!(benches);
