//! Fig. 7 — the server's estimation error of the Trojaned model X over
//! training rounds (p = 1, FEMNIST-sim) for several compromised fractions.
//!
//! With perfect detection precision the server averages the compromised
//! clients' submitted models `θ^t + Δθ_c` into an estimate X'. CollaPois
//! keeps `‖X' − X‖₂` bounded away from zero by upscaling tiny malicious
//! deltas to the constant τ = 2 — the paper's "error stabilizes at a
//! controlled lower bound" after convergence.

use collapois_bench::{num, Scale, Table};
use collapois_core::analysis::split_updates;
use collapois_core::collapois::CollaPoisConfig;
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_core::theory::theorem3::{estimation_error, lower_bound};

fn main() {
    let scale = Scale::from_env();
    let fracs = [0.01, 0.05, 0.1];
    let mut table = Table::new(&["frac", "round", "||X' - X||", "theorem 3 lower bound"]);
    for &frac in &fracs {
        let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, frac));
        cfg.attack = AttackKind::CollaPois;
        cfg.collapois = CollaPoisConfig {
            min_norm: Some(2.0),
            ..CollaPoisConfig::paper()
        };
        cfg.collect_updates = true;
        cfg.rounds = cfg.rounds.max(30);
        cfg.eval_every = cfg.rounds;
        cfg.seed = 707;
        let b = cfg.collapois.psi_high;
        let report = collapois_bench::run_scenario(cfg);
        let x = &report.trojan.as_ref().expect("X trained").params;

        let mut printed = 0;
        for r in &report.records {
            if r.num_malicious == 0 || r.round % 5 != 0 {
                continue;
            }
            let (Some(updates), Some(theta)) = (&r.updates, &r.global_before) else {
                continue;
            };
            let (_, malicious) = split_updates(updates, &report.compromised);
            if malicious.is_empty() {
                continue;
            }
            // With p = 1 the flagged clients' models are the global θ^t they
            // hold, so the estimation error is ‖θ^t − X‖ (Theorem 3's
            // algebra; see tests/theory_validation.rs).
            let err = estimation_error(&[theta.as_slice()], x);
            let lb = lower_bound(&malicious, 1.0, malicious.len(), b);
            table.row(&[
                format!("{:.0}%", 100.0 * frac),
                format!("{}", r.round),
                num(err, 4),
                num(lb, 4),
            ]);
            printed += 1;
        }
        if printed == 0 {
            table.row(&[
                format!("{:.0}%", 100.0 * frac),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    table.print("Fig. 7: server's estimation error of X over rounds (p=1, tau=2, FEMNIST-sim)");
    println!(
        "\nPaper shape: the error shrinks early, then stabilizes at a floor controlled\n\
         by the tau=2 upscaling — the server never pins X down exactly."
    );
}
