//! Ablation — the §VI "semi-ready" targeted variant: duty-cycled or delayed
//! activation trades attack speed for an even smaller poisoning footprint.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{auxiliary_data, Scenario, ScenarioConfig};
use collapois_core::targeted::{ActivationPolicy, TargetedCollaPois};
use collapois_core::trojan::train_trojan;
use collapois_data::federated::FederatedDataset;
use collapois_fl::config::FlConfig;
use collapois_fl::metrics::{evaluate_clients, population};
use collapois_fl::personalize::NoPersonalization;
use collapois_fl::server::FlServer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let base = scale.apply(ScenarioConfig::quick_image(0.1, 0.05));
    let spec = base.model_spec();
    let trigger = base.build_trigger();

    // Build the shared data/trojan once so the policies are compared on
    // identical footing.
    let dataset = Scenario::new(base.clone()).generate_dataset();
    let mut rng = StdRng::seed_from_u64(base.seed ^ 0x5CE0);
    let fed = FederatedDataset::build(&mut rng, &dataset, base.num_clients, base.alpha);
    let mut ids: Vec<usize> = (0..base.num_clients).collect();
    ids.shuffle(&mut rng);
    let mut compromised: Vec<usize> = ids.into_iter().take(base.num_compromised()).collect();
    compromised.sort_unstable();
    let aux = auxiliary_data(&fed, &compromised);
    let x = train_trojan(&spec, &aux, trigger.as_ref(), &base.trojan);

    let policies = [
        ("every round", ActivationPolicy::EveryNth { period: 1 }),
        ("every 2nd", ActivationPolicy::EveryNth { period: 2 }),
        ("every 5th", ActivationPolicy::EveryNth { period: 5 }),
        (
            "after T/2",
            ActivationPolicy::After {
                start: base.rounds / 2,
            },
        ),
    ];
    let mut table = Table::new(&["activation", "rounds attacked", "benign ac", "attack sr"]);
    for (label, policy) in policies {
        let fl_cfg = FlConfig {
            model: spec.clone(),
            rounds: base.rounds,
            local_steps: base.local_steps,
            batch_size: base.batch_size,
            client_lr: base.client_lr,
            server_lr: base.server_lr,
            sample_rate: base.sample_rate,
            seed: base.seed,
            eval_every: base.eval_every,
            quantization: base.quantization,
        };
        let mut server = FlServer::new(
            fl_cfg,
            fed.clone(),
            Box::new(collapois_fl::aggregate::FedAvg::new()),
            Box::new(NoPersonalization::new()),
        );
        let mut adv = TargetedCollaPois::new(
            compromised.clone(),
            x.params.clone(),
            base.collapois,
            policy,
        );
        for _ in 0..base.rounds {
            server.run_round(Some(&mut adv));
        }
        let global = server.global().to_vec();
        let metrics = evaluate_clients(
            server.dataset(),
            &spec,
            |_| global.clone(),
            &collapois_data::poison::TriggerBackdoor(trigger.as_ref()),
            base.trojan.target_class,
            &compromised,
        );
        let pop = population(&metrics);
        table.row(&[
            label.into(),
            format!("{}", adv.attacked_rounds().len()),
            pct(pop.benign_ac),
            pct(pop.attack_sr),
        ]);
    }
    table.print("Ablation: targeted (semi-ready) activation policies (CollaPois, FEMNIST-sim)");
    println!(
        "\nReading: sparser activation lowers the poisoning footprint; the backdoor\n\
         still lands once the pull rounds accumulate (the paper's SS VI escalation)."
    );
}
