//! Fig. 1 (and the §III motivation) — existing attacks barely improve when
//! the compromised fraction grows from 0.1 % to 1 % across non-IID levels.
//!
//! DPois and MRepl on the Sentiment-sim dataset under FedAvg: the paper's
//! point is the *flatness* — Attack SR changes only modestly with both the
//! compromised fraction and the Dirichlet α, because scattered malicious
//! gradients dilute regardless.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, ScenarioConfig};

fn main() {
    let scale = Scale::from_env();
    let alphas = [0.01, 1.0, 100.0];
    let fracs = [0.001, 0.01];
    let mut table = Table::new(&["attack", "compromised", "alpha", "benign ac", "attack sr"]);
    for attack in [AttackKind::DPois, AttackKind::MRepl] {
        for &frac in &fracs {
            for &alpha in &alphas {
                let mut cfg = scale.apply(ScenarioConfig::quick_text(alpha, frac));
                cfg.attack = attack;
                cfg.seed = 1001;
                let report = collapois_bench::run_scenario(cfg);
                let last = report.final_round();
                table.row(&[
                    attack.name().into(),
                    format!("{:.1}% ({})", 100.0 * frac, report.compromised.len()),
                    format!("{alpha}"),
                    pct(last.benign_accuracy),
                    pct(last.attack_success_rate),
                ]);
            }
        }
    }
    table.print(
        "Fig. 1: DPois and MRepl show modest changes with 0.1% vs 1% compromised (Sentiment-sim, FedAvg)",
    );
    println!(
        "\nPaper shape: Attack SR stays low and nearly flat across alpha and across the\n\
         0.1% -> 1% compromised range for both existing attacks."
    );
}
