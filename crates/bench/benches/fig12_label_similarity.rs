//! Fig. 12 — label-distribution proximity to the attacker's auxiliary data
//! explains which clients are most at risk.
//!
//! Clients are split into the paper's exclusive 1 %-, 25 %-, 50 %- and
//! bottom-50 %-clusters by their Eq. 8 score; each cluster's mean Eq. 9
//! cumulative-label cosine (CS_k) to the auxiliary data is reported next to
//! its Attack SR. Paper shape: CS and SR decrease together down the
//! clusters (FEMNIST: CS 0.95→0.85 as SR 98%→32%).

use collapois_bench::{num, pct, Scale, Table};
use collapois_core::scenario::{AttackKind, DatasetKind, ScenarioConfig};

fn main() {
    let scale = Scale::from_env();
    for (dataset, label, seed) in [
        (DatasetKind::Image, "FEMNIST-sim", 1212u64),
        (DatasetKind::Text, "Sentiment-sim", 1213u64),
    ] {
        let base = match dataset {
            DatasetKind::Image => ScenarioConfig::quick_image(0.1, 0.05),
            DatasetKind::Text => ScenarioConfig::quick_text(0.1, 0.05),
        };
        let mut cfg = scale.apply(base);
        cfg.attack = AttackKind::CollaPois;
        cfg.seed = seed;
        let report = collapois_bench::run_scenario(cfg);

        let mut table = Table::new(&[
            "cluster",
            "clients",
            "CS_k (Eq. 9)",
            "attack sr",
            "benign ac",
        ]);
        for c in &report.clusters {
            table.row(&[
                c.label.clone(),
                format!("{}", c.clients.len()),
                num(c.label_cosine, 4),
                pct(c.attack_sr),
                pct(c.benign_ac),
            ]);
        }
        table.print(&format!(
            "Fig. 12: label-distribution proximity vs Attack SR ({label})"
        ));
    }
    println!(
        "\nPaper shape: clusters closer to the auxiliary data (higher CS_k) suffer\n\
         higher Attack SR; the bottom-50% cluster has both the lowest CS and SR."
    );
}
