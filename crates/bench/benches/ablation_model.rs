//! Ablation — model family: the paper's LeNet-style CNN vs the fast MLP
//! default on the image scenario.
//!
//! The CollaPois mechanism is architecture-agnostic (it operates on the flat
//! parameter vector); this ablation confirms the attack dynamics hold on the
//! conv path too.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, ScenarioConfig, ScenarioModel};

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(&["model", "attack", "benign ac", "attack sr", "params"]);
    for model_kind in [ScenarioModel::Mlp, ScenarioModel::Cnn] {
        for attack in [AttackKind::None, AttackKind::CollaPois] {
            let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.05));
            cfg.model_kind = model_kind;
            cfg.attack = attack;
            // Conv forward/backward is an order of magnitude slower; trim
            // rounds so the ablation stays quick.
            if model_kind == ScenarioModel::Cnn {
                cfg.rounds = cfg.rounds.min(20);
                cfg.eval_every = cfg.rounds;
            }
            cfg.seed = 6161;
            let dim = {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(0);
                cfg.model_spec().build(&mut rng).param_count()
            };
            let report = collapois_bench::run_scenario(cfg);
            let last = report.final_round();
            table.row(&[
                model_kind.name().into(),
                attack.name().into(),
                pct(last.benign_accuracy),
                pct(last.attack_success_rate),
                format!("{dim}"),
            ]);
        }
    }
    table.print("Ablation: MLP vs LeNet-style CNN under CollaPois (FEMNIST-sim)");
    println!(
        "\nReading: the attack's pull toward X is a parameter-space mechanism; the\n\
         backdoor lands on both architectures."
    );
}
