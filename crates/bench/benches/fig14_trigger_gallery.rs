//! Fig. 14 — WaNet triggers are visually imperceptible: backdoor and
//! legitimate samples are "almost identical".
//!
//! Renders a clean sample and its warped counterpart as ASCII art and
//! reports the L∞/L2 perturbation across warp strengths, contrasted with the
//! (visible) BadNets patch and DBA patterns.

use collapois_bench::{num, Table};
use collapois_core::scenario::IMAGE_SIDE;
use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois_data::trigger::{
    l2_perturbation, linf_perturbation, DbaTrigger, PatchTrigger, Trigger, WaNetTrigger,
};

fn ascii(image: &[f32], side: usize) -> String {
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for y in 0..side {
        for x in 0..side {
            let v = image[y * side + x].clamp(0.0, 1.0);
            let idx = ((v * (ramp.len() - 1) as f32).round()) as usize;
            out.push(ramp[idx] as char);
            out.push(ramp[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let side = IMAGE_SIDE;
    let ds = SyntheticImage::new(SyntheticImageConfig {
        side,
        classes: 6,
        samples: 12,
        noise: 0.02,
        max_shift: 0,
        seed: 14,
    })
    .generate();
    let clean = ds.features_of(3).to_vec();

    println!("=== Fig. 14: WaNet trigger imperceptibility (FEMNIST-sim) ===");
    println!("\nLegitimate sample:\n{}", ascii(&clean, side));
    let wanet = WaNetTrigger::new(side, 4, 3.0, 0x7716);
    let mut warped = clean.clone();
    wanet.apply(&mut warped);
    println!("Backdoor (WaNet-warped) sample:\n{}", ascii(&warped, side));

    let mut table = Table::new(&["trigger", "linf perturbation", "l2 perturbation"]);
    for strength in [0.5, 1.0, 2.0, 3.0, 5.0] {
        let t = WaNetTrigger::new(side, 4, strength, 0x7716);
        table.row(&[
            format!("wanet s={strength}"),
            num(linf_perturbation(&t, &clean) as f64, 4),
            num(l2_perturbation(&t, &clean), 4),
        ]);
    }
    let patch = PatchTrigger::badnets(side);
    table.row(&[
        "badnets patch".into(),
        num(linf_perturbation(&patch, &clean) as f64, 4),
        num(l2_perturbation(&patch, &clean), 4),
    ]);
    let dba = DbaTrigger::new(side, 2, 1.0);
    table.row(&[
        "dba composed".into(),
        num(linf_perturbation(&dba, &clean) as f64, 4),
        num(l2_perturbation(&dba, &clean), 4),
    ]);
    table.print("Perturbation magnitudes (lower = less perceptible)");
    println!(
        "\nPaper shape: WaNet's smooth geometric warp perturbs far less than pixel\n\
         patches at comparable trigger learnability — backdoor and legitimate\n\
         samples are almost identical."
    );
}
