//! Discrete-event simulator throughput benchmark (`harness = false`).
//!
//! Drives the buffered-async (FedBuff) execution mode over a
//! 100,000-virtual-client population on the [`SyntheticSim`] handler —
//! every determinism-relevant moving part (event queue, availability
//! churn, version store, staleness-weighted merge, worker fan-out) without
//! a resident per-client dataset — and reports, per worker count:
//!
//! * `virtual_clients_per_sec` — client arrivals processed per wall second
//!   (the population-scale number: how fast the simulator admits, turns
//!   away and schedules virtual clients);
//! * `events_per_sec` — total simulator events per wall second (arrivals,
//!   churn flips, completions, flush deadlines);
//! * `flushes_per_sec` and the final virtual time reached.
//!
//! The trace runs in hashing mode (O(1) memory, every event still
//! normalized and folded), and the run asserts the scale invariants the
//! simulator is designed around: live model snapshots stay within the
//! concurrency cap, and every worker count produces bitwise identical
//! final parameters and the same event-sequence hash.
//!
//! Emits `BENCH_sim.json`. Usage (all flags optional):
//!
//! ```text
//! cargo bench --bench sim_throughput -- \
//!     [--clients N] [--flushes F] [--dim D] [--out PATH]
//! ```

use collapois_fl::sim::SyntheticSim;
use collapois_nn::kernels;
use collapois_runtime::fault::FaultPlan;
use collapois_runtime::sim::{ArrivalProcess, ChurnPlan, SimDriver, SimPlan};
use collapois_runtime::trace::TraceLog;
use std::path::PathBuf;
use std::time::Instant;

/// The worker counts the sweep covers (the merge fan-out is the only
/// parallel section; the event loop itself is serial by design).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Run seed (arbitrary, fixed: the point is bitwise reproducibility).
const SEED: u64 = 2025;

struct WorkerRow {
    workers: usize,
    wall_s: f64,
    virtual_clients_per_sec: f64,
    events_per_sec: f64,
    flushes_per_sec: f64,
    final_vtime_ms: f64,
    param_hash: u64,
    event_hash: (u64, u64),
}

/// FNV-1a over the parameter bit patterns (the golden-fixture idiom).
fn fnv1a_params(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn plan(num_clients: usize) -> SimPlan {
    SimPlan {
        num_clients,
        arrival: ArrivalProcess::Poisson { mean_ms: 200.0 },
        train_mean_ms: 30.0,
        buffer_k: 64,
        // A quarter of the population cycles offline: churn flips are part
        // of the measured event stream.
        churn: Some(ChurnPlan {
            mean_up_ms: 600.0,
            mean_down_ms: 200.0,
        }),
        max_concurrency: 256,
        ..SimPlan::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut clients = 100_000usize;
    let mut flushes = 100u64;
    let mut dim = 512usize;
    let mut out = PathBuf::from("BENCH_sim.json");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients takes an integer");
            }
            "--flushes" => {
                i += 1;
                flushes = args[i].parse().expect("--flushes takes an integer");
            }
            "--dim" => {
                i += 1;
                dim = args[i].parse().expect("--dim takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            // `cargo bench` passes --bench through to the target.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    println!(
        "sim throughput: {clients} virtual clients, {flushes} flushes, dim {dim}, \
         buffer K=64, concurrency 256, churn 600/200 ms"
    );
    let mut rows: Vec<WorkerRow> = Vec::new();
    for workers in WORKER_COUNTS {
        let p = plan(clients);
        let cap = p.max_concurrency;
        let mut handler = SyntheticSim::new(dim, SEED, workers, 0.5);
        let mut trace = TraceLog::hashing();
        let mut driver = SimDriver::new(p, SEED, FaultPlan::none()).expect("valid plan");
        let start = Instant::now();
        let summary = driver.run(&mut handler, &mut trace, flushes);
        let wall_s = start.elapsed().as_secs_f64();
        assert!(
            summary.reached_target,
            "plan must sustain {flushes} flushes"
        );
        assert!(
            handler.versions().peak_live() <= cap,
            "snapshot memory must stay within the concurrency cap"
        );
        let row = WorkerRow {
            workers,
            wall_s,
            virtual_clients_per_sec: summary.arrivals as f64 / wall_s,
            events_per_sec: summary.events as f64 / wall_s,
            flushes_per_sec: summary.flushes as f64 / wall_s,
            final_vtime_ms: summary.final_vtime as f64 / 1e3,
            param_hash: fnv1a_params(handler.params()),
            event_hash: trace.event_hash().expect("hashing mode"),
        };
        println!(
            "  workers={workers}: {:.0} virtual-clients/sec, {:.0} events/sec, \
             {:.1} flushes/sec ({:.2}s wall, virtual {:.0} ms)",
            row.virtual_clients_per_sec,
            row.events_per_sec,
            row.flushes_per_sec,
            row.wall_s,
            row.final_vtime_ms
        );
        rows.push(row);
    }

    // Bitwise determinism across the sweep: same params, same events.
    let first = &rows[0];
    for r in &rows[1..] {
        assert_eq!(
            r.param_hash, first.param_hash,
            "final params diverged at workers={}",
            r.workers
        );
        assert_eq!(
            r.event_hash, first.event_hash,
            "event sequence diverged at workers={}",
            r.workers
        );
    }
    println!(
        "determinism: all worker counts agree (params 0x{:016x}, events 0x{:016x}/{})",
        first.param_hash, first.event_hash.0, first.event_hash.1
    );

    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"sim_throughput\",\n");
    body.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    body.push_str(&format!(
        "  \"cpu_features\": \"{}\",\n",
        kernels::cpu_features()
    ));
    body.push_str(&format!(
        "  \"kernel_tier\": \"{}\",\n",
        kernels::active_tier().name()
    ));
    body.push_str(&format!(
        "  \"virtual_clients\": {clients},\n  \"flushes\": {flushes},\n  \"dim\": {dim},\n"
    ));
    body.push_str(&format!(
        "  \"param_hash\": \"{:016x}\",\n  \"event_hash\": \"{:016x}\",\n  \"event_count\": {},\n",
        first.param_hash, first.event_hash.0, first.event_hash.1
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"workers\": {}, \"virtual_clients_per_sec\": {:.1}, \"events_per_sec\": {:.1}, \"flushes_per_sec\": {:.2}, \"wall_s\": {:.3}, \"final_vtime_ms\": {:.1}}}{}\n",
            r.workers,
            r.virtual_clients_per_sec,
            r.events_per_sec,
            r.flushes_per_sec,
            r.wall_s,
            r.final_vtime_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("cannot write {out:?}: {e}"));
    println!("wrote {}", out.display());
}
