//! Fig. 8 — FedAvg, FedDC and MetaFed under all four attacks with 1 %
//! compromised clients on the Sentiment-sim dataset. See
//! `collapois_bench::figures::run_attacks_figure` for the shared driver.

use collapois_bench::figures::run_attacks_figure;
use collapois_core::scenario::DatasetKind;

fn main() {
    run_attacks_figure(DatasetKind::Text, "Fig. 8: attacks on Sentiment-sim", 808);
}
