//! §V "Bypassing Defenses" — the statistical battery cannot separate
//! CollaPois' malicious gradients from benign ones.
//!
//! Runs CollaPois with the stealth configuration (narrow ψ, shared clipping
//! bound) and applies the t-test (mean angle), Levene (variance),
//! Kolmogorov–Smirnov (distribution) and the 3σ rule (magnitude outliers).
//! Paper numbers: no significant difference on any test and only a ~3.5 %
//! chance a malicious gradient is flagged as an outlier.

use collapois_bench::{num, pct, Scale, Table};
use collapois_core::analysis::split_updates;
use collapois_core::collapois::CollaPoisConfig;
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_core::stealth::stealth_battery;
use collapois_fl::aggregate::StatFilter;
use collapois_fl::update::ClientUpdate;

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.1));
    cfg.attack = AttackKind::CollaPois;
    cfg.collapois = CollaPoisConfig {
        psi_low: 0.95,
        psi_high: 0.99,
        clip_bound: Some(0.8),
        min_norm: None,
    };
    cfg.collect_updates = true;
    // SS IV-D: the attacker tunes the stealth window; blending is measured
    // over the active-poisoning phase before the global model has fully
    // converged onto X (after convergence every update, benign or not,
    // shrinks to noise and screening is moot).
    cfg.rounds = 16;
    cfg.eval_every = cfg.rounds;
    cfg.seed = 3001;
    let report = collapois_bench::run_scenario(cfg);

    let mut background = Vec::new();
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        let (b, m) = split_updates(updates, &report.compromised);
        if r.round % 2 == 0 {
            background.extend(b);
        } else {
            benign.extend(b);
            malicious.extend(m);
        }
    }
    let rep = stealth_battery(&benign, &malicious, &background).expect("battery");

    let mut table = Table::new(&["test", "statistic", "p-value", "separates?"]);
    let mut push = |name: &str, r: &collapois_stats::hypothesis::TestResult| {
        table.row(&[
            name.into(),
            num(r.statistic, 4),
            format!("{:.3e}", r.p_value),
            if r.rejects_at(0.01) {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    };
    push("t-test (mean angle)", &rep.angle_t_test);
    push("levene (angle variance)", &rep.angle_levene);
    push("ks (angle distribution)", &rep.angle_ks);
    push("t-test (magnitude)", &rep.magnitude_t_test);
    table.print(
        "Bypassing statistical defenses: malicious vs benign gradients (CollaPois, stealth config)",
    );
    println!(
        "\n3-sigma outlier flag rate for malicious gradients: {}",
        pct(rep.three_sigma_rate)
    );
    println!("Benign angles:    {}", rep.benign_angles);
    println!("Malicious angles: {}", rep.malicious_angles);
    println!(
        "\nPaper shape: the magnitude channel blends fully (3-sigma flag rate in the\n\
         low single digits; paper: 3.5%). At this simulation scale the angle channel\n\
         remains separable once enough coordinated updates accumulate (n~15 at 60\n\
         clients) - a scale artifact discussed in EXPERIMENTS.md: the paper's\n\
         high-dimensional, 3400-client regime drowns the angle offset in noise."
    );

    // MESAS-style per-round screening: how often does the StatFilter
    // aggregator flag a CollaPois update?
    let mut flagged_malicious = 0usize;
    let mut total_malicious = 0usize;
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        if r.num_malicious == 0 {
            continue;
        }
        let round_updates: Vec<ClientUpdate> = updates.clone();
        let dim = round_updates[0].delta.len();
        let flags = StatFilter::flagged(&round_updates, dim);
        for (i, u) in round_updates.iter().enumerate() {
            if report.compromised.contains(&u.client_id) {
                total_malicious += 1;
                if flags.contains(&i) {
                    flagged_malicious += 1;
                }
            }
        }
    }
    let rate = flagged_malicious as f64 / total_malicious.max(1) as f64;
    println!(
        "\nMESAS-style StatFilter screening: {}/{} malicious updates flagged ({}).",
        flagged_malicious,
        total_malicious,
        pct(rate)
    );
}
