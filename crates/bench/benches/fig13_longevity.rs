//! Fig. 13 — Benign AC and Attack SR as a function of training rounds
//! (1 % compromised, α = 0.01, FEMNIST-sim).
//!
//! Paper shape: CollaPois converges fast and holds a high Attack SR with no
//! abrupt utility shifts; MRepl causes sudden jumps (its boosted updates
//! yank the global model) and its SR decays across rounds; DPois/DBA climb
//! slowly and plateau lower.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, ScenarioConfig};

fn main() {
    let scale = Scale::from_env();
    let attacks = [
        AttackKind::CollaPois,
        AttackKind::DPois,
        AttackKind::MRepl,
        AttackKind::Dba,
    ];
    let mut table = Table::new(&["attack", "round", "benign ac", "attack sr"]);
    for attack in attacks {
        let mut cfg = scale.apply(ScenarioConfig::quick_image(0.01, 0.01));
        cfg.attack = attack;
        cfg.eval_every = (cfg.rounds / 6).max(1);
        cfg.seed = 1313;
        let report = collapois_bench::run_scenario(cfg);
        for r in &report.rounds {
            table.row(&[
                attack.name().into(),
                format!("{}", r.round),
                pct(r.benign_accuracy),
                pct(r.attack_success_rate),
            ]);
        }
    }
    table.print("Fig. 13: Benign AC / Attack SR vs training round (1% compromised, alpha=0.01, FEMNIST-sim)");
    println!(
        "\nPaper shape: CollaPois reaches a high SR early and keeps it (no >1% decay);\n\
         MRepl shows abrupt shifts and decays; DPois/DBA converge slower and lower."
    );
}
