//! Criterion micro-benchmarks for the hot paths.
//!
//! * Aggregation rules at realistic update dimensions — the per-round server
//!   cost of every defense.
//! * NN forward/backward — the per-step client cost.
//! * Attack-update generation: CollaPois' `ψ(X − θ)` vs DPois' local
//!   training — the paper's *Efficiency* claim (CollaPois needs no local
//!   training at all).
//! * Dirichlet partitioning throughput.

use collapois_core::baselines::{DPois, LocalTrainConfig};
use collapois_core::collapois::{CollaPois, CollaPoisConfig};
use collapois_data::partition::dirichlet_partition;
use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois_data::trigger::PatchTrigger;
use collapois_fl::aggregate::{
    Aggregator, CoordinateMedian, DpAggregator, FedAvg, Flare, Krum, NormBound, RobustLearningRate,
    SignSgd, TrimmedMean,
};
use collapois_fl::server::Adversary;
use collapois_fl::update::ClientUpdate;
use collapois_nn::optim::Sgd;
use collapois_nn::tensor::Tensor;
use collapois_nn::zoo::ModelSpec;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn make_updates(n: usize, dim: usize, seed: u64) -> Vec<ClientUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let delta: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
            ClientUpdate::new(i, delta, 32)
        })
        .collect()
}

fn bench_aggregators(c: &mut Criterion) {
    let dim = 10_000;
    let updates = make_updates(20, dim, 1);
    let mut group = c.benchmark_group("aggregate_20x10k");
    let mut cases: Vec<(&str, Box<dyn Aggregator>)> = vec![
        ("fedavg", Box::new(FedAvg::new())),
        ("krum", Box::new(Krum::new(2))),
        ("median", Box::new(CoordinateMedian::new())),
        ("trimmed_mean", Box::new(TrimmedMean::new(0.2))),
        ("norm_bound", Box::new(NormBound::new(1.0))),
        ("dp", Box::new(DpAggregator::new(1.0, 0.3))),
        ("rlr", Box::new(RobustLearningRate::new(5))),
        ("signsgd", Box::new(SignSgd::new(0.01))),
        ("flare", Box::new(Flare::new(4.0))),
    ];
    for (name, agg) in &mut cases {
        group.bench_function(*name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(agg.aggregate(black_box(&updates), dim, &mut rng)));
        });
    }
    group.finish();
}

fn bench_nn_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mlp = ModelSpec::mlp(144, &[48], 6);
    let mut mlp_model = mlp.build(&mut rng);
    let lenet = ModelSpec::lenet(28, 10);
    let mut lenet_model = lenet.build(&mut rng);
    let x_mlp = Tensor::from_vec(vec![0.3; 16 * 144], &[16, 144]);
    let x_img = Tensor::from_vec(vec![0.3; 4 * 28 * 28], &[4, 1, 28, 28]);
    let labels_mlp: Vec<usize> = (0..16).map(|i| i % 6).collect();
    let labels_img: Vec<usize> = (0..4).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("nn_train_batch");
    group.bench_function("mlp_144_48_6_b16", |b| {
        let mut opt = Sgd::new(0.05);
        b.iter(|| black_box(mlp_model.train_batch(&x_mlp, &labels_mlp, &mut opt)));
    });
    group.bench_function("lenet28_b4", |b| {
        let mut opt = Sgd::new(0.05);
        b.iter(|| black_box(lenet_model.train_batch(&x_img, &labels_img, &mut opt)));
    });
    group.finish();
}

fn bench_attack_cost(c: &mut Criterion) {
    // The Efficiency claim: CollaPois' per-round client cost is a single
    // vector operation; DPois must run K local training steps.
    let spec = ModelSpec::mlp(144, &[48], 6);
    let mut rng = StdRng::seed_from_u64(3);
    let global = spec.build(&mut rng).params();
    let trojan = spec.build(&mut rng).params();
    let data = SyntheticImage::new(SyntheticImageConfig {
        side: 12,
        classes: 6,
        samples: 64,
        ..Default::default()
    })
    .generate();
    let trigger = PatchTrigger::badnets(12);

    let mut group = c.benchmark_group("attack_update_cost");
    group.bench_function("collapois_craft", |b| {
        let mut adv = CollaPois::new(vec![0], trojan.clone(), CollaPoisConfig::paper());
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(adv.craft_update(0, &global, 0, &mut rng)));
    });
    group.bench_function("dpois_local_training", |b| {
        let mut adv = DPois::new(
            vec![0],
            std::slice::from_ref(&data),
            &trigger,
            0,
            0.5,
            &spec,
            LocalTrainConfig::default(),
            5,
        );
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(adv.craft_update(0, &global, 0, &mut rng)));
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let ds = SyntheticImage::new(SyntheticImageConfig {
        side: 8,
        classes: 10,
        samples: 5_000,
        ..Default::default()
    })
    .generate();
    c.bench_function("dirichlet_partition_5k_100c", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(6),
            |mut rng| black_box(dirichlet_partition(&mut rng, &ds, 100, 0.5)),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_aggregators, bench_nn_ops, bench_attack_cost, bench_partition
}
criterion_main!(benches);
