//! Fig. 15 — FedAvg, FedDC and MetaFed under all four attacks with 1 %
//! compromised clients on the FEMNIST-sim dataset (the image counterpart of
//! Fig. 8).

use collapois_bench::figures::run_attacks_figure;
use collapois_core::scenario::DatasetKind;

fn main() {
    run_attacks_figure(DatasetKind::Image, "Fig. 15: attacks on FEMNIST-sim", 1515);
}
