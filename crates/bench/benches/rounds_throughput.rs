//! End-to-end round-loop throughput benchmark (`harness = false`).
//!
//! Runs the 64-client / 5%-compromise CollaPois scenario at worker counts
//! 1/2/4, measures steady-state rounds/sec from the per-round `elapsed_ms`
//! of the structured run trace (setup — data generation, Trojan training —
//! is excluded by construction), and emits `BENCH_rounds.json` to seed the
//! perf trajectory.
//!
//! With the `bench-alloc` feature a counting `#[global_allocator]` is
//! installed and the per-round heap traffic is derived from the marginal
//! byte count between an `R`-round and a `2R`-round run of the identical
//! scenario (the setup allocations cancel).
//!
//! Usage (all flags optional):
//!
//! ```text
//! cargo bench --bench rounds_throughput -- \
//!     [--rounds N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! `--check` compares the workers=1 rounds/sec against a previously
//! committed `BENCH_rounds.json` and exits non-zero on a >20% regression —
//! the CI guard-rail once a baseline exists.

use collapois_core::scenario::{AttackKind, DefenseKind, RunOptions, Scenario, ScenarioConfig};
use collapois_runtime::trace::{read_trace, TraceEvent};
use std::path::PathBuf;

#[cfg(feature = "bench-alloc")]
mod counting_alloc {
    //! Byte-counting global allocator, enabled by the `bench-alloc` feature.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static COUNT: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            COUNT.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            COUNT.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static ALLOC: Counting = Counting;

    pub fn bytes_now() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }
}

/// The benchmark scenario: 64 clients, 5% compromised, CollaPois attack,
/// plain FedAvg — the steady-state configuration the paper's client-level
/// sweeps (Figs. 10–13) spend their round budget on.
fn bench_cfg(rounds: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 64;
    cfg.samples_per_client = 30;
    cfg.rounds = rounds;
    // Evaluate only once at the end: this benchmark times the round loop,
    // not the metrics pass.
    cfg.eval_every = rounds;
    cfg.sample_rate = 0.25;
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = DefenseKind::None;
    cfg.trojan.epochs = 4;
    cfg
}

/// Per-round wall-clock samples of one scenario run, read back from the
/// structured trace (ms per completed round, in round order).
fn round_times_ms(cfg: &ScenarioConfig, workers: usize, trace_path: &PathBuf) -> Vec<f64> {
    let _ = std::fs::remove_file(trace_path);
    Scenario::new(cfg.clone()).run_with(&RunOptions {
        workers,
        trace_path: Some(trace_path.clone()),
        ..RunOptions::default()
    });
    let events = read_trace(trace_path).expect("trace readable");
    let _ = std::fs::remove_file(trace_path);
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RoundCompleted { elapsed_ms, .. } => Some(*elapsed_ms),
            _ => None,
        })
        .collect()
}

/// Marginal heap bytes per round: run the identical scenario at `r` and
/// `2r` rounds and divide the byte-count difference by the extra rounds.
#[cfg(feature = "bench-alloc")]
fn bytes_per_round(cfg: &ScenarioConfig, workers: usize) -> u64 {
    let run = |rounds: usize| -> u64 {
        let mut c = cfg.clone();
        c.rounds = rounds;
        c.eval_every = rounds;
        let before = counting_alloc::bytes_now();
        Scenario::new(c).run_with(&RunOptions {
            workers,
            ..RunOptions::default()
        });
        counting_alloc::bytes_now() - before
    };
    let r = cfg.rounds.max(2);
    let short = run(r);
    let long = run(2 * r);
    long.saturating_sub(short) / r as u64
}

struct WorkerResult {
    workers: usize,
    rounds_per_sec: f64,
    mean_round_ms: f64,
    bytes_alloc_per_round: Option<u64>,
}

fn json_escape_free(s: &str) -> &str {
    // Everything serialized here is numeric or a fixed keyword.
    s
}

fn emit_json(rounds: usize, results: &[WorkerResult], out: &PathBuf) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"rounds_throughput\",\n");
    body.push_str(&format!(
        "  \"scenario\": {{\"clients\": 64, \"compromised_frac\": 0.05, \"attack\": \"collapois\", \"defense\": \"none\", \"rounds\": {rounds}, \"sample_rate\": 0.25}},\n"
    ));
    body.push_str(&format!(
        "  \"alloc_counted\": {},\n",
        cfg!(feature = "bench-alloc")
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let bytes = match r.bytes_alloc_per_round {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        body.push_str(&format!(
            "    {{\"workers\": {}, \"rounds_per_sec\": {:.3}, \"mean_round_ms\": {:.3}, \"bytes_alloc_per_round\": {}}}{}\n",
            r.workers,
            r.rounds_per_sec,
            r.mean_round_ms,
            json_escape_free(&bytes),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out, &body).unwrap_or_else(|e| panic!("cannot write {out:?}: {e}"));
    println!("wrote {}", out.display());
}

/// Extracts `"rounds_per_sec": <f64>` for `"workers": 1` from a previously
/// emitted `BENCH_rounds.json` (hand-rolled: the workspace has no JSON
/// dependency).
fn baseline_rounds_per_sec(path: &PathBuf) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"workers\": 1,") {
            let key = "\"rounds_per_sec\": ";
            let start = line.find(key)? + key.len();
            let rest = &line[start..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut rounds = 20usize;
    let mut out = PathBuf::from("BENCH_rounds.json");
    let mut check: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--check" => {
                i += 1;
                check = Some(PathBuf::from(&args[i]));
            }
            // `cargo bench` passes --bench through to the target.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    let rounds = rounds.max(2);

    let cfg = bench_cfg(rounds);
    let trace_path = std::env::temp_dir().join(format!(
        "collapois-rounds-throughput-{}.jsonl",
        std::process::id()
    ));

    let mut results = Vec::new();
    for workers in [1usize, 2, 4] {
        let times = round_times_ms(&cfg, workers, &trace_path);
        assert_eq!(times.len(), rounds, "trace must hold one entry per round");
        // Drop the first round: it pays one-off warm-up costs (arena
        // growth, kernel scratch, lazily-sized buffers).
        let steady = &times[1.min(times.len() - 1)..];
        let mean_ms: f64 = steady.iter().sum::<f64>() / steady.len() as f64;
        let rps = 1e3 / mean_ms;
        #[cfg(feature = "bench-alloc")]
        let bytes = Some(bytes_per_round(&cfg, workers));
        #[cfg(not(feature = "bench-alloc"))]
        let bytes = None;
        println!(
            "workers={workers}: {rps:.2} rounds/sec (mean {mean_ms:.2} ms/round{})",
            match bytes {
                Some(b) => format!(", {b} bytes allocated/round"),
                None => String::new(),
            }
        );
        results.push(WorkerResult {
            workers,
            rounds_per_sec: rps,
            mean_round_ms: mean_ms,
            bytes_alloc_per_round: bytes,
        });
    }

    emit_json(rounds, &results, &out);

    if let Some(baseline_path) = check {
        match baseline_rounds_per_sec(&baseline_path) {
            Some(base) => {
                let now = results[0].rounds_per_sec;
                let floor = 0.8 * base;
                println!(
                    "baseline check: workers=1 {now:.2} rounds/sec vs committed {base:.2} (floor {floor:.2})"
                );
                assert!(
                    now >= floor,
                    "rounds/sec regressed >20% against the committed baseline: \
                     {now:.2} < 0.8 * {base:.2}"
                );
            }
            None => println!(
                "no baseline at {} — skipping regression check",
                baseline_path.display()
            ),
        }
    }
}
