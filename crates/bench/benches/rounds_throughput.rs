//! End-to-end round-loop throughput benchmark (`harness = false`).
//!
//! Runs the CollaPois round loop at worker counts 1/2/4/8 over four
//! scenarios — 64 clients (the paper's client-level sweep size), 256
//! clients (enough sampled clients per round that the parallel fan-out has
//! real work), a faulted 64-client cohort (20% dropout plus straggler
//! shedding and in-flight corruption, exercising the degradation paths the
//! fault plan adds to the round loop), and 4096 clients at a 64-client
//! per-round fan-out (paper-scale cohort: binomial sampling and lazy
//! shard residency on the hot path) — measures steady-state rounds/sec
//! from the per-round
//! `elapsed_ms` of the structured run trace (setup — data generation,
//! Trojan training — is excluded by construction), and emits
//! `BENCH_rounds.json` to seed the perf trajectory. Each row carries its
//! `scaling_efficiency` = (rps_w / rps_1) / w, and the file records the
//! host's `available_parallelism` so flat scaling measured on a small
//! machine is not mistaken for a regression.
//!
//! With the `bench-alloc` feature a counting `#[global_allocator]` is
//! installed and the per-round heap traffic is derived from the marginal
//! byte count between an `R`-round and a `2R`-round run of the identical
//! scenario (the setup allocations cancel).
//!
//! Usage (all flags optional):
//!
//! ```text
//! cargo bench --bench rounds_throughput -- \
//!     [--rounds N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! `--check` compares the 64-client workers=1 rounds/sec against a
//! previously committed `BENCH_rounds.json` and exits non-zero on a >20%
//! regression; on hosts with at least 4 cores it additionally enforces a
//! workers=4 scaling-efficiency floor on the fresh measurement — the CI
//! guard-rails once a baseline exists. Skip messages always state the
//! host's parallelism so a skipped check is attributable to the machine it
//! ran on.
//!
//! Baselines are host-shaped: the emitted file records `host_parallelism`,
//! and a run on a single-core host refuses to overwrite a baseline
//! measured on a multi-core host (its scaling rows would silently degrade
//! to noise). Pass `--force` to overwrite anyway.

use collapois_core::scenario::{AttackKind, DefenseKind, RunOptions, Scenario, ScenarioConfig};
use collapois_nn::kernels;
use collapois_runtime::fault::FaultPlan;
use collapois_runtime::trace::{read_trace, TraceEvent};
use std::path::PathBuf;

#[cfg(feature = "bench-alloc")]
mod counting_alloc {
    //! Byte-counting global allocator, enabled by the `bench-alloc` feature.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static COUNT: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            COUNT.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            COUNT.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static ALLOC: Counting = Counting;

    pub fn bytes_now() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }
}

/// The worker counts every scenario sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Minimum acceptable workers=4 scaling efficiency, enforced by `--check`
/// on hosts that actually have 4 cores.
const EFFICIENCY_FLOOR_W4: f64 = 0.5;

/// One benchmark scenario: `clients` clients, 5% compromised, CollaPois
/// attack, plain FedAvg — the steady-state configuration the paper's
/// client-level sweeps (Figs. 10–13) spend their round budget on.
fn bench_cfg(name: &'static str, clients: usize, rounds: usize) -> (&'static str, ScenarioConfig) {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = clients;
    cfg.samples_per_client = 30;
    cfg.rounds = rounds;
    // Evaluate only once at the end: this benchmark times the round loop,
    // not the metrics pass.
    cfg.eval_every = rounds;
    cfg.sample_rate = 0.25;
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = DefenseKind::None;
    cfg.trojan.epochs = 4;
    (name, cfg)
}

/// The faulted scenario's plan: the acceptance dropout rate plus straggler
/// shedding and a little in-flight corruption, so every client-level
/// degradation path is on the measured hot path.
fn faulted_plan() -> FaultPlan {
    FaultPlan {
        dropout: 0.2,
        straggler: 0.1,
        straggler_mean_ms: 5.0,
        deadline_ms: 10.0,
        corrupt: 0.05,
        ..FaultPlan::none()
    }
}

/// Per-round wall-clock samples of one scenario run, read back from the
/// structured trace (ms per completed round, in round order).
fn round_times_ms(
    cfg: &ScenarioConfig,
    fault: FaultPlan,
    workers: usize,
    trace_path: &PathBuf,
) -> Vec<f64> {
    let _ = std::fs::remove_file(trace_path);
    Scenario::new(cfg.clone()).run_with(&RunOptions {
        workers,
        trace_path: Some(trace_path.clone()),
        fault,
        ..RunOptions::default()
    });
    let events = read_trace(trace_path).expect("trace readable");
    let _ = std::fs::remove_file(trace_path);
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RoundCompleted { elapsed_ms, .. } => Some(*elapsed_ms),
            _ => None,
        })
        .collect()
}

/// Marginal heap bytes per round: run the identical scenario at `r` and
/// `2r` rounds and divide the byte-count difference by the extra rounds.
#[cfg(feature = "bench-alloc")]
fn bytes_per_round(cfg: &ScenarioConfig, fault: FaultPlan, workers: usize) -> u64 {
    let run = |rounds: usize| -> u64 {
        let mut c = cfg.clone();
        c.rounds = rounds;
        c.eval_every = rounds;
        let before = counting_alloc::bytes_now();
        Scenario::new(c).run_with(&RunOptions {
            workers,
            fault,
            ..RunOptions::default()
        });
        counting_alloc::bytes_now() - before
    };
    let r = cfg.rounds.max(2);
    let short = run(r);
    let long = run(2 * r);
    long.saturating_sub(short) / r as u64
}

struct WorkerResult {
    workers: usize,
    rounds_per_sec: f64,
    mean_round_ms: f64,
    scaling_efficiency: f64,
    bytes_alloc_per_round: Option<u64>,
}

struct ScenarioResult {
    name: &'static str,
    clients: usize,
    /// Per-round client sampling rate (the 4096-client scenario thins it).
    sample_rate: f64,
    /// Human-readable fault-plan summary (`"none"` for clean scenarios).
    faults: &'static str,
    results: Vec<WorkerResult>,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn emit_json(rounds: usize, scenarios: &[ScenarioResult], out: &PathBuf) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"rounds_throughput\",\n");
    body.push_str(&format!(
        "  \"alloc_counted\": {},\n",
        cfg!(feature = "bench-alloc")
    ));
    body.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        host_parallelism()
    ));
    body.push_str(&format!(
        "  \"cpu_features\": \"{}\",\n",
        kernels::cpu_features()
    ));
    body.push_str(&format!(
        "  \"kernel_tier\": \"{}\",\n",
        kernels::active_tier().name()
    ));
    body.push_str("  \"scenarios\": [\n");
    for (si, sc) in scenarios.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"compromised_frac\": 0.05, \"attack\": \"collapois\", \"defense\": \"none\", \"faults\": \"{}\", \"rounds\": {rounds}, \"sample_rate\": {}, \"results\": [\n",
            sc.name, sc.clients, sc.faults, sc.sample_rate
        ));
        for (i, r) in sc.results.iter().enumerate() {
            let bytes = match r.bytes_alloc_per_round {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            body.push_str(&format!(
                "      {{\"workers\": {}, \"rounds_per_sec\": {:.3}, \"mean_round_ms\": {:.3}, \"scaling_efficiency\": {:.3}, \"bytes_alloc_per_round\": {}}}{}\n",
                r.workers,
                r.rounds_per_sec,
                r.mean_round_ms,
                r.scaling_efficiency,
                bytes,
                if i + 1 < sc.results.len() { "," } else { "" }
            ));
        }
        body.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out, &body).unwrap_or_else(|e| panic!("cannot write {out:?}: {e}"));
    println!("wrote {}", out.display());
}

/// Extracts the first `"rounds_per_sec": <f64>` on a `"workers": 1` line
/// from a previously emitted `BENCH_rounds.json` — the first scenario's
/// sequential throughput (hand-rolled: the workspace has no JSON
/// dependency; works on both the flat legacy layout and the per-scenario
/// layout).
fn baseline_rounds_per_sec(path: &PathBuf) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"workers\": 1,") {
            let key = "\"rounds_per_sec\": ";
            let start = line.find(key)? + key.len();
            let rest = &line[start..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// The `host_parallelism` a previously emitted `BENCH_rounds.json` was
/// measured under (absent in the legacy layout, which predates the field).
fn baseline_host_parallelism(path: &PathBuf) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"host_parallelism\": ";
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest.find([',', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut rounds = 20usize;
    let mut out = PathBuf::from("BENCH_rounds.json");
    let mut check: Option<PathBuf> = None;
    let mut force = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--check" => {
                i += 1;
                check = Some(PathBuf::from(&args[i]));
            }
            "--force" => force = true,
            // `cargo bench` passes --bench through to the target.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    let rounds = rounds.max(2);

    // A single-core run must not clobber a baseline measured with real
    // parallelism: its scaling rows would replace signal with noise.
    if !force {
        if let Some(prev_cores) = baseline_host_parallelism(&out) {
            let cores = host_parallelism();
            if prev_cores > 1 && cores == 1 {
                eprintln!(
                    "refusing to overwrite {}: committed baseline was measured with \
                     host_parallelism={prev_cores}, this host has {cores} core(s). \
                     Re-run on a comparable machine or pass --force.",
                    out.display()
                );
                std::process::exit(1);
            }
        }
    }

    let trace_path = std::env::temp_dir().join(format!(
        "collapois-rounds-throughput-{}.jsonl",
        std::process::id()
    ));

    let mut scenarios = Vec::new();
    // The clean 64-client scenario must stay first: `--check` reads the
    // first workers=1 row of the committed baseline.
    let (c64, cfg64) = bench_cfg("clients64", 64, rounds);
    let (c256, cfg256) = bench_cfg("clients256", 256, rounds);
    let (c64f, cfg64f) = bench_cfg("clients64-faulted", 64, rounds);
    // Paper-scale cohort: 4096 clients crosses the lazy-materialization
    // threshold, so shards render on first touch under the LRU budget and
    // per-round sampling goes through the binomial fast path. The sample
    // rate is thinned to a 64-client per-round fan-out so the row measures
    // cohort-scale bookkeeping, not 16x more batch arithmetic.
    let (c4096, mut cfg4096) = bench_cfg("clients4096", 4096, rounds);
    cfg4096.sample_rate = 64.0 / 4096.0;
    for (name, cfg, fault, faults) in [
        (c64, cfg64, FaultPlan::none(), "none"),
        (c256, cfg256, FaultPlan::none(), "none"),
        (
            c64f,
            cfg64f,
            faulted_plan(),
            "dropout=0.2 straggler=0.1@5ms/10ms corrupt=0.05",
        ),
        (c4096, cfg4096, FaultPlan::none(), "none"),
    ] {
        println!(
            "scenario {name}: {} clients (faults: {faults})",
            cfg.num_clients
        );
        let mut results: Vec<WorkerResult> = Vec::new();
        for workers in WORKER_COUNTS {
            let times = round_times_ms(&cfg, fault, workers, &trace_path);
            assert_eq!(times.len(), rounds, "trace must hold one entry per round");
            // Drop the first round: it pays one-off warm-up costs (arena
            // growth, kernel scratch, lazily-sized buffers).
            let steady = &times[1.min(times.len() - 1)..];
            let mean_ms: f64 = steady.iter().sum::<f64>() / steady.len() as f64;
            let rps = 1e3 / mean_ms;
            let rps_1 = results.first().map(|r| r.rounds_per_sec).unwrap_or(rps);
            let efficiency = (rps / rps_1) / workers as f64;
            #[cfg(feature = "bench-alloc")]
            let bytes = Some(bytes_per_round(&cfg, fault, workers));
            #[cfg(not(feature = "bench-alloc"))]
            let bytes = None;
            println!(
                "  workers={workers}: {rps:.2} rounds/sec (mean {mean_ms:.2} ms/round, \
                 efficiency {efficiency:.2}{})",
                match bytes {
                    Some(b) => format!(", {b} bytes allocated/round"),
                    None => String::new(),
                }
            );
            results.push(WorkerResult {
                workers,
                rounds_per_sec: rps,
                mean_round_ms: mean_ms,
                scaling_efficiency: efficiency,
                bytes_alloc_per_round: bytes,
            });
        }
        scenarios.push(ScenarioResult {
            name,
            clients: cfg.num_clients,
            sample_rate: cfg.sample_rate,
            faults,
            results,
        });
    }

    emit_json(rounds, &scenarios, &out);

    if let Some(baseline_path) = check {
        match baseline_rounds_per_sec(&baseline_path) {
            Some(base) => {
                let now = scenarios[0].results[0].rounds_per_sec;
                let floor = 0.8 * base;
                println!(
                    "baseline check: workers=1 {now:.2} rounds/sec vs committed {base:.2} (floor {floor:.2})"
                );
                assert!(
                    now >= floor,
                    "rounds/sec regressed >20% against the committed baseline: \
                     {now:.2} < 0.8 * {base:.2}"
                );
            }
            None => println!(
                "no baseline at {} — skipping regression check (host_parallelism={})",
                baseline_path.display(),
                host_parallelism()
            ),
        }
        let cores = host_parallelism();
        if cores >= 4 {
            for sc in &scenarios {
                let w4 = sc
                    .results
                    .iter()
                    .find(|r| r.workers == 4)
                    .expect("workers=4 row");
                println!(
                    "scaling check ({}): workers=4 efficiency {:.2} (floor {EFFICIENCY_FLOOR_W4})",
                    sc.name, w4.scaling_efficiency
                );
                assert!(
                    w4.scaling_efficiency >= EFFICIENCY_FLOOR_W4,
                    "{}: workers=4 scaling efficiency {:.2} below the {EFFICIENCY_FLOOR_W4} floor",
                    sc.name,
                    w4.scaling_efficiency
                );
            }
        } else {
            println!(
                "scaling check skipped: host_parallelism={cores}, need >= 4 for a \
                 meaningful workers=4 efficiency"
            );
        }
    }
}
