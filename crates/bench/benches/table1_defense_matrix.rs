//! Table I — the full robust-federated-training battery against CollaPois.
//!
//! Every aggregation rule of the paper's Table I (plus the personalization-
//! based Ditto) runs once against CollaPois with 1 % compromised clients on
//! FEMNIST-sim at a fixed non-IID level.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, DefenseKind, FlAlgo, ScenarioConfig};

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(&["defense", "benign ac", "attack sr", "verdict"]);
    // Clean reference (no attack, no defense).
    let mut clean = scale.apply(ScenarioConfig::quick_image(0.1, 0.0));
    clean.attack = AttackKind::None;
    clean.seed = 2100;
    let clean_ac = collapois_bench::run_scenario(clean)
        .final_round()
        .benign_accuracy;

    for &defense in DefenseKind::all() {
        let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.01));
        cfg.attack = AttackKind::CollaPois;
        cfg.defense = defense;
        cfg.seed = 2101;
        let report = collapois_bench::run_scenario(cfg);
        let last = report.final_round();
        let verdict = if last.attack_success_rate > 0.5 {
            "bypassed"
        } else if last.benign_accuracy < clean_ac - 0.15 {
            "utility lost"
        } else {
            "holds"
        };
        table.row(&[
            defense.name().into(),
            pct(last.benign_accuracy),
            pct(last.attack_success_rate),
            verdict.into(),
        ]);
    }
    // Ditto (personalization-based row of Table I).
    let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.01));
    cfg.attack = AttackKind::CollaPois;
    cfg.algo = FlAlgo::Ditto;
    cfg.seed = 2102;
    let report = collapois_bench::run_scenario(cfg);
    let last = report.final_round();
    table.row(&[
        "ditto".into(),
        pct(last.benign_accuracy),
        pct(last.attack_success_rate),
        if last.attack_success_rate > 0.5 {
            "bypassed".into()
        } else {
            "holds".to_string()
        },
    ]);

    table.print(&format!(
        "Table I: robust federated training vs CollaPois (1% compromised, FEMNIST-sim; clean-run AC = {})",
        pct(clean_ac)
    ));
    println!(
        "\nPaper shape: DP/NormBound-style defenses leave Attack SR high; selection/\n\
         flipping defenses (Krum, RLR) pay a large Benign AC cost under non-IID data."
    );
}
