//! Fig. 11 — the per-client distribution of Benign AC and Attack SR under
//! FedAvg with the DP defense on FEMNIST-sim.
//!
//! Paper shape: a wide spread — some benign clients are nearly fully
//! backdoored while others are barely affected, which is why population
//! averages hide the risk.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, DefenseKind, ScenarioConfig};
use collapois_stats::descriptive::histogram;

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.01));
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = DefenseKind::Dp;
    cfg.seed = 1111;
    let report = collapois_bench::run_scenario(cfg);

    let srs: Vec<f64> = report.clients.iter().map(|c| c.attack_sr).collect();
    let acs: Vec<f64> = report.clients.iter().map(|c| c.benign_ac).collect();
    let bins = 5;
    let sr_hist = histogram(&srs, 0.0, 1.0 + 1e-9, bins);
    let ac_hist = histogram(&acs, 0.0, 1.0 + 1e-9, bins);

    let mut table = Table::new(&["range", "clients by attack sr", "clients by benign ac"]);
    for i in 0..bins {
        let lo = i as f64 / bins as f64;
        let hi = (i + 1) as f64 / bins as f64;
        table.row(&[
            format!("[{:.0}%, {:.0}%)", 100.0 * lo, 100.0 * hi),
            format!("{}", sr_hist[i]),
            format!("{}", ac_hist[i]),
        ]);
    }
    table
        .print("Fig. 11: per-client Benign AC / Attack SR distribution (FEMNIST-sim, FedAvg + DP)");

    let pop = report.population();
    let max_sr = srs.iter().cloned().fold(0.0, f64::max);
    let min_sr = srs.iter().cloned().fold(1.0, f64::min);
    println!(
        "\nPopulation: AC={} SR={}; per-client SR ranges from {} to {} — the paper's\n\
         point: averages mask a heavily-backdoored subpopulation.",
        pct(pop.benign_ac),
        pct(pop.attack_sr),
        pct(min_sr),
        pct(max_sr)
    );
}
