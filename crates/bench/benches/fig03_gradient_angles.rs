//! Fig. 3 — average angles among benign and compromised clients' gradients
//! as a function of the Dirichlet α (FEMNIST-sim).
//!
//! (a) benign clients in normal training vs CollaPois' compromised clients;
//! (b) compromised clients under DPois vs CollaPois.
//!
//! Paper shape: benign (and DPois-malicious) pairwise angles grow as α
//! shrinks — scattered gradients — while CollaPois' coordinated updates stay
//! nearly parallel at every α.

use collapois_bench::{num, Scale, Table};
use collapois_core::analysis::pooled_mean_angles_deg;
use collapois_core::scenario::{AttackKind, FlAlgo, ScenarioConfig};

fn main() {
    let scale = Scale::from_env();
    let alphas = [0.01, 0.1, 1.0, 10.0, 100.0];
    for algo in [FlAlgo::FedAvg, FlAlgo::FedDc] {
        let mut table = Table::new(&[
            "alpha",
            "benign angle (deg)",
            "collapois malicious (deg)",
            "dpois malicious (deg)",
        ]);
        for &alpha in &alphas {
            let mut collapois_cfg = scale.apply(ScenarioConfig::quick_image(alpha, 0.1));
            collapois_cfg.attack = AttackKind::CollaPois;
            collapois_cfg.algo = algo;
            collapois_cfg.collect_updates = true;
            collapois_cfg.rounds = collapois_cfg.rounds.min(15);
            collapois_cfg.eval_every = collapois_cfg.rounds;
            collapois_cfg.seed = 303;
            let mut dpois_cfg = collapois_cfg.clone();
            dpois_cfg.attack = AttackKind::DPois;

            let cp = collapois_bench::run_scenario(collapois_cfg);
            let dp = collapois_bench::run_scenario(dpois_cfg);
            let (benign, cp_mal) = pooled_mean_angles_deg(&cp.records, &cp.compromised);
            let (_, dp_mal) = pooled_mean_angles_deg(&dp.records, &dp.compromised);
            let fmt = |v: Option<f64>| v.map(|x| num(x, 2)).unwrap_or_else(|| "-".into());
            table.row(&[format!("{alpha}"), fmt(benign), fmt(cp_mal), fmt(dp_mal)]);
        }
        table.print(&format!(
            "Fig. 3 ({}): mean pairwise gradient angles vs alpha (FEMNIST-sim)",
            algo.name()
        ));
    }
    println!(
        "\nPaper shape: benign and DPois angles grow as alpha shrinks (non-IID scatter);\n\
         CollaPois' coordinated malicious gradients stay near 0 degrees at every alpha."
    );
}
