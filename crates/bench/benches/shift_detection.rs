//! §II-B — MRepl's abrupt performance shifts are detectable by
//! round-to-round monitoring; CollaPois' gradual pull is not.
//!
//! Each attack runs under FedAvg with per-round evaluation; the
//! [`ShiftDetector`] watches the population Benign-AC series (the paper's
//! observable: "Benign AC raises from 39.21 % to 74.11 % in one round" under
//! MRepl) with a robust median/MAD baseline. The clean run calibrates the
//! false-positive reference.

use collapois_bench::{pct, Scale, Table};
use collapois_core::scenario::{AttackKind, ScenarioConfig};
use collapois_fl::monitor::ShiftDetector;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(&[
        "attack",
        "rounds flagged",
        "max robust z",
        "max one-round ac jump",
        "final attack sr",
    ]);
    for attack in [
        AttackKind::None,
        AttackKind::CollaPois,
        AttackKind::DPois,
        AttackKind::MRepl,
    ] {
        let mut cfg = scale.apply(ScenarioConfig::quick_image(0.1, 0.05));
        cfg.attack = attack;
        cfg.eval_every = 1; // per-round utility series
        cfg.rounds = cfg.rounds.min(40);
        cfg.seed = 5151;
        let report = collapois_bench::run_scenario(cfg);

        let mut detector = ShiftDetector::default_paper();
        for r in &report.rounds {
            detector.observe(None, Some(r.benign_accuracy));
        }
        let max_z = detector
            .alerts()
            .iter()
            .map(|a| a.z_score)
            .fold(0.0f64, f64::max);
        let max_jump = report
            .rounds
            .windows(2)
            .map(|w| (w[1].benign_accuracy - w[0].benign_accuracy).abs())
            .fold(0.0f64, f64::max);
        table.row(&[
            attack.name().into(),
            format!("{}", detector.alerts().len()),
            if detector.alerts().is_empty() {
                "-".into()
            } else {
                format!("{max_z:.1}")
            },
            pct(max_jump),
            pct(report.final_round().attack_success_rate),
        ]);
    }
    table.print("Shift detection (SS II-B): rounds flagged by the Benign-AC monitor per attack");
    println!(
        "\nPaper shape: MRepl produces the largest one-round utility jumps (and the\n\
         most monitor alerts); CollaPois' utility curve stays as smooth as clean\n\
         training while its Attack SR is the highest."
    );
}
