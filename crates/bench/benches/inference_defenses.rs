//! §II-B claim — the WaNet warping trigger evades the classical
//! inference-phase backdoor defenses (Neural Cleanse, Fine-Pruning, STRIP)
//! that catch patch triggers.
//!
//! For each trigger family, a Trojaned model is trained centrally (Eq. 1)
//! and every defense is applied:
//!
//! * STRIP — detection rate on triggered inputs at a 5 % clean FPR budget.
//! * Neural Cleanse — whether the target class is flagged by the MAD rule.
//! * Fine-Pruning — Attack SR remaining after pruning 30 % of hidden units.

use collapois_bench::{num, pct, Table};
use collapois_core::trojan::{train_trojan, TrojanConfig};
use collapois_data::poison::stamp_only;
use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois_data::trigger::{PatchTrigger, Trigger, WaNetTrigger};
use collapois_defense::fine_pruning::fine_prune;
use collapois_defense::neural_cleanse::{neural_cleanse, CleanseConfig};
use collapois_defense::strip::{strip_screen, StripConfig};
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: usize = 12;
const CLASSES: usize = 4;

fn attack_sr(
    model: &mut collapois_nn::Sequential,
    data: &collapois_data::Dataset,
    trigger: &dyn Trigger,
) -> f64 {
    let stamped = stamp_only(data, trigger);
    let (x, _) = stamped.as_batch();
    let preds = model.predict(&x);
    preds.iter().filter(|&&p| p == 0).count() as f64 / preds.len().max(1) as f64
}

fn main() {
    let clean = SyntheticImage::new(SyntheticImageConfig {
        side: SIDE,
        classes: CLASSES,
        samples: 400,
        noise: 0.05,
        max_shift: 1,
        seed: 77,
    })
    .generate();
    let spec = ModelSpec::mlp(SIDE * SIDE, &[48], CLASSES);
    let trojan_cfg = TrojanConfig {
        epochs: 50,
        ..Default::default()
    };

    let triggers: Vec<(&str, Box<dyn Trigger>)> = vec![
        ("wanet", Box::new(WaNetTrigger::new(SIDE, 4, 3.0, 0x7716))),
        ("badnets patch", Box::new(PatchTrigger::badnets(SIDE))),
    ];

    let mut table = Table::new(&[
        "trigger",
        "attack sr (pre)",
        "strip detection",
        "cleanse flags target?",
        "cleanse anomaly idx",
        "sr after fine-pruning",
    ]);
    for (name, trigger) in &triggers {
        let trained = train_trojan(&spec, &clean, trigger.as_ref(), &trojan_cfg);
        let mut model = spec.build(&mut StdRng::seed_from_u64(0));
        model.set_params(&trained.params);
        let pre_sr = attack_sr(&mut model, &clean, trigger.as_ref());

        // STRIP.
        let mut rng = StdRng::seed_from_u64(1);
        let suspects = stamp_only(
            &clean.subset(&(0..40).collect::<Vec<_>>()),
            trigger.as_ref(),
        );
        let strip = strip_screen(
            &mut rng,
            &mut model,
            &suspects,
            &clean,
            &StripConfig::default(),
        );

        // Neural Cleanse.
        let cleanse = neural_cleanse(&mut model, &clean, &CleanseConfig::default());
        let flags_target = cleanse.flagged_classes.contains(&0);
        let anomaly0 = cleanse.anomaly_index[0];

        // Fine-Pruning (on a fresh copy of the trojaned model).
        let mut pruned_model = spec.build(&mut StdRng::seed_from_u64(0));
        pruned_model.set_params(&trained.params);
        let _ = fine_prune(&mut pruned_model, &spec, &clean, 0.3);
        let post_sr = attack_sr(&mut pruned_model, &clean, trigger.as_ref());

        table.row(&[
            (*name).into(),
            pct(pre_sr),
            pct(strip.detection_rate()),
            if flags_target {
                "yes".into()
            } else {
                "no".to_string()
            },
            num(anomaly0, 2),
            pct(post_sr),
        ]);
    }
    table.print("Inference-phase defenses vs trigger family (Trojaned model X, FEMNIST-sim)");
    println!(
        "\nPaper shape (SS II-B): the warping trigger slips past defenses tuned to\n\
         localized patches — lower STRIP detection, no Neural Cleanse flag, and an\n\
         Attack SR that survives Fine-Pruning."
    );
}
