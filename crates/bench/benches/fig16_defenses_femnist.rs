//! Fig. 16 — CollaPois (1 % compromised) under the DP, NormBound, Krum and
//! RLR defenses on the FEMNIST-sim dataset (the image counterpart of
//! Fig. 9).

use collapois_bench::figures::run_defenses_figure;
use collapois_core::scenario::DatasetKind;

fn main() {
    run_defenses_figure(
        DatasetKind::Image,
        "Fig. 16: CollaPois under defenses, FEMNIST-sim",
        1616,
    );
}
