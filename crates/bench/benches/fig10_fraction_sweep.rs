//! Figs. 10 and 17–25 — CollaPois with very small compromised fractions
//! (0.1 % / 0.5 %) under defenses, reporting population Attack SR alongside
//! the top-1 %, top-25 % and top-50 % infected clients (Eq. 8 ranking) on
//! both datasets.

use collapois_bench::figures::run_fraction_sweep;
use collapois_core::scenario::DatasetKind;

fn main() {
    run_fraction_sweep(
        DatasetKind::Text,
        "Fig. 10 / Figs. 17,19,21,23: fraction sweep, Sentiment-sim (top-k% infected clients)",
        1010,
    );
    run_fraction_sweep(
        DatasetKind::Image,
        "Figs. 18,20,22,24,25: fraction sweep, FEMNIST-sim (top-k% infected clients)",
        1018,
    );
}
