//! Fig. 5 — 3D surface of Theorem 1's lower bound |C|/|N| over (μ_α, σ).
//!
//! Pure formula evaluation (Eq. 5) with the paper's ψ ~ U[0.9, 1]. The
//! paper's shape: the required fraction of compromised clients decreases
//! monotonically as either the mean angle μ_α or its spread σ grows.

use collapois_bench::{num, Table};
use collapois_core::theory::theorem1_bound;

fn main() {
    let (a, b) = (0.9, 1.0);
    let n = 1000usize;
    let sigmas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut table = Table::new(&[
        "mu (rad)",
        "sigma=0.0",
        "sigma=0.2",
        "sigma=0.4",
        "sigma=0.6",
        "sigma=0.8",
        "sigma=1.0",
    ]);
    for mu_step in 0..=12 {
        let mu = mu_step as f64 * 0.1;
        let mut row = vec![num(mu, 1)];
        for &sigma in &sigmas {
            let frac = theorem1_bound(mu, sigma, a, b, n) / n as f64;
            row.push(num(frac, 4));
        }
        table.row(&row);
    }
    table.print(
        "Fig. 5: Theorem 1 lower bound |C|/|N| as a function of (mu_alpha, sigma), psi~U[0.9,1]",
    );

    // Sanity line mirroring the paper's reading of the surface.
    let tight = theorem1_bound(0.1, 0.1, a, b, n) / n as f64;
    let loose = theorem1_bound(1.2, 0.8, a, b, n) / n as f64;
    println!(
        "\nIID-like clients (mu=0.1, sigma=0.1) need {:.1}% compromised; \
         highly non-IID (mu=1.2, sigma=0.8) need {:.1}% — scatter makes the attack cheap.",
        100.0 * tight,
        100.0 * loose
    );
}
