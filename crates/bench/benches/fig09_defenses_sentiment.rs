//! Fig. 9 — CollaPois (1 % compromised) under the DP, NormBound, Krum and
//! RLR defenses on the Sentiment-sim dataset (Krum and RLR are not
//! applicable to MetaFed, matching the paper).

use collapois_bench::figures::run_defenses_figure;
use collapois_core::scenario::DatasetKind;

fn main() {
    run_defenses_figure(
        DatasetKind::Text,
        "Fig. 9: CollaPois under defenses, Sentiment-sim",
        909,
    );
}
