//! Shared drivers for figure pairs that differ only by dataset
//! (Fig. 8 / Fig. 15 and Fig. 9 / Fig. 16, plus the fraction sweeps of
//! Figs. 10 and 17–25).

use crate::{pct, Scale, Table};
use collapois_core::scenario::{
    AttackKind, DatasetKind, DefenseKind, FlAlgo, Scenario, ScenarioConfig,
};

/// Base configuration for a dataset at the current scale.
pub fn base_config(dataset: DatasetKind, alpha: f64, frac: f64, scale: Scale) -> ScenarioConfig {
    let base = match dataset {
        DatasetKind::Image => ScenarioConfig::quick_image(alpha, frac),
        DatasetKind::Text => ScenarioConfig::quick_text(alpha, frac),
    };
    scale.apply(base)
}

/// Figs. 8 / 15: all four attacks × {FedAvg, FedDC, MetaFed} × α sweep.
pub fn run_attacks_figure(dataset: DatasetKind, title: &str, seed: u64) {
    let scale = Scale::from_env();
    let alphas = [0.01, 1.0, 100.0];
    let attacks = [
        AttackKind::CollaPois,
        AttackKind::DPois,
        AttackKind::MRepl,
        AttackKind::Dba,
    ];
    for algo in [FlAlgo::FedAvg, FlAlgo::FedDc, FlAlgo::MetaFed] {
        let mut table = Table::new(&["attack", "alpha", "benign ac", "attack sr"]);
        for attack in attacks {
            for &alpha in &alphas {
                let mut cfg = base_config(dataset, alpha, 0.01, scale);
                cfg.attack = attack;
                cfg.algo = algo;
                cfg.seed = seed;
                let report = Scenario::new(cfg).run();
                let last = report.final_round();
                table.row(&[
                    attack.name().into(),
                    format!("{alpha}"),
                    pct(last.benign_accuracy),
                    pct(last.attack_success_rate),
                ]);
            }
        }
        table.print(&format!("{title} — {} (1% compromised)", algo.name()));
    }
    println!(
        "\nPaper shape: CollaPois' Attack SR exceeds every baseline across algorithms\n\
         and alphas, rising as alpha shrinks, with Benign AC comparable to the clean run."
    );
}

/// Figs. 9 / 16: CollaPois under the four headline defenses × FL algorithms
/// × α sweep (Krum and RLR are not applicable to MetaFed, as in the paper).
pub fn run_defenses_figure(dataset: DatasetKind, title: &str, seed: u64) {
    let scale = Scale::from_env();
    let alphas = [0.01, 1.0, 100.0];
    let defenses = [
        DefenseKind::Dp,
        DefenseKind::NormBound,
        DefenseKind::Krum,
        DefenseKind::Rlr,
    ];
    for algo in [FlAlgo::FedAvg, FlAlgo::FedDc, FlAlgo::MetaFed] {
        let mut table = Table::new(&["defense", "alpha", "benign ac", "attack sr"]);
        for defense in defenses {
            let not_applicable =
                algo == FlAlgo::MetaFed && matches!(defense, DefenseKind::Krum | DefenseKind::Rlr);
            if not_applicable {
                continue;
            }
            for &alpha in &alphas {
                let mut cfg = base_config(dataset, alpha, 0.01, scale);
                cfg.attack = AttackKind::CollaPois;
                cfg.defense = defense;
                cfg.algo = algo;
                cfg.seed = seed;
                let report = Scenario::new(cfg).run();
                let last = report.final_round();
                table.row(&[
                    defense.name().into(),
                    format!("{alpha}"),
                    pct(last.benign_accuracy),
                    pct(last.attack_success_rate),
                ]);
            }
        }
        table.print(&format!(
            "{title} — {} (CollaPois, 1% compromised)",
            algo.name()
        ));
    }
    println!(
        "\nPaper shape: DP and NormBound leave Attack SR high; Krum and RLR suppress it\n\
         only at a substantial Benign AC cost — no defense wins on both axes."
    );
}

/// Figs. 10, 17–25: 0.1 % / 0.5 % compromised fractions under defenses,
/// reporting the top-k% infected clients for k ∈ {1, 25, 50}.
pub fn run_fraction_sweep(dataset: DatasetKind, title: &str, seed: u64) {
    let scale = Scale::from_env();
    let fracs = [0.001, 0.005];
    let defenses = [DefenseKind::None, DefenseKind::Dp, DefenseKind::NormBound];
    let mut table = Table::new(&[
        "frac",
        "defense",
        "alpha",
        "pop sr",
        "top-1% sr",
        "top-25% sr",
        "top-50% sr",
        "benign ac",
    ]);
    for &frac in &fracs {
        for defense in defenses {
            for alpha in [0.01, 1.0] {
                let mut cfg = base_config(dataset, alpha, frac, scale);
                cfg.attack = AttackKind::CollaPois;
                cfg.defense = defense;
                cfg.seed = seed;
                let report = Scenario::new(cfg).run();
                let pop = report.population();
                table.row(&[
                    format!("{:.1}% ({})", 100.0 * frac, report.compromised.len()),
                    defense.name().into(),
                    format!("{alpha}"),
                    pct(pop.attack_sr),
                    pct(report.top_k(1.0).attack_sr),
                    pct(report.top_k(25.0).attack_sr),
                    pct(report.top_k(50.0).attack_sr),
                    pct(pop.benign_ac),
                ]);
            }
        }
    }
    table.print(title);
    println!(
        "\nPaper shape: even at 0.1-0.5% compromised, the top-25% infected clients show\n\
         high Attack SR (paper: 86% average at 0.5%) while population averages look mild."
    );
}
