//! Shared plumbing for the figure/table benchmark harness.
//!
//! Every paper figure has a `harness = false` bench target under
//! `benches/`; each prints the figure's rows/series as an aligned text
//! table. This crate provides the table printer, the scale knob
//! (`COLLAPOIS_SCALE=quick|full`) and the scenario presets the targets
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use collapois_core::scenario::{RunOptions, Scenario, ScenarioConfig, ScenarioReport};

/// Experiment scale, selected with the `COLLAPOIS_SCALE` environment
/// variable (`quick` default; `full` for larger N / more rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small configuration: minutes for the whole suite.
    #[default]
    Quick,
    /// Larger configuration closer to the paper's ratios.
    Full,
}

impl Scale {
    /// Reads `COLLAPOIS_SCALE` (any value other than `full` means quick).
    pub fn from_env() -> Self {
        match std::env::var("COLLAPOIS_SCALE").as_deref() {
            Ok("full") => Self::Full,
            _ => Self::Quick,
        }
    }

    /// Applies the scale to a scenario configuration.
    pub fn apply(&self, mut cfg: ScenarioConfig) -> ScenarioConfig {
        if let Self::Full = self {
            cfg.num_clients = 200;
            cfg.samples_per_client = 50;
            cfg.rounds = 60;
            cfg.eval_every = 20;
            cfg.sample_rate = 0.1;
        }
        cfg
    }
}

/// The α sweep used throughout the paper's figures.
pub const ALPHAS: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

/// Execution options from the environment: `COLLAPOIS_WORKERS=N` fans
/// benign-client training over `N` worker threads. Results are
/// bit-identical for any worker count, so figures are reproducible
/// regardless of this knob.
pub fn run_options_from_env() -> RunOptions {
    let workers = std::env::var("COLLAPOIS_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    RunOptions {
        workers,
        ..RunOptions::default()
    }
}

/// Runs a scenario under the environment-derived execution options.
pub fn run_scenario(cfg: ScenarioConfig) -> ScenarioReport {
    Scenario::new(cfg).run_with(&run_options_from_env())
}

/// Simple aligned text-table printer for the figure outputs.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row/header length mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }

    /// Renders the table as CSV (cells containing commas or quotes are
    /// quoted) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["alpha", "attack sr"]);
        t.row(&["0.01".into(), pct(0.8333)]);
        t.row(&["100".into(), pct(0.7989)]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.contains("83.33%"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn scale_default_is_quick() {
        assert_eq!(Scale::default(), Scale::Quick);
        let cfg = collapois_core::scenario::ScenarioConfig::quick_image(1.0, 0.01);
        let scaled = Scale::Full.apply(cfg.clone());
        assert!(scaled.num_clients > cfg.num_clients);
        let same = Scale::Quick.apply(cfg.clone());
        assert_eq!(same.num_clients, cfg.num_clients);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(num(std::f64::consts::PI, 2), "3.14");
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["plain".into(), "1".into()]);
        t.row(&["with, comma".into(), "has \"quote\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",\"has \"\"quote\"\"\"");
    }
}
