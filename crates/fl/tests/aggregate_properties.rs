//! Property-based tests of the robust aggregation rules' structural
//! invariants, now that their hot paths route through the kernel layer.
//!
//! Exactness expectations mirror the kernel-layer contract
//! (`collapois-nn/src/kernels/mod.rs`):
//!
//! * Coordinate-wise median and trimmed mean are **bitwise** invariant to
//!   client order — the kernels sum the kept order statistics in ascending
//!   sorted order regardless of input order.
//! * Krum's score *vector* permutes exactly with the clients (squared
//!   distances are symmetric and each row is sorted before the partial
//!   sum), so the selection is stable under reordering.
//! * FedAvg accumulates `f64` per-update in client order, so a permutation
//!   may shift the result by `f64` ulps — checked to a 1e-6 relative
//!   tolerance instead.
//! * NormBound with no noise is idempotent on already-bounded updates: the
//!   clip branch never fires, so it degenerates to the exact FedAvg mean.

use collapois_fl::aggregate::{Aggregator, CoordinateMedian, FedAvg, Krum, NormBound, TrimmedMean};
use collapois_fl::update::ClientUpdate;
use collapois_nn::kernels;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_updates(rng: &mut StdRng, n: usize, dim: usize) -> Vec<ClientUpdate> {
    (0..n)
        .map(|i| {
            let delta: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            ClientUpdate::new(i, delta, 10)
        })
        .collect()
}

/// Deterministic permutation via seeded Fisher–Yates.
fn permuted(updates: &[ClientUpdate], seed: u64) -> (Vec<ClientUpdate>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..updates.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        order.swap(i, j);
    }
    let shuffled = order.iter().map(|&i| updates[i].clone()).collect();
    (shuffled, order)
}

fn rel_close(a: f32, b: f32) -> bool {
    let denom = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / denom <= 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Median and trimmed mean: exactly the same output for any client
    /// permutation.
    #[test]
    fn order_statistics_exactly_permutation_invariant(
        seed in 0u64..10_000,
        n in 1usize..20,
        dim in 1usize..30,
        beta in 0.0f64..0.49,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let (shuffled, _) = permuted(&updates, seed ^ 0x5eed);
        let mut srng = StdRng::seed_from_u64(0);

        let mut median = CoordinateMedian::new();
        prop_assert_eq!(
            median.aggregate(&updates, dim, &mut srng),
            median.aggregate(&shuffled, dim, &mut srng)
        );

        let mut tm = TrimmedMean::new(beta);
        prop_assert_eq!(
            tm.aggregate(&updates, dim, &mut srng),
            tm.aggregate(&shuffled, dim, &mut srng)
        );
    }

    /// FedAvg: permutation-invariant to 1e-6 relative (f64 accumulation in
    /// client order reassociates under permutation).
    #[test]
    fn fedavg_permutation_invariant_within_tolerance(
        seed in 0u64..10_000,
        n in 1usize..20,
        dim in 1usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let (shuffled, _) = permuted(&updates, seed ^ 0xfeed);
        let mut srng = StdRng::seed_from_u64(0);
        let mut agg = FedAvg::new();
        let a = agg.aggregate(&updates, dim, &mut srng);
        let b = agg.aggregate(&shuffled, dim, &mut srng);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(rel_close(*x, *y), "fedavg permuted: {x} vs {y}");
        }
    }

    /// Krum scores permute exactly with the clients, so both the selected
    /// update and the score ordering are stable under reordering.
    #[test]
    fn krum_scores_stable_under_client_reordering(
        seed in 0u64..10_000,
        n in 3usize..16,
        dim in 1usize..30,
        f in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let (shuffled, order) = permuted(&updates, seed ^ 0xc0de);

        let krum = Krum::new(f);
        let base = krum.scores(&updates);
        let perm = krum.scores(&shuffled);
        // perm[pos] scored the update that sat at updates[order[pos]].
        for (pos, &orig) in order.iter().enumerate() {
            prop_assert_eq!(perm[pos], base[orig], "score moved under permutation");
        }

        // Classic Krum selects an update of minimal score in both orders.
        // (With exactly tied scores — e.g. n=3 where two scores equal the
        // same pair distance — the stable sort may pick either twin, so we
        // assert minimality rather than identical outputs.)
        let min = base.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut srng = StdRng::seed_from_u64(0);
        for (us, scores) in [(&updates, &base), (&shuffled, &perm)] {
            let out = Krum::new(f).aggregate(us, dim, &mut srng);
            let picked = us
                .iter()
                .position(|u| u.delta == out)
                .expect("krum output must be one of the inputs");
            prop_assert_eq!(scores[picked], min, "selected a non-minimal score");
        }
    }

    /// NormBound (no noise) on updates already within the bound is exactly
    /// FedAvg, and re-applying it to its own output changes nothing.
    #[test]
    fn norm_bound_idempotent_on_bounded_updates(
        seed in 0u64..10_000,
        n in 1usize..12,
        dim in 1usize..30,
        bound in 0.5f64..4.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut updates = random_updates(&mut rng, n, dim);
        // Rescale every update strictly inside the bound.
        for u in &mut updates {
            let norm = kernels::sq_l2_norm(&u.delta).sqrt();
            if norm > 0.0 {
                let s = (0.9 * bound / norm.max(bound)) as f32;
                kernels::scale(&mut u.delta, s);
            }
        }
        let mut srng = StdRng::seed_from_u64(0);
        let mut nb = NormBound::new(bound);
        let out = nb.aggregate(&updates, dim, &mut srng);

        let mut fedavg = FedAvg::new();
        prop_assert_eq!(&out, &fedavg.aggregate(&updates, dim, &mut srng));

        // The mean of vectors within the bound is within the bound, so a
        // second pass must be the identity.
        let again = nb.aggregate(&[ClientUpdate::new(0, out.clone(), 10)], dim, &mut srng);
        prop_assert_eq!(again, out);
    }
}
