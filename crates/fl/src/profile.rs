//! Per-phase wall-clock accounting for the round loop.
//!
//! The server accumulates one [`PhaseProfile`] as it runs; callers drain it
//! with `FlServer::take_profile` and print the per-round breakdown (the
//! `--profile-rounds` CLI flag). The dispatch/barrier columns come from the
//! worker pool's own synchronization counters, so the breakdown separates
//! "time the lanes computed" from "time the round loop spent handing off
//! and waiting" — the two costs a scaling regression can hide in.

/// Cumulative wall-clock per round-loop phase, in milliseconds, since the
/// last drain.
///
/// Phases partition a round as: `train` (the benign-training fan-out call,
/// including each lane's local SGD), `commit` (ordered assembly of updates,
/// personalization commits, and adversary crafting), `aggregate` (the
/// defense rule plus the global-model step), `eval` (client evaluation
/// passes, which run every `eval_every` rounds only). `dispatch` and
/// `barrier` are *subsets* of the other phases — the pool's job-publish
/// cost and the dispatcher's wait-for-helpers cost — not additional time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseProfile {
    /// Rounds accumulated into this profile.
    pub rounds: usize,
    /// Benign-training fan-out (dispatch + lane work + barrier).
    pub train_ms: f64,
    /// Ordered update assembly, personalization commits, adversary crafting.
    pub commit_ms: f64,
    /// Aggregation rule, global step, and post-processing.
    pub aggregate_ms: f64,
    /// Client evaluation passes.
    pub eval_ms: f64,
    /// Pool handoff cost (job publish + helper wake-up), all dispatches.
    pub dispatch_ms: f64,
    /// Dispatcher time spent waiting on helper lanes after finishing its
    /// own lane (the barrier cost), all dispatches.
    pub barrier_ms: f64,
    /// Successful work-steal claims across all pool dispatches. Timing
    /// dependent — diagnostic only, never part of deterministic output.
    pub steals: u64,
    /// Items rerouted by work-steal claims across all pool dispatches.
    pub stolen_items: u64,
    /// Sampled clients removed by the fault plan before training (injected
    /// dropout).
    pub dropped_clients: usize,
    /// Stragglers shed because their virtual delay exceeded the round
    /// deadline.
    pub shed_stragglers: usize,
    /// Updates rejected before aggregation for non-finite content.
    pub rejected_updates: usize,
    /// Checkpoint-write attempts that failed (injected or real I/O).
    pub checkpoint_write_failures: usize,
}

impl PhaseProfile {
    /// Adds another profile's totals into this one.
    pub fn accumulate(&mut self, other: &PhaseProfile) {
        self.rounds += other.rounds;
        self.train_ms += other.train_ms;
        self.commit_ms += other.commit_ms;
        self.aggregate_ms += other.aggregate_ms;
        self.eval_ms += other.eval_ms;
        self.dispatch_ms += other.dispatch_ms;
        self.barrier_ms += other.barrier_ms;
        self.steals += other.steals;
        self.stolen_items += other.stolen_items;
        self.dropped_clients += other.dropped_clients;
        self.shed_stragglers += other.shed_stragglers;
        self.rejected_updates += other.rejected_updates;
        self.checkpoint_write_failures += other.checkpoint_write_failures;
    }

    /// Whether any fault counter is nonzero.
    pub fn has_faults(&self) -> bool {
        self.dropped_clients > 0
            || self.shed_stragglers > 0
            || self.rejected_updates > 0
            || self.checkpoint_write_failures > 0
    }

    /// Per-round means as a one-line human-readable breakdown. A fault
    /// section is appended only when some fault counter fired, so fault-free
    /// runs keep the historical format.
    pub fn per_round_summary(&self) -> String {
        let n = self.rounds.max(1) as f64;
        let mut s = format!(
            "train {:.3} ms | commit {:.3} ms | aggregate {:.3} ms | eval {:.3} ms \
             | dispatch {:.4} ms | barrier {:.4} ms  ({} rounds)",
            self.train_ms / n,
            self.commit_ms / n,
            self.aggregate_ms / n,
            self.eval_ms / n,
            self.dispatch_ms / n,
            self.barrier_ms / n,
            self.rounds,
        );
        if self.steals > 0 {
            s.push_str(&format!(
                "  [steals: {} claims, {} items]",
                self.steals, self.stolen_items,
            ));
        }
        if self.has_faults() {
            s.push_str(&format!(
                "  [faults: dropped {} | shed {} | rejected {} | ckpt-fail {}]",
                self.dropped_clients,
                self.shed_stragglers,
                self.rejected_updates,
                self.checkpoint_write_failures,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PhaseProfile {
            rounds: 2,
            train_ms: 1.0,
            commit_ms: 0.5,
            aggregate_ms: 0.25,
            eval_ms: 4.0,
            dispatch_ms: 0.01,
            barrier_ms: 0.02,
            steals: 5,
            stolen_items: 9,
            dropped_clients: 3,
            shed_stragglers: 1,
            rejected_updates: 2,
            checkpoint_write_failures: 1,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.train_ms, 2.0);
        assert_eq!(a.barrier_ms, 0.04);
        assert_eq!(a.steals, 10);
        assert_eq!(a.stolen_items, 18);
        assert_eq!(a.dropped_clients, 6);
        assert_eq!(a.shed_stragglers, 2);
        assert_eq!(a.rejected_updates, 4);
        assert_eq!(a.checkpoint_write_failures, 2);
    }

    #[test]
    fn fault_section_appears_only_when_faults_fired() {
        let clean = PhaseProfile {
            rounds: 3,
            ..Default::default()
        };
        assert!(!clean.has_faults());
        assert!(!clean.per_round_summary().contains("faults"));
        let faulted = PhaseProfile {
            rounds: 3,
            dropped_clients: 2,
            ..Default::default()
        };
        assert!(faulted.has_faults());
        let s = faulted.per_round_summary();
        assert!(s.contains("[faults: dropped 2"), "{s}");
    }

    #[test]
    fn summary_reports_per_round_means() {
        let p = PhaseProfile {
            rounds: 4,
            train_ms: 8.0,
            ..Default::default()
        };
        let s = p.per_round_summary();
        assert!(s.contains("train 2.000 ms"), "{s}");
        assert!(s.contains("(4 rounds)"), "{s}");
    }

    #[test]
    fn empty_profile_does_not_divide_by_zero() {
        let s = PhaseProfile::default().per_round_summary();
        assert!(s.contains("(0 rounds)"), "{s}");
    }
}
