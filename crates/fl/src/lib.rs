//! Federated-learning substrate for the CollaPois reproduction.
//!
//! Implements the multi-round FL protocol of §II-A, the robust aggregation
//! battery of Table I, the personalized FL algorithms the paper attacks
//! (FedDC, MetaFed) and the client-level metrics of §V:
//!
//! * [`update`] — client updates as flat delta vectors
//!   (`Δθ_i = θ_i^t − θ^t`; the server applies `θ ← θ + λ·Aggregate(Δ)`).
//! * [`config`] — simulation hyper-parameters (`T`, `K`, `q`, `λ`, `γ`...).
//! * [`client`] — benign local training (K minibatch-SGD steps).
//! * [`aggregate`] — FedAvg plus the robust rules: Krum/Multi-Krum,
//!   coordinate-wise median, trimmed mean, NormBound, DP, robust learning
//!   rate (RLR), SignSGD, FLARE and CRFL.
//! * [`personalize`] — FedAvg (none), FedDC drift correction, MetaFed
//!   knowledge distillation, and Ditto personalization.
//! * [`server`] — the round loop with client sampling probability `q` and an
//!   [`server::Adversary`] hook through which the attack crates inject
//!   malicious updates. Execution (derived RNG streams, worker fan-out,
//!   checkpoint/resume, structured traces) is delegated to the
//!   `collapois-runtime` engine.
//! * [`metrics`] — Benign AC, Attack SR, the Eq. 8 per-client score, top-k%
//!   clusters and the Eq. 9 cumulative-label cosine.
//! * [`monitor`] — the round-to-round shift detector (§II-B: MRepl's abrupt
//!   performance shifts are detectable; CollaPois avoids them).
//! * [`quant`] — deterministic (RNE) f16/int8 transport codecs for client
//!   deltas, applied as a decode-before-aggregate round-trip so every
//!   aggregator sees exactly what a real receiver would.
//! * [`sim`] — buffered-async (FedBuff) execution on the discrete-event
//!   simulator: refcounted model-version snapshots and a dataset-free
//!   synthetic executor for 100k+-virtual-client scale runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod client;
pub mod config;
pub mod metrics;
pub mod monitor;
pub mod personalize;
pub mod profile;
pub mod quant;
pub mod scratch;
pub mod server;
pub mod sim;
pub mod update;

pub use aggregate::Aggregator;
pub use config::FlConfig;
pub use personalize::{LocalOutcome, Personalization, StateCommit};
pub use profile::PhaseProfile;
pub use quant::Quantization;
pub use scratch::ClientScratch;
pub use server::{round_records_from_events, Adversary, FlServer, RoundRecord};
pub use update::ClientUpdate;
