//! Benign client-side local training.

use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_nn::optim::Sgd;
use rand::Rng;

/// Runs `K` local minibatch-SGD steps starting from `global` and returns the
/// resulting flat delta `θ_local − θ_global`.
///
/// `model` is a scratch model of the configured architecture; its parameters
/// are overwritten.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn local_sgd_delta<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut Sequential,
    global: &[f32],
    data: &Dataset,
    cfg: &FlConfig,
) -> Vec<f32> {
    local_sgd_delta_prox(rng, model, global, data, cfg, 0.0)
}

/// Like [`local_sgd_delta`] but with a proximal term `μ/2·‖θ − θ_global‖²`
/// added to the local objective (used by FedDC-style drift correction and
/// Ditto). `prox_mu = 0` recovers plain local SGD.
///
/// Thin wrapper over [`local_sgd_delta_prox_into`] (one shared code path),
/// paying one scratch-arena construction per call; the round engine calls
/// the `_into` variant on a persistent arena instead.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn local_sgd_delta_prox<R: Rng + ?Sized>(
    rng: &mut R,
    model: &mut Sequential,
    global: &[f32],
    data: &Dataset,
    cfg: &FlConfig,
    prox_mu: f64,
) -> Vec<f32> {
    let mut scratch = ClientScratch::for_model(model);
    local_sgd_delta_prox_into(rng, &mut scratch, global, data, cfg, prox_mu);
    // Preserve the historical contract: the caller's model ends up holding
    // the trained local parameters.
    model.set_params(&scratch.params);
    std::mem::take(&mut scratch.delta)
}

/// In-place [`local_sgd_delta`]: trains on `scratch.model` and leaves the
/// flat delta in `scratch.delta`, touching no heap after arena warm-up.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn local_sgd_delta_into<R: Rng + ?Sized>(
    rng: &mut R,
    scratch: &mut ClientScratch,
    global: &[f32],
    data: &Dataset,
    cfg: &FlConfig,
) {
    local_sgd_delta_prox_into(rng, scratch, global, data, cfg, 0.0);
}

/// In-place [`local_sgd_delta_prox`]: the zero-allocation training inner
/// loop. `scratch.model` is reloaded from `global`, trained for
/// `cfg.local_steps` minibatches through the persistent workspace, and the
/// delta `θ_local − θ_global` is written into `scratch.delta`
/// (`scratch.params` is left holding the trained local parameters).
///
/// Performs the same floating-point operations in the same order as the
/// allocating path, so results are bitwise identical.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn local_sgd_delta_prox_into<R: Rng + ?Sized>(
    rng: &mut R,
    scratch: &mut ClientScratch,
    global: &[f32],
    data: &Dataset,
    cfg: &FlConfig,
    prox_mu: f64,
) {
    assert!(!data.is_empty(), "client has no training data");
    scratch.model.load_params_into(global);
    let mut opt = Sgd::new(cfg.client_lr);
    for _ in 0..cfg.local_steps {
        data.minibatch_into(
            rng,
            cfg.batch_size,
            &mut scratch.idx,
            &mut scratch.x,
            &mut scratch.y,
        );
        scratch
            .model
            .train_batch_ws(&scratch.x, &scratch.y, &mut opt, &mut scratch.ws);
        if prox_mu > 0.0 {
            // Gradient of the proximal term: μ(θ − θ_global), applied as an
            // extra SGD step. The factor is clamped at 1 so that very large
            // μ pins the iterate to θ_global instead of diverging.
            scratch.model.store_params_into(&mut scratch.params);
            let lr_mu = (cfg.client_lr * prox_mu).min(1.0) as f32;
            for (p, &g) in scratch.params.iter_mut().zip(global) {
                *p -= lr_mu * (*p - g);
            }
            scratch.model.load_params_into(&scratch.params);
        }
    }
    scratch.model.store_params_into(&mut scratch.params);
    scratch.delta.clear();
    scratch
        .delta
        .extend(scratch.params.iter().zip(global).map(|(l, g)| l - g));
}

/// SCAFFOLD's corrected local SGD [Karimireddy et al., ICML 2020]: each
/// minibatch step is followed by the variance-reduction correction
/// `θ ← θ − η(c − c_i)` (server minus client control variate), so the local
/// update drifts toward the *global* gradient direction instead of the
/// client's non-IID one. `correction` is the precomputed `c − c_i` vector;
/// an all-zero correction reproduces [`local_sgd_delta_into`] bitwise (the
/// extra params round-trip is skipped, matching the prox path's `μ = 0`
/// contract).
///
/// Leaves the delta `θ_local − θ_global` in `scratch.delta` and the trained
/// parameters in `scratch.params`, like the other `_into` paths.
///
/// # Panics
///
/// Panics if `data` is empty or `correction` has the wrong dimension.
pub fn local_sgd_delta_corrected_into<R: Rng + ?Sized>(
    rng: &mut R,
    scratch: &mut ClientScratch,
    global: &[f32],
    data: &Dataset,
    cfg: &FlConfig,
    correction: &[f32],
) {
    assert!(!data.is_empty(), "client has no training data");
    assert_eq!(correction.len(), global.len(), "correction dimension");
    let apply = correction.iter().any(|&v| v != 0.0);
    scratch.model.load_params_into(global);
    let mut opt = Sgd::new(cfg.client_lr);
    let lr = cfg.client_lr as f32;
    for _ in 0..cfg.local_steps {
        data.minibatch_into(
            rng,
            cfg.batch_size,
            &mut scratch.idx,
            &mut scratch.x,
            &mut scratch.y,
        );
        scratch
            .model
            .train_batch_ws(&scratch.x, &scratch.y, &mut opt, &mut scratch.ws);
        if apply {
            scratch.model.store_params_into(&mut scratch.params);
            for (p, &cv) in scratch.params.iter_mut().zip(correction) {
                *p -= lr * cv;
            }
            scratch.model.load_params_into(&scratch.params);
        }
    }
    scratch.model.store_params_into(&mut scratch.params);
    scratch.delta.clear();
    scratch
        .delta
        .extend(scratch.params.iter().zip(global).map(|(l, g)| l - g));
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::zoo::ModelSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    fn setup() -> (FlConfig, Sequential, Vec<f32>) {
        let spec = ModelSpec::mlp(2, &[8], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        (cfg, model, global)
    }

    #[test]
    fn delta_has_param_dimension_and_moves() {
        let (cfg, mut model, global) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let delta = local_sgd_delta(&mut rng, &mut model, &global, &toy_data(), &cfg);
        assert_eq!(delta.len(), global.len());
        assert!(
            delta.iter().any(|&d| d != 0.0),
            "training must move the model"
        );
    }

    #[test]
    fn prox_term_shrinks_delta() {
        let (mut cfg, mut model, global) = setup();
        cfg.local_steps = 20;
        let mut rng = StdRng::seed_from_u64(2);
        let free = local_sgd_delta_prox(&mut rng, &mut model, &global, &toy_data(), &cfg, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let prox = local_sgd_delta_prox(&mut rng, &mut model, &global, &toy_data(), &cfg, 50.0);
        let n_free = collapois_stats::geometry::l2_norm(&free);
        let n_prox = collapois_stats::geometry::l2_norm(&prox);
        assert!(n_prox < n_free, "prox={n_prox} free={n_free}");
    }

    #[test]
    fn scratch_reuse_is_history_free() {
        let (cfg, model, global) = setup();
        let data = toy_data();
        let mut scratch = ClientScratch::for_model(&model);
        let mut rng = StdRng::seed_from_u64(4);
        local_sgd_delta_prox_into(&mut rng, &mut scratch, &global, &data, &cfg, 0.5);
        let first = scratch.delta.clone();
        // Re-run with identical RNG on the warm arena: bitwise equal.
        let mut rng = StdRng::seed_from_u64(4);
        local_sgd_delta_prox_into(&mut rng, &mut scratch, &global, &data, &cfg, 0.5);
        assert_eq!(first, scratch.delta);
        // And equal to a fresh arena.
        let mut fresh = ClientScratch::for_model(&model);
        let mut rng = StdRng::seed_from_u64(4);
        local_sgd_delta_prox_into(&mut rng, &mut fresh, &global, &data, &cfg, 0.5);
        assert_eq!(first, fresh.delta);
    }

    #[test]
    fn zero_correction_matches_plain_sgd_bitwise() {
        let (cfg, model, global) = setup();
        let data = toy_data();
        let mut scratch = ClientScratch::for_model(&model);
        let mut rng = StdRng::seed_from_u64(5);
        local_sgd_delta_into(&mut rng, &mut scratch, &global, &data, &cfg);
        let plain = scratch.delta.clone();
        let zeros = vec![0.0f32; global.len()];
        let mut rng = StdRng::seed_from_u64(5);
        local_sgd_delta_corrected_into(&mut rng, &mut scratch, &global, &data, &cfg, &zeros);
        assert_eq!(plain, scratch.delta);
        // A non-zero correction must steer the iterate elsewhere.
        let mut corr = zeros;
        corr[0] = 0.5;
        let mut rng = StdRng::seed_from_u64(5);
        local_sgd_delta_corrected_into(&mut rng, &mut scratch, &global, &data, &cfg, &corr);
        assert_ne!(plain, scratch.delta);
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn rejects_empty_dataset() {
        let (cfg, mut model, global) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let empty = Dataset::empty(&[2], 2);
        let _ = local_sgd_delta(&mut rng, &mut model, &global, &empty, &cfg);
    }
}
