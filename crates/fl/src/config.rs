//! Simulation hyper-parameters.

use crate::quant::Quantization;
use collapois_nn::zoo::ModelSpec;

/// Federated-training configuration (paper defaults in §V / Appendix E).
#[derive(Clone, PartialEq)]
pub struct FlConfig {
    /// Model architecture every client instantiates.
    pub model: ModelSpec,
    /// Number of federated rounds `T`.
    pub rounds: usize,
    /// Local minibatch-SGD steps `K` per selected client.
    pub local_steps: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Clients' local learning rate `γ` (paper: 0.001 for local models —
    /// scaled up here because the synthetic tasks are smaller).
    pub client_lr: f64,
    /// Server learning rate `λ` (paper: 0.01 for the global model — the
    /// simulation default of 1.0 corresponds to plain FedAvg averaging).
    pub server_lr: f64,
    /// Per-round client sampling probability `q`.
    pub sample_rate: f64,
    /// RNG seed for the whole simulation.
    pub seed: u64,
    /// Evaluate client metrics every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Transport codec for client deltas: every accepted update is
    /// encode/decode round-tripped through this format before the
    /// finite-norm gate and aggregation (see [`crate::quant`]).
    /// [`Quantization::F32`] is the exact no-op default.
    pub quantization: Quantization,
}

/// Manual `Debug`: the `quantization` field is printed only when it is not
/// the exact [`Quantization::F32`] no-op. The Debug string is the config
/// fingerprint (checkpoint compatibility, the trace `config_hash`), so
/// omitting the default keeps every pre-codec checkpoint and golden trace
/// identity valid while still separating quantized configurations.
impl std::fmt::Debug for FlConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("FlConfig");
        d.field("model", &self.model)
            .field("rounds", &self.rounds)
            .field("local_steps", &self.local_steps)
            .field("batch_size", &self.batch_size)
            .field("client_lr", &self.client_lr)
            .field("server_lr", &self.server_lr)
            .field("sample_rate", &self.sample_rate)
            .field("seed", &self.seed)
            .field("eval_every", &self.eval_every);
        if self.quantization != Quantization::F32 {
            d.field("quantization", &self.quantization);
        }
        d.finish()
    }
}

impl FlConfig {
    /// A small, fast configuration for tests and quick experiments.
    pub fn quick(model: ModelSpec) -> Self {
        Self {
            model,
            rounds: 30,
            local_steps: 4,
            batch_size: 16,
            client_lr: 0.05,
            server_lr: 1.0,
            sample_rate: 0.2,
            seed: 42,
            eval_every: 10,
            quantization: Quantization::F32,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if self.local_steps == 0 {
            return Err("local_steps must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if !(self.client_lr.is_finite() && self.client_lr > 0.0) {
            return Err("client_lr must be positive".into());
        }
        if !(self.server_lr.is_finite() && self.server_lr > 0.0) {
            return Err("server_lr must be positive".into());
        }
        if !(0.0 < self.sample_rate && self.sample_rate <= 1.0) {
            return Err("sample_rate must be in (0, 1]".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_valid() {
        let cfg = FlConfig::quick(ModelSpec::mlp(4, &[4], 2));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut cfg = FlConfig::quick(ModelSpec::mlp(4, &[4], 2));
        cfg.sample_rate = 0.0;
        assert!(cfg.validate().is_err());
        cfg.sample_rate = 0.5;
        cfg.rounds = 0;
        assert!(cfg.validate().is_err());
        cfg.rounds = 1;
        cfg.client_lr = -1.0;
        assert!(cfg.validate().is_err());
    }
}
